//! The on-disk shard format for labeled training samples.
//!
//! A shard is a binary file holding fixed-shape `(input, target)` sample
//! pairs, little-endian throughout:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "NFSHRD1\n"
//! 8       4     format version (u32, currently 1)
//! 12      12    input sample shape  [C, H, W] as 3 × u32
//! 24      12    target sample shape [C, H, W] as 3 × u32
//! 36      8     sample count (u64; all-ones until the writer finalizes)
//! 44      —     records
//! ```
//!
//! Each record is an 8-byte FNV-1a checksum followed by the payload: the
//! input's f32 values then the target's, row-major. Record size is fixed by
//! the header shapes, so the reader can stream one record at a time with
//! bounded memory and validate total file size up front. The count field is
//! written only by [`ShardWriter::finish`] — a crash mid-write leaves the
//! all-ones placeholder and the reader rejects the file instead of training
//! on a truncated corpus.
//!
//! Writers stage the whole shard at a `.tmp` sibling path and only
//! `finish` moves it to its final name (flush → patch count → fsync →
//! rename), so a crash at *any* point of the write — including
//! mid-finalize, which previously could leave a half-patched header at
//! the final path — leaves either no shard file or a complete one.

use neurfill_nn::Dataset;
use neurfill_obs::{Counter, Telemetry};
use neurfill_runtime::fault::{sites, FaultPlan};
use neurfill_tensor::NdArray;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"NFSHRD1\n";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 44;
const COUNT_OFFSET: u64 = 36;
const COUNT_PLACEHOLDER: u64 = u64::MAX;

/// File extension used for shards.
pub const SHARD_EXTENSION: &str = "nfshard";

/// `u32` from a little-endian slice the caller guarantees is 4 bytes.
fn le_u32(bytes: &[u8]) -> u32 {
    match bytes.try_into() {
        Ok(array) => u32::from_le_bytes(array),
        Err(_) => unreachable!("caller slices exactly 4 bytes"),
    }
}

/// `u64` from a little-endian slice the caller guarantees is 8 bytes.
fn le_u64(bytes: &[u8]) -> u64 {
    match bytes.try_into() {
        Ok(array) => u64::from_le_bytes(array),
        Err(_) => unreachable!("caller slices exactly 8 bytes"),
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free corruption check.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The fixed per-sample geometry of a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardShapes {
    /// `[C, H, W]` of every input sample.
    pub input: [usize; 3],
    /// `[C, H, W]` of every target sample.
    pub target: [usize; 3],
}

impl ShardShapes {
    fn payload_floats(&self) -> usize {
        self.input.iter().product::<usize>() + self.target.iter().product::<usize>()
    }

    fn record_len(&self) -> u64 {
        8 + 4 * self.payload_floats() as u64
    }

    fn check_sample(&self, input: &NdArray, target: &NdArray) -> io::Result<()> {
        if input.shape() != self.input || target.shape() != self.target {
            return Err(bad(format!(
                "sample shapes {:?}/{:?} do not match shard shapes {:?}/{:?}",
                input.shape(),
                target.shape(),
                self.input,
                self.target
            )));
        }
        Ok(())
    }
}

/// Append-only writer of one shard file.
///
/// Records are only ever appended; the header's sample count is patched
/// once, by [`ShardWriter::finish`]. The whole shard is staged at a
/// `.tmp` sibling of `path` until `finish` renames it into place, so the
/// final path only ever holds a complete, finalized shard. Dropping the
/// writer without calling `finish` leaves only the staging file behind,
/// which [`ShardSet::open_dir`] skips (wrong extension) and whose
/// placeholder count readers reject.
#[derive(Debug)]
pub struct ShardWriter {
    file: BufWriter<File>,
    shapes: ShardShapes,
    count: u64,
    path: PathBuf,
    tmp_path: PathBuf,
    records_written: Counter,
    bytes_written: Counter,
}

/// The staging path `finish` renames from: `path` with `.tmp` appended to
/// the file name (`a.nfshard` → `a.nfshard.tmp`).
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(std::ffi::OsStr::to_os_string).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

impl ShardWriter {
    /// Creates a shard destined for `path`, staging its bytes at a `.tmp`
    /// sibling (truncating any existing staging file) and writing the
    /// header with a placeholder count. Nothing appears at `path` itself
    /// until [`ShardWriter::finish`].
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; rejects zero-sized sample shapes.
    pub fn create(path: impl AsRef<Path>, shapes: ShardShapes) -> io::Result<Self> {
        if shapes.input.contains(&0) || shapes.target.contains(&0) {
            return Err(bad(format!("zero-sized sample shape {shapes:?}")));
        }
        let path = path.as_ref().to_path_buf();
        let tmp_path = staging_path(&path);
        let mut file = BufWriter::new(File::create(&tmp_path)?);
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        for dims in [&shapes.input, &shapes.target] {
            for &d in dims {
                let d = u32::try_from(d).map_err(|_| bad(format!("dimension {d} exceeds u32")))?;
                file.write_all(&d.to_le_bytes())?;
            }
        }
        file.write_all(&COUNT_PLACEHOLDER.to_le_bytes())?;
        Ok(Self {
            file,
            shapes,
            count: 0,
            path,
            tmp_path,
            records_written: Counter::noop(),
            bytes_written: Counter::noop(),
        })
    }

    /// Counts records and payload bytes written into `telemetry`
    /// (`data.shard.records_written` / `data.shard.bytes_written`). The
    /// shard bytes themselves are untouched.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.records_written = telemetry.counter("data.shard.records_written");
        self.bytes_written = telemetry.counter("data.shard.bytes_written");
        self
    }

    /// Appends one `(input, target)` record.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a shape mismatch; propagates I/O errors.
    pub fn push(&mut self, input: &NdArray, target: &NdArray) -> io::Result<()> {
        self.shapes
            .check_sample(input, target)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", self.path.display())))?;
        let mut payload = Vec::with_capacity(4 * self.shapes.payload_floats());
        for arr in [input, target] {
            for v in arr.as_slice() {
                payload.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        self.file.write_all(&fnv1a(&payload).to_le_bytes())?;
        self.file.write_all(&payload)?;
        self.count += 1;
        self.records_written.inc();
        self.bytes_written.add(8 + payload.len() as u64);
        Ok(())
    }

    /// Number of records appended so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no record has been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finalizes the shard: flushes records, patches the header's sample
    /// count, fsyncs, and renames the staging file to the final path.
    /// Returns the path and record count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on failure nothing appears at the final path
    /// and the staging file (placeholder count, rejected by readers) is
    /// what a crash would leave.
    pub fn finish(self) -> io::Result<(PathBuf, u64)> {
        let Self { file, count, path, tmp_path, .. } = self;
        let mut file = file.into_inner().map_err(|e| e.into_error())?;
        file.seek(SeekFrom::Start(COUNT_OFFSET))?;
        file.write_all(&count.to_le_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp_path, &path)?;
        // Best-effort directory sync so the rename itself is durable; not
        // all filesystems support opening a directory for sync.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok((path, count))
    }
}

/// Streaming reader over one shard: validates the header and total size up
/// front, then yields records one at a time with bounded memory.
#[derive(Debug)]
pub struct ShardReader {
    file: BufReader<File>,
    shapes: ShardShapes,
    count: u64,
    read: u64,
    path: PathBuf,
    fault: Option<Arc<FaultPlan>>,
    records_read: Counter,
}

impl ShardReader {
    /// Opens a shard, validating magic, version, shapes, finalized count
    /// and exact file size.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for non-shard files, unfinalized (crashed)
    /// writers, and truncated or oversized files. Every error names the
    /// offending file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_inner(path.as_ref(), None)
    }

    /// [`ShardReader::open`] with a fault plan checked (site
    /// [`sites::SHARD_READ`]) before every record read — the test seam for
    /// transient-I/O handling in consumers of the shard pipeline.
    ///
    /// # Errors
    ///
    /// As [`ShardReader::open`].
    pub fn open_with_faults(path: impl AsRef<Path>, fault: Arc<FaultPlan>) -> io::Result<Self> {
        Self::open_inner(path.as_ref(), Some(fault))
    }

    fn open_inner(path: &Path, fault: Option<Arc<FaultPlan>>) -> io::Result<Self> {
        let path = path.to_path_buf();
        let file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let mut file = BufReader::new(file);
        let ctx = |msg: String| bad(format!("{}: {msg}", path.display()));

        let mut header = [0u8; HEADER_LEN as usize];
        if file_len < HEADER_LEN {
            return Err(ctx(format!("file too short for a shard header ({file_len} bytes)")));
        }
        file.read_exact(&mut header)?;
        if &header[0..8] != MAGIC {
            return Err(ctx("not a neurfill shard (bad magic)".into()));
        }
        let version = le_u32(&header[8..12]);
        if version != VERSION {
            return Err(ctx(format!("unsupported shard version {version}")));
        }
        let dim = |i: usize| -> usize { le_u32(&header[12 + 4 * i..16 + 4 * i]) as usize };
        let shapes = ShardShapes { input: [dim(0), dim(1), dim(2)], target: [dim(3), dim(4), dim(5)] };
        if shapes.input.contains(&0) || shapes.target.contains(&0) {
            return Err(ctx(format!("zero-sized sample shape {shapes:?}")));
        }
        let count = le_u64(&header[36..44]);
        if count == COUNT_PLACEHOLDER {
            return Err(ctx("shard was never finalized (writer crashed mid-write?)".into()));
        }
        let expect_len =
            count.checked_mul(shapes.record_len()).and_then(|records| records.checked_add(HEADER_LEN));
        if expect_len != Some(file_len) {
            return Err(ctx(format!(
                "file is {file_len} bytes but header promises {count} records (torn header?)"
            )));
        }
        Ok(Self { file, shapes, count, read: 0, path, fault, records_read: Counter::noop() })
    }

    /// Counts successfully read records into `telemetry`
    /// (`data.shard.records_read`).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.records_read = telemetry.counter("data.shard.records_read");
        self
    }

    /// Per-sample geometry of this shard.
    #[must_use]
    pub fn shapes(&self) -> &ShardShapes {
        &self.shapes
    }

    /// Number of records in the shard.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the shard holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Reads the next record, or `None` past the end.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a checksum mismatch (bit rot or tampering)
    /// and propagates I/O errors. Any error poisons the reader: subsequent
    /// calls return `None`, so iteration terminates instead of re-reporting
    /// the same corrupt record forever.
    pub fn read_next(&mut self) -> io::Result<Option<(NdArray, NdArray)>> {
        match self.read_record() {
            Ok(rec) => Ok(rec),
            Err(e) => {
                self.read = self.count;
                Err(e)
            }
        }
    }

    /// Stamps `self.path` and the failing record index onto an error, so a
    /// failure deep in a multi-shard stream is attributable.
    fn record_err(&self, e: io::Error) -> io::Error {
        io::Error::new(e.kind(), format!("{}: record {}: {e}", self.path.display(), self.read))
    }

    fn read_record(&mut self) -> io::Result<Option<(NdArray, NdArray)>> {
        if self.read == self.count {
            return Ok(None);
        }
        if let Some(fault) = &self.fault {
            fault.inject_io(sites::SHARD_READ).map_err(|e| self.record_err(e))?;
        }
        let mut checksum = [0u8; 8];
        self.file.read_exact(&mut checksum).map_err(|e| self.record_err(e))?;
        let mut payload = vec![0u8; 4 * self.shapes.payload_floats()];
        self.file.read_exact(&mut payload).map_err(|e| self.record_err(e))?;
        if fnv1a(&payload) != u64::from_le_bytes(checksum) {
            return Err(bad(format!(
                "{}: checksum mismatch in record {} — shard is corrupt",
                self.path.display(),
                self.read
            )));
        }
        let floats: Vec<f32> = payload.chunks_exact(4).map(|c| f32::from_bits(le_u32(c))).collect();
        let n_in = self.shapes.input.iter().product::<usize>();
        let input = NdArray::from_vec(floats[..n_in].to_vec(), &self.shapes.input)
            .map_err(|e| self.record_err(bad(e.to_string())))?;
        let target = NdArray::from_vec(floats[n_in..].to_vec(), &self.shapes.target)
            .map_err(|e| self.record_err(bad(e.to_string())))?;
        self.read += 1;
        self.records_read.inc();
        Ok(Some((input, target)))
    }

    /// Loads the remaining records into an in-memory [`Dataset`] sized up
    /// front from the header count.
    ///
    /// # Errors
    ///
    /// Propagates record errors (checksum, truncation).
    pub fn read_to_dataset(mut self) -> io::Result<Dataset> {
        let mut ds = Dataset::with_capacity(usize::try_from(self.count - self.read).unwrap_or(0));
        while let Some((input, target)) = self.read_next()? {
            ds.push(input, target).map_err(|e| bad(format!("{}: {e}", self.path.display())))?;
        }
        Ok(ds)
    }
}

impl Iterator for ShardReader {
    type Item = io::Result<(NdArray, NdArray)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_next().transpose()
    }
}

/// Writes a sequence of samples across multiple shards, rotating to a new
/// file every `samples_per_shard` records.
#[derive(Debug)]
pub struct ShardSetWriter {
    dir: PathBuf,
    prefix: String,
    shapes: ShardShapes,
    samples_per_shard: u64,
    current: Option<ShardWriter>,
    finished: Vec<(PathBuf, u64)>,
    total: u64,
    telemetry: Telemetry,
}

impl ShardSetWriter {
    /// Creates a writer producing `dir/<prefix>-00000.nfshard`, … shards.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation errors; `samples_per_shard` must be
    /// non-zero.
    pub fn new(
        dir: impl AsRef<Path>,
        prefix: &str,
        shapes: ShardShapes,
        samples_per_shard: u64,
    ) -> io::Result<Self> {
        if samples_per_shard == 0 {
            return Err(bad("samples_per_shard must be non-zero"));
        }
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: dir.as_ref().to_path_buf(),
            prefix: prefix.to_string(),
            shapes,
            samples_per_shard,
            current: None,
            finished: Vec::new(),
            total: 0,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle to every shard writer this set rotates
    /// through (see [`ShardWriter::with_telemetry`]).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Appends one sample, rotating to a fresh shard when the current one
    /// is full.
    ///
    /// # Errors
    ///
    /// Propagates shard-writer errors.
    pub fn push(&mut self, input: &NdArray, target: &NdArray) -> io::Result<()> {
        if self.current.as_ref().is_none_or(|w| w.len() == self.samples_per_shard) {
            self.rotate()?;
        }
        match self.current.as_mut() {
            Some(writer) => writer.push(input, target)?,
            None => unreachable!("rotate() always installs a writer"),
        }
        self.total += 1;
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        if let Some(writer) = self.current.take() {
            self.finished.push(writer.finish()?);
        }
        let path =
            self.dir.join(format!("{}-{:05}.{SHARD_EXTENSION}", self.prefix, self.finished.len()));
        self.current =
            Some(ShardWriter::create(path, self.shapes.clone())?.with_telemetry(&self.telemetry));
        Ok(())
    }

    /// Finalizes the in-flight shard and returns `(path, count)` for every
    /// shard written, in order.
    ///
    /// # Errors
    ///
    /// Propagates finalization errors.
    pub fn finish(mut self) -> io::Result<Vec<(PathBuf, u64)>> {
        if let Some(writer) = self.current.take() {
            self.finished.push(writer.finish()?);
        }
        Ok(self.finished)
    }

    /// Total samples pushed so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// An ordered set of shards in a directory, opened lazily for streaming.
#[derive(Debug, Clone)]
pub struct ShardSet {
    paths: Vec<PathBuf>,
    counts: Vec<u64>,
    shapes: ShardShapes,
}

impl ShardSet {
    /// Scans `dir` for `*.nfshard` files (sorted by file name for a stable
    /// order), validating every header and that all shards agree on sample
    /// shapes.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` when no shard is found, any header is invalid,
    /// or shapes disagree between shards.
    pub fn open_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == SHARD_EXTENSION))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(bad(format!("no .{SHARD_EXTENSION} files in {}", dir.display())));
        }
        let mut counts = Vec::with_capacity(paths.len());
        let mut shapes: Option<ShardShapes> = None;
        for path in &paths {
            let reader = ShardReader::open(path)?;
            match &shapes {
                None => shapes = Some(reader.shapes().clone()),
                Some(s) if s != reader.shapes() => {
                    return Err(bad(format!(
                        "{}: sample shapes {:?} disagree with the set's {s:?}",
                        path.display(),
                        reader.shapes()
                    )))
                }
                Some(_) => {}
            }
            counts.push(reader.len());
        }
        let Some(shapes) = shapes else { unreachable!("paths is non-empty, so shapes was set") };
        Ok(Self { paths, counts, shapes })
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.paths.len()
    }

    /// Total samples across all shards.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the set holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-sample geometry shared by every shard.
    #[must_use]
    pub fn shapes(&self) -> &ShardShapes {
        &self.shapes
    }

    /// The shard paths, in iteration order.
    #[must_use]
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Opens shard `index` for streaming.
    ///
    /// # Errors
    ///
    /// Propagates open/validation errors (the file may have changed since
    /// the scan).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn open_shard(&self, index: usize) -> io::Result<ShardReader> {
        ShardReader::open(&self.paths[index])
    }

    /// Loads shard `index` into an in-memory [`Dataset`].
    ///
    /// # Errors
    ///
    /// Propagates shard errors.
    pub fn load_shard(&self, index: usize) -> io::Result<Dataset> {
        self.open_shard(index)?.read_to_dataset()
    }

    /// Splits off the last `n` shards into their own set (e.g. a held-out
    /// validation split).
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds the number of shards.
    #[must_use]
    pub fn split_off(&mut self, n: usize) -> ShardSet {
        assert!(n <= self.num_shards());
        let at = self.num_shards() - n;
        ShardSet {
            paths: self.paths.split_off(at),
            counts: self.counts.split_off(at),
            shapes: self.shapes.clone(),
        }
    }

    /// Streams every sample of every shard in order — the same consumption
    /// shape as [`Dataset::iter`], with one shard of buffering at most.
    pub fn stream(&self) -> impl Iterator<Item = io::Result<(NdArray, NdArray)>> + '_ {
        self.paths.iter().flat_map(|p| match ShardReader::open(p) {
            Ok(reader) => Box::new(reader) as Box<dyn Iterator<Item = io::Result<(NdArray, NdArray)>>>,
            Err(e) => Box::new(std::iter::once(Err(e))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize) -> (NdArray, NdArray) {
        (NdArray::full(&[2, 3, 3], i as f32 * 0.25), NdArray::full(&[1, 3, 3], -(i as f32)))
    }

    fn shapes() -> ShardShapes {
        ShardShapes { input: [2, 3, 3], target: [1, 3, 3] }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nf_shard_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let dir = tmp("roundtrip");
        let path = dir.join(format!("a.{SHARD_EXTENSION}"));
        let mut w = ShardWriter::create(&path, shapes()).unwrap();
        for i in 0..5 {
            let (x, y) = sample(i);
            w.push(&x, &y).unwrap();
        }
        let (_, n) = w.finish().unwrap();
        assert_eq!(n, 5);
        let reader = ShardReader::open(&path).unwrap();
        assert_eq!(reader.len(), 5);
        for (i, rec) in reader.enumerate() {
            let (x, y) = rec.unwrap();
            let (ex, ey) = sample(i);
            assert_eq!(x, ex);
            assert_eq!(y, ey);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_rejects_wrong_shapes_naming_the_file() {
        let dir = tmp("wrong_shape");
        let path = dir.join(format!("a.{SHARD_EXTENSION}"));
        let mut w = ShardWriter::create(&path, shapes()).unwrap();
        let err = w.push(&NdArray::zeros(&[1, 3, 3]), &NdArray::zeros(&[1, 3, 3])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(&path.display().to_string()), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_transient_read_fault_names_file_and_record() {
        let dir = tmp("fault");
        let path = dir.join(format!("a.{SHARD_EXTENSION}"));
        let mut w = ShardWriter::create(&path, shapes()).unwrap();
        for i in 0..3 {
            let (x, y) = sample(i);
            w.push(&x, &y).unwrap();
        }
        w.finish().unwrap();

        let fault = Arc::new(FaultPlan::parse("shard_read=transient@2", 0).unwrap());
        let mut reader = ShardReader::open_with_faults(&path, fault).unwrap();
        assert!(reader.read_next().unwrap().is_some(), "record 1 reads clean");
        let err = reader.read_next().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let msg = err.to_string();
        assert!(msg.contains("transient"), "{msg}");
        assert!(msg.contains(&path.display().to_string()), "{msg}");
        assert!(msg.contains("record 1"), "0-based failing record index: {msg}");
        // The disabled plan leaves reads untouched.
        let clean = ShardReader::open_with_faults(&path, Arc::new(FaultPlan::disabled())).unwrap();
        assert_eq!(clean.map(Result::unwrap).count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unfinalized_shard_never_appears_at_the_final_path() {
        let dir = tmp("unfinalized");
        let path = dir.join(format!("a.{SHARD_EXTENSION}"));
        let mut w = ShardWriter::create(&path, shapes()).unwrap();
        let (x, y) = sample(0);
        w.push(&x, &y).unwrap();
        drop(w); // no finish(): the crash leaves only the staging file
        assert!(!path.exists(), "final path must stay absent without finish()");
        let staged = staging_path(&path);
        assert!(staged.exists(), "staging file is the crash residue");
        // The staging residue is rejected both by a direct open (placeholder
        // count) and by directory scans (wrong extension).
        let err = ShardReader::open(&staged).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("finalized"), "{err}");
        assert!(ShardSet::open_dir(&dir).is_err(), "scan must not pick up .tmp residue");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_at_the_final_path_is_rejected() {
        // Regression for the pre-rename finalize: a crash mid-finalize
        // could leave a half-patched count at the final path. Construct
        // that exact file and assert the reader refuses it.
        let dir = tmp("torn_header");
        let path = dir.join(format!("a.{SHARD_EXTENSION}"));
        let mut w = ShardWriter::create(&path, shapes()).unwrap();
        let (x, y) = sample(0);
        w.push(&x, &y).unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Placeholder count (finalize never started).
        bytes[COUNT_OFFSET as usize..COUNT_OFFSET as usize + 8]
            .copy_from_slice(&COUNT_PLACEHOLDER.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ShardReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("finalized"), "{err}");

        // Torn count (finalize wrote some but not all count bytes before
        // the crash): the claimed count no longer matches the file size.
        bytes[COUNT_OFFSET as usize..COUNT_OFFSET as usize + 8]
            .copy_from_slice(&[0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff]);
        std::fs::write(&path, &bytes).unwrap();
        let err = ShardReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_byte_is_detected() {
        let dir = tmp("corrupt");
        let path = dir.join(format!("a.{SHARD_EXTENSION}"));
        let mut w = ShardWriter::create(&path, shapes()).unwrap();
        for i in 0..3 {
            let (x, y) = sample(i);
            w.push(&x, &y).unwrap();
        }
        w.finish().unwrap();
        // Flip one payload byte in the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        let record_len = (8 + 4 * (2 * 9 + 9)) as usize;
        let idx = HEADER_LEN as usize + record_len + 20;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let reader = ShardReader::open(&path).unwrap();
        let results: Vec<_> = reader.collect();
        assert_eq!(results.len(), 2, "error poisons the reader; iteration stops");
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_oversized_files_are_rejected() {
        let dir = tmp("truncated");
        let path = dir.join(format!("a.{SHARD_EXTENSION}"));
        let mut w = ShardWriter::create(&path, shapes()).unwrap();
        for i in 0..3 {
            let (x, y) = sample(i);
            w.push(&x, &y).unwrap();
        }
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();

        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(ShardReader::open(&path).is_err(), "truncated tail");

        let mut longer = bytes.clone();
        longer.extend_from_slice(&[0; 3]);
        std::fs::write(&path, &longer).unwrap();
        assert!(ShardReader::open(&path).is_err(), "trailing garbage");

        std::fs::write(&path, &bytes[..20]).unwrap();
        assert!(ShardReader::open(&path).is_err(), "truncated header");

        std::fs::write(&path, b"definitely not a shard file header").unwrap();
        assert!(ShardReader::open(&path).is_err(), "bad magic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_writer_rotates_and_set_reader_streams_in_order() {
        let dir = tmp("set");
        let mut w = ShardSetWriter::new(&dir, "train", shapes(), 4).unwrap();
        for i in 0..10 {
            let (x, y) = sample(i);
            w.push(&x, &y).unwrap();
        }
        assert_eq!(w.total(), 10);
        let shards = w.finish().unwrap();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(|(_, n)| n).sum::<u64>(), 10);

        let mut set = ShardSet::open_dir(&dir).unwrap();
        assert_eq!(set.num_shards(), 3);
        assert_eq!(set.len(), 10);
        for (i, rec) in set.stream().enumerate() {
            let (x, _) = rec.unwrap();
            assert_eq!(x.as_slice()[0], i as f32 * 0.25, "stream order at {i}");
        }
        // Dataset loading is capacity-aware and ordered.
        let ds = set.load_shard(1).unwrap();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.sample(0).0.as_slice()[0], 4.0 * 0.25);

        let val = set.split_off(1);
        assert_eq!(set.num_shards(), 2);
        assert_eq!(val.num_shards(), 1);
        assert_eq!(val.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_dir_rejects_mixed_shapes_and_empty_dirs() {
        let dir = tmp("mixed");
        assert!(ShardSet::open_dir(&dir).is_err(), "empty dir");
        let mut a = ShardWriter::create(dir.join(format!("a.{SHARD_EXTENSION}")), shapes()).unwrap();
        let (x, y) = sample(0);
        a.push(&x, &y).unwrap();
        a.finish().unwrap();
        let other = ShardShapes { input: [1, 3, 3], target: [1, 3, 3] };
        let mut b = ShardWriter::create(dir.join(format!("b.{SHARD_EXTENSION}")), other).unwrap();
        b.push(&NdArray::zeros(&[1, 3, 3]), &NdArray::zeros(&[1, 3, 3])).unwrap();
        b.finish().unwrap();
        assert!(ShardSet::open_dir(&dir).is_err(), "mixed shapes");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
