//! The CMP neural network (paper §IV-A, Fig. 4): extraction layer +
//! pre-trained UNet + objective layers.
//!
//! Forward propagation evaluates the planarity score `S_plan` (Eq. 5b via
//! the toolkit expressions of Eq. 10); one backward propagation yields
//! `∇S_plan` with respect to every fill amount through the chain rule of
//! Eq. 11 — replacing the thousands of simulator invocations a numerical
//! gradient would need.

use crate::extraction::{extract_layer_arrays, extract_layer_tensor, ExtractionConfig, NUM_CHANNELS};
use crate::score::{Coefficients, PlanarityMetrics, NM_TO_ANGSTROM};
use neurfill_cmpsim::{ChipProfile, LayerProfile};
use neurfill_layout::Layout;
use neurfill_nn::{CalibrationScales, Module, QuantUNet, UNet};
use neurfill_tensor::{NdArray, Result, Tensor, TensorError};
use std::cell::OnceCell;

/// Affine normalization between UNet output units and simulator nm:
/// `H_nm = output · scale_nm + offset_nm`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeightNorm {
    /// Additive offset (nm) — typically the mean post-CMP height.
    pub offset_nm: f64,
    /// Multiplicative scale (nm) — typically the height standard deviation.
    pub scale_nm: f64,
}

impl Default for HeightNorm {
    fn default() -> Self {
        Self { offset_nm: 400.0, scale_nm: 20.0 }
    }
}

/// Hyper-parameters of the objective layers.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpNnConfig {
    /// Sharpness `η` (per Å) of the sigmoid/softplus relaxation of the
    /// outlier metric (Eq. 10c).
    pub eta: f64,
}

impl Default for CmpNnConfig {
    fn default() -> Self {
        Self { eta: 0.5 }
    }
}

/// Result of one forward+backward pass of the CMP neural network.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanarityEval {
    /// The planarity score `S_plan` (unclamped slopes; see module docs).
    pub score: f64,
    /// `∇S_plan` w.r.t. the flat fill vector.
    pub gradient: Vec<f64>,
    /// Hard (non-relaxed) planarity metrics of the *predicted* profile.
    pub metrics: PlanarityMetrics,
}

/// Extraction layer + pre-trained UNet + objective layers.
#[derive(Debug)]
pub struct CmpNeuralNetwork {
    unet: UNet,
    height_norm: HeightNorm,
    extraction: ExtractionConfig,
    config: CmpNnConfig,
    /// Per-layer activation scales for the quantized inference backend.
    /// `None` for bundles saved before calibration existed — those run on
    /// the f32 backend only.
    calibration: Option<CalibrationScales>,
    /// Lazily compiled int8 engine; built on first quantized inference.
    quant: OnceCell<QuantUNet>,
}

impl CmpNeuralNetwork {
    /// Assembles the network around a (pre-trained) UNet.
    ///
    /// # Panics
    ///
    /// Panics when the UNet was not built for [`NUM_CHANNELS`] input
    /// channels and one output channel.
    #[must_use]
    pub fn new(
        unet: UNet,
        height_norm: HeightNorm,
        extraction: ExtractionConfig,
        config: CmpNnConfig,
    ) -> Self {
        assert_eq!(unet.config().in_channels, NUM_CHANNELS, "UNet must take the extraction channels");
        assert_eq!(unet.config().out_channels, 1, "UNet must emit one height plane");
        unet.set_training(false);
        Self { unet, height_norm, extraction, config, calibration: None, quant: OnceCell::new() }
    }

    /// Attaches per-layer calibration scales, enabling the quantized
    /// inference backend for this network.
    #[must_use]
    pub fn with_calibration(mut self, calibration: CalibrationScales) -> Self {
        self.calibration = Some(calibration);
        self.quant = OnceCell::new();
        self
    }

    /// The calibration scales carried by this network, if any.
    #[must_use]
    pub fn calibration(&self) -> Option<&CalibrationScales> {
        self.calibration.as_ref()
    }

    /// The lazily compiled int8 engine.
    ///
    /// # Errors
    ///
    /// Returns an error when the bundle carries no calibration scales or
    /// the scales disagree with the UNet architecture.
    fn quant_engine(&self) -> Result<&QuantUNet> {
        if self.quant.get().is_none() {
            let cal = self.calibration.as_ref().ok_or_else(|| {
                TensorError::InvalidArgument(
                    "quantized backend selected but the model bundle carries no calibration scales"
                        .into(),
                )
            })?;
            let engine = QuantUNet::compile(&self.unet, cal)?;
            // A concurrent set can only have stored an identical engine
            // (compile is deterministic), so a lost race is harmless.
            let _ = self.quant.set(engine);
        }
        self.quant
            .get()
            .ok_or_else(|| TensorError::InvalidArgument("quantized engine initialization raced".into()))
    }

    /// Runs one UNet inference through the process-selected tensor backend:
    /// the f32 engine under [`neurfill_tensor::BackendKind::Cpu`], the
    /// compiled int8 engine under `QuantCpu`.
    ///
    /// # Errors
    ///
    /// Returns shape errors, and a missing-calibration error when the
    /// quantized backend is selected on an uncalibrated bundle.
    fn infer_unet(&self, input: &NdArray) -> Result<NdArray> {
        if neurfill_tensor::backend().is_quant() {
            self.quant_engine()?.infer(input)
        } else {
            self.unet.infer(input)
        }
    }

    /// The wrapped UNet.
    #[must_use]
    pub fn unet(&self) -> &UNet {
        &self.unet
    }

    /// The height normalization in use.
    #[must_use]
    pub fn height_norm(&self) -> HeightNorm {
        self.height_norm
    }

    /// The extraction configuration in use.
    #[must_use]
    pub fn extraction(&self) -> &ExtractionConfig {
        &self.extraction
    }

    /// Checks that a layout is compatible with the UNet geometry.
    ///
    /// # Errors
    ///
    /// Returns an error when the window grid is not divisible by the UNet's
    /// down-sampling factor.
    pub fn check_layout(&self, layout: &Layout) -> Result<()> {
        let div = 1usize << self.unet.config().depth;
        if !layout.rows().is_multiple_of(div) || !layout.cols().is_multiple_of(div) {
            return Err(TensorError::InvalidArgument(format!(
                "layout {}x{} not divisible by UNet factor {div}",
                layout.rows(),
                layout.cols()
            )));
        }
        Ok(())
    }

    /// Extracts the UNet input planes of one layer as a rank-3
    /// `[NUM_CHANNELS, rows, cols]` sample — the unit the batched
    /// inference paths coalesce.
    ///
    /// # Errors
    ///
    /// Returns an error on geometry mismatch.
    pub fn extract_window_sample(&self, layout: &Layout, layer: usize) -> Result<NdArray> {
        self.check_layout(layout)?;
        let (rows, cols) = (layout.rows(), layout.cols());
        extract_layer_arrays(layout, layer, &self.extraction).reshape(&[NUM_CHANNELS, rows, cols])
    }

    /// Runs one multi-sample UNet forward over pre-extracted window
    /// samples (see [`CmpNeuralNetwork::extract_window_sample`]) and
    /// returns the denormalized heights (nm, row-major) per sample.
    ///
    /// Each sample's result is bit-identical to a single-sample forward —
    /// the conv stack processes batch elements independently and the
    /// network runs in eval mode — so coalescing forwards from concurrent
    /// jobs never perturbs their outputs.
    ///
    /// # Errors
    ///
    /// Returns an error when `samples` is empty or shapes disagree.
    pub fn predict_heights_batch(&self, samples: &[NdArray]) -> Result<Vec<Vec<f64>>> {
        let outputs = if neurfill_tensor::backend().is_quant() {
            neurfill_nn::forward_batched(self.quant_engine()?, samples)?
        } else {
            neurfill_nn::forward_batched(&self.unet, samples)?
        };
        Ok(outputs
            .iter()
            .map(|out| {
                out.as_slice()
                    .iter()
                    .map(|v| f64::from(*v) * self.height_norm.scale_nm + self.height_norm.offset_nm)
                    .collect()
            })
            .collect())
    }

    /// Predicts the post-CMP heights (nm, row-major) of one layer of an
    /// already-filled layout — the surrogate counterpart of
    /// `CmpSimulator::simulate_layer`.
    ///
    /// This is the plain single-window forward; batch-oriented callers use
    /// [`CmpNeuralNetwork::predict_heights_batch`], which produces
    /// bit-identical heights per window through the faster multi-sample
    /// inference path.
    ///
    /// # Errors
    ///
    /// Returns an error on geometry mismatch.
    pub fn predict_layer_heights(&self, layout: &Layout, layer: usize) -> Result<Vec<f64>> {
        let sample = self.extract_window_sample(layout, layer)?;
        let input = sample.reshape(&[1, NUM_CHANNELS, layout.rows(), layout.cols()])?;
        let out = self.infer_unet(&input)?;
        Ok(out
            .as_slice()
            .iter()
            .map(|v| f64::from(*v) * self.height_norm.scale_nm + self.height_norm.offset_nm)
            .collect())
    }

    /// Predicts a whole-chip profile (heights only; the dishing/erosion
    /// planes of the surrogate are zero — the filling objectives never read
    /// them). All layers go through one multi-sample UNet forward.
    ///
    /// # Errors
    ///
    /// Returns an error on geometry mismatch.
    pub fn predict_profile(&self, layout: &Layout) -> Result<ChipProfile> {
        let (rows, cols) = (layout.rows(), layout.cols());
        let samples: Vec<NdArray> = (0..layout.num_layers())
            .map(|l| self.extract_window_sample(layout, l))
            .collect::<Result<_>>()?;
        let layers = self
            .predict_heights_batch(&samples)?
            .into_iter()
            .map(|h| {
                let zeros = vec![0.0; rows * cols];
                LayerProfile::new(rows, cols, h, zeros.clone(), zeros)
            })
            .collect();
        Ok(ChipProfile::new(layers))
    }

    /// Forward+backward pass: evaluates `S_plan(x)` and `∇S_plan(x)` for a
    /// fill vector over the *base* layout (Eq. 10–11).
    ///
    /// The score uses the unclamped slopes `1 − t/β` so gradients keep
    /// pointing toward the scoring region even when a metric is beyond its
    /// β; the returned [`PlanarityEval::metrics`] are the hard values.
    ///
    /// # Errors
    ///
    /// Returns an error on geometry mismatch or when `x` has the wrong
    /// length.
    pub fn planarity(&self, layout: &Layout, x: &[f64], coeffs: &Coefficients) -> Result<PlanarityEval> {
        self.planarity_impl(layout, x, coeffs, true, false)
    }

    /// Forward-only variant of [`CmpNeuralNetwork::planarity`]: evaluates
    /// `S_plan(x)` without building gradients, through the
    /// process-selected tensor backend — under `QuantCpu` this is the
    /// certified int8 score a quantized pool reports.
    ///
    /// # Errors
    ///
    /// Returns an error on geometry mismatch or when `x` has the wrong
    /// length.
    pub fn planarity_score(&self, layout: &Layout, x: &[f64], coeffs: &Coefficients) -> Result<f64> {
        Ok(self.planarity_impl(layout, x, coeffs, false, true)?.score)
    }

    /// Forward-only `S_plan(x)` pinned to the f32 engine regardless of
    /// the selected tensor backend. Gradient-based synthesis needs one
    /// coherent surface: its line searches evaluate this score and its
    /// descent steps differentiate the same f32 graph — mixing a
    /// quantized `value` with an f32 gradient makes step-acceptance
    /// conditions compare two different functions and derails the
    /// optimizer. The backend seam accelerates the inference-serving
    /// paths ([`Self::predict_heights_batch`] and friends) and the
    /// explicit [`Self::planarity_score`] instead.
    ///
    /// # Errors
    ///
    /// Returns an error on geometry mismatch or when `x` has the wrong
    /// length.
    pub fn planarity_score_f32(&self, layout: &Layout, x: &[f64], coeffs: &Coefficients) -> Result<f64> {
        Ok(self.planarity_impl(layout, x, coeffs, false, false)?.score)
    }

    // The three `expect`s assert that at least one layer was folded into
    // the totals — `check_layout` above guarantees a non-empty layout.
    #[allow(clippy::expect_used)]
    fn planarity_impl(
        &self,
        layout: &Layout,
        x: &[f64],
        coeffs: &Coefficients,
        with_grad: bool,
        via_seam: bool,
    ) -> Result<PlanarityEval> {
        self.check_layout(layout)?;
        if x.len() != layout.num_windows() {
            return Err(TensorError::LengthMismatch { expected: layout.num_windows(), actual: x.len() });
        }
        let (rows, cols) = (layout.rows(), layout.cols());
        let per_layer = rows * cols;
        // The objective layers work on *offset-free* heights (Å relative to
        // the nominal post-CMP level): σ, σ* and the 3-sigma outlier
        // threshold are shift-invariant, and subtracting the ~kÅ offset
        // before the f32 graph avoids catastrophic cancellation that would
        // otherwise drown the gradients in rounding noise.
        let ang = (self.height_norm.scale_nm * NM_TO_ANGSTROM) as f32;
        let offset_ang = self.height_norm.offset_nm * NM_TO_ANGSTROM;
        let eta = self.config.eta as f32;

        let mut x_tensors = Vec::with_capacity(layout.num_layers());
        let mut sigma_total: Option<Tensor> = None;
        let mut sstar_total: Option<Tensor> = None;
        let mut ol_total: Option<Tensor> = None;
        let mut height_profiles = Vec::with_capacity(layout.num_layers());

        for l in 0..layout.num_layers() {
            let slice = &x[l * per_layer..(l + 1) * per_layer];
            let data: Vec<f32> = slice.iter().map(|v| *v as f32).collect();
            let arr = NdArray::from_vec(data, &[1, 1, rows, cols])?;
            let x_l = if with_grad { Tensor::parameter(arr) } else { Tensor::constant(arr) };
            let planes = extract_layer_tensor(layout, l, &x_l, &self.extraction)?;
            // The gradient path needs the autograd graph (f32 only); the
            // seam path lets quantized pools score plans on the int8
            // engine; the pinned-f32 score keeps gradient-based synthesis
            // coherent with its autograd gradient.
            let h_raw = if with_grad {
                self.unet.forward(&planes)?
            } else if via_seam {
                Tensor::constant(self.infer_unet(&planes.value())?)
            } else {
                Tensor::constant(self.unet.infer(&planes.value())?)
            };
            // Offset-free heights in Å, as an [N, M] map.
            let h = h_raw.reshape(&[rows, cols])?.scale(ang);
            height_profiles.push(h.value());

            // Eq. 10a: σ_l = VAR(H).
            let sigma_l = h.var();
            // Eq. 10b: σ*_l = SUM(ABS(H − column means)).
            let col_mean = h.mean_axis(0, true)?;
            let sstar_l = h.sub(&col_mean)?.abs().sum();
            // Eq. 10c with a smooth hinge: ol_l = Σ softplus(η·z)/η where
            // z = H − (mean + 3·std).
            let mean = h.mean();
            let std = sigma_l.clamp_min(1e-12).sqrt();
            let threshold = mean.add(&std.scale(3.0))?;
            let z = h.sub(&threshold)?;
            let ol_l = z.scale(eta).softplus().sum().scale(1.0 / eta);

            sigma_total = Some(match sigma_total {
                Some(t) => t.add(&sigma_l)?,
                None => sigma_l,
            });
            sstar_total = Some(match sstar_total {
                Some(t) => t.add(&sstar_l)?,
                None => sstar_l,
            });
            ol_total = Some(match ol_total {
                Some(t) => t.add(&ol_l)?,
                None => ol_l,
            });
            x_tensors.push(x_l);
        }

        let sigma = sigma_total.expect("at least one layer");
        let sstar = sstar_total.expect("at least one layer");
        let ol = ol_total.expect("at least one layer");

        // Merging layer (Eq. 5b) with unclamped slopes:
        // S_plan = α_σ(1 − σ/β_σ) + α_σ*(1 − σ*/β_σ*) + α_ol(1 − ol/β_ol).
        let a = &coeffs.alphas;
        let s_plan = sigma
            .scale(-(a.sigma / coeffs.beta_sigma) as f32)
            .add(&sstar.scale(-(a.sigma_star / coeffs.beta_sigma_star) as f32))?
            .add(&ol.scale(-(a.ol / coeffs.beta_ol) as f32))?
            .add_scalar((a.sigma + a.sigma_star + a.ol) as f32);

        let mut gradient = Vec::new();
        if with_grad {
            s_plan.backward()?;
            gradient.reserve(x.len());
            for x_l in &x_tensors {
                let g = x_l.grad().unwrap_or_else(|| NdArray::zeros(&[1, 1, rows, cols]));
                gradient.extend(g.as_slice().iter().map(|v| f64::from(*v)));
            }
        }

        // Hard metrics from the predicted height maps.
        let layers: Vec<LayerProfile> = height_profiles
            .into_iter()
            .map(|h| {
                let nm: Vec<f64> =
                    h.as_slice().iter().map(|v| (f64::from(*v) + offset_ang) / NM_TO_ANGSTROM).collect();
                let zeros = vec![0.0; rows * cols];
                LayerProfile::new(rows, cols, nm, zeros.clone(), zeros)
            })
            .collect();
        let metrics = PlanarityMetrics::from_profile(&ChipProfile::new(layers));

        Ok(PlanarityEval { score: f64::from(s_plan.item()), gradient, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Alphas;
    use neurfill_layout::{DesignKind, DesignSpec};
    use neurfill_nn::UNetConfig;
    use rand::SeedableRng;

    fn network() -> CmpNeuralNetwork {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let unet = UNet::new(
            UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
            &mut rng,
        );
        CmpNeuralNetwork::new(
            unet,
            HeightNorm::default(),
            ExtractionConfig::default(),
            CmpNnConfig::default(),
        )
    }

    fn coeffs() -> Coefficients {
        Coefficients {
            alphas: Alphas::default(),
            beta_sigma: 100.0,
            beta_sigma_star: 1000.0,
            beta_ol: 10.0,
            beta_ov: 1e6,
            beta_fa: 1e6,
            beta_fs_mb: 30.0,
            beta_time_s: 60.0,
            beta_mem_gb: 8.0,
        }
    }

    fn layout() -> Layout {
        DesignSpec::new(DesignKind::CmpTest, 8, 8, 5).generate()
    }

    #[test]
    fn planarity_returns_full_gradient() {
        let net = network();
        let l = layout();
        let x = vec![0.0; l.num_windows()];
        let eval = net.planarity(&l, &x, &coeffs()).unwrap();
        assert_eq!(eval.gradient.len(), l.num_windows());
        assert!(eval.score.is_finite());
        assert!(eval.gradient.iter().any(|g| *g != 0.0));
        assert!(eval.metrics.sigma >= 0.0);
    }

    #[test]
    fn planarity_gradient_matches_directional_finite_difference() {
        // Per-coordinate finite differences are unreliable here: the f32
        // network's ReLU/max-pool kinks make pointwise slopes noisy. A
        // directional derivative along a dense direction averages over
        // kinks and must agree with ∇S_plan·d.
        let net = network();
        let l = layout();
        let c = coeffs();
        let n = l.num_windows();
        let x = vec![100.0; n];
        let eval = net.planarity(&l, &x, &c).unwrap();
        let dir: Vec<f64> = (0..n).map(|i| 0.5 + ((i * 7919) % 13) as f64 / 13.0).collect();
        let directional: f64 = eval.gradient.iter().zip(&dir).map(|(g, d)| g * d).sum();
        // ε must stay below the ReLU/max-pool kink spacing (µm² units).
        let eps = 0.25;
        let xp: Vec<f64> = x.iter().zip(&dir).map(|(v, d)| v + eps * d).collect();
        let xm: Vec<f64> = x.iter().zip(&dir).map(|(v, d)| v - eps * d).collect();
        let fp = net.planarity(&l, &xp, &c).unwrap().score;
        let fm = net.planarity(&l, &xm, &c).unwrap().score;
        let fd = (fp - fm) / (2.0 * eps);
        assert!(
            (fd - directional).abs() < 0.35 * (1e-5 + fd.abs()),
            "directional fd={fd:e} analytic={directional:e}"
        );
    }

    #[test]
    fn predict_profile_has_layout_dims() {
        let net = network();
        let l = layout();
        let p = net.predict_profile(&l).unwrap();
        assert_eq!(p.num_layers(), 3);
        assert_eq!(p.layer(0).rows(), 8);
    }

    #[test]
    fn batched_heights_match_per_layer_prediction() {
        let net = network();
        let l = layout();
        let samples: Vec<NdArray> =
            (0..l.num_layers()).map(|layer| net.extract_window_sample(&l, layer).unwrap()).collect();
        let batched = net.predict_heights_batch(&samples).unwrap();
        assert_eq!(batched.len(), l.num_layers());
        for (layer, heights) in batched.iter().enumerate() {
            let single = net.predict_layer_heights(&l, layer).unwrap();
            assert_eq!(heights, &single, "layer {layer} must be bit-identical");
        }
        assert!(net.predict_heights_batch(&[]).is_err());
    }

    #[test]
    fn rejects_incompatible_layout() {
        let net = network();
        let l = DesignSpec::new(DesignKind::CmpTest, 6, 6, 5).generate(); // 6 % 4 != 0
        assert!(net.check_layout(&l).is_err());
        assert!(net.predict_profile(&l).is_err());
    }

    #[test]
    fn rejects_wrong_x_length() {
        let net = network();
        let l = layout();
        assert!(net.planarity(&l, &[0.0; 3], &coeffs()).is_err());
    }

    #[test]
    fn score_only_path_matches_full_eval() {
        let net = network();
        let l = layout();
        let x = vec![25.0; l.num_windows()];
        let full = net.planarity(&l, &x, &coeffs()).unwrap();
        let fast = net.planarity_score(&l, &x, &coeffs()).unwrap();
        assert_eq!(full.score, fast);
    }

    #[test]
    fn planarity_is_deterministic() {
        let net = network();
        let l = layout();
        let x = vec![50.0; l.num_windows()];
        let a = net.planarity(&l, &x, &coeffs()).unwrap();
        let b = net.planarity(&l, &x, &coeffs()).unwrap();
        assert_eq!(a.score, b.score);
        assert_eq!(a.gradient, b.gradient);
    }
}
