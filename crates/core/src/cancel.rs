//! Cooperative cancellation and deadlines for long-running synthesis.
//!
//! A [`CancelToken`] is a cheap, cloneable, thread-safe handle that a
//! caller (e.g. the batch runtime's worker pool) threads into
//! [`crate::pipeline::FillingFlow::run_cancellable`] and from there into
//! the SQP/NMMSO iteration loops. Cancellation is *cooperative*: the
//! optimizers poll the token once per major iteration, so a cancelled or
//! deadline-expired job stops mid-optimization instead of running to
//! completion and being discarded afterwards.
//!
//! Cancellation reasons are reported as `Err(String)` through the existing
//! flow error channel; the messages carry the stable markers
//! [`CANCELLED_MARKER`] and [`DEADLINE_MARKER`] so upper layers can
//! classify them without a shared error enum.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Marker substring present in every explicit-cancellation error message.
pub const CANCELLED_MARKER: &str = "cancelled";

/// Marker substring present in every deadline-expiry error message.
pub const DEADLINE_MARKER: &str = "deadline exceeded";

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle with an optional hard deadline.
///
/// The token reports cancellation when either [`CancelToken::cancel`] was
/// called on any clone or the construction-time deadline has passed. A
/// token built with [`CancelToken::never`] reports neither, making
/// cancellable code paths bit-identical to their plain counterparts.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::never()
    }
}

impl CancelToken {
    /// A token that can be cancelled explicitly but has no deadline.
    #[must_use]
    pub fn new() -> Self {
        Self { inner: Arc::new(Inner { flag: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that is never cancelled (no deadline, and callers keep no
    /// handle to cancel it through). Use for plain, non-cancellable runs.
    #[must_use]
    pub fn never() -> Self {
        Self::new()
    }

    /// A token that additionally reports cancellation once `deadline`
    /// passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self { inner: Arc::new(Inner { flag: AtomicBool::new(false), deadline: Some(deadline) }) }
    }

    /// A token with an optional deadline (`None` behaves like
    /// [`CancelToken::new`]).
    #[must_use]
    pub fn with_deadline_opt(deadline: Option<Instant>) -> Self {
        Self { inner: Arc::new(Inner { flag: AtomicBool::new(false), deadline }) }
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] was called (ignores the deadline).
    #[must_use]
    pub fn cancel_requested(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
    }

    /// Whether the deadline (if any) has passed.
    #[must_use]
    pub fn deadline_expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() > d)
    }

    /// The configured deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Whether work should stop: explicitly cancelled or past deadline.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel_requested() || self.deadline_expired()
    }

    /// Returns `Err` with a classifiable message when cancelled, naming
    /// `context` (e.g. `"synthesis"`) so the failure is attributable.
    ///
    /// # Errors
    ///
    /// `Err(... cancelled ...)` after [`CancelToken::cancel`];
    /// `Err(... deadline exceeded ...)` once the deadline passes.
    pub fn check(&self, context: &str) -> Result<(), String> {
        if self.cancel_requested() {
            return Err(format!("{CANCELLED_MARKER} during {context}"));
        }
        if self.deadline_expired() {
            return Err(format!("{DEADLINE_MARKER} during {context}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert!(t.check("anything").is_ok());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        let err = t.check("synthesis").unwrap_err();
        assert!(err.contains(CANCELLED_MARKER) && err.contains("synthesis"), "{err}");
    }

    #[test]
    fn past_deadline_reports_expiry() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.deadline_expired());
        assert!(t.is_cancelled());
        assert!(!t.cancel_requested());
        let err = t.check("verification").unwrap_err();
        assert!(err.contains(DEADLINE_MARKER) && err.contains("verification"), "{err}");
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::with_deadline_opt(Some(Instant::now() + Duration::from_secs(3600)));
        assert!(!t.is_cancelled());
        assert!(t.check("x").is_ok());
    }
}
