//! The extraction layer (paper §IV-A, Fig. 4): maps a layout and a fill
//! vector `x` to the layout-parameter matrix `L` consumed by the UNet,
//! *differentiably* in `x`.
//!
//! Pattern-related parameters are updated from `x` exactly as
//! [`neurfill_layout::apply_fill`] updates the layout, so the surrogate
//! sees identical inputs at training time (extracted from filled layouts)
//! and at optimization time (computed from the base layout plus `x`):
//!
//! | channel | content | dependence on `x` |
//! |---------|---------|-------------------|
//! | 0 | metal density | `ρ + x/area` (linear) |
//! | 1 | copper perimeter (scaled) | `(per + 4x/edge)/scale` (linear) |
//! | 2 | average feature width (scaled) | `(w·m + edge·x)/(m + x)` (rational) |
//! | 3 | remaining slack fraction | `(slack − x)/area` (linear) |

use neurfill_layout::{DummySpec, Layout, TileRect};
use neurfill_tensor::{NdArray, Result, Tensor};

/// Number of layout-parameter channels.
pub const NUM_CHANNELS: usize = 4;

/// Normalization and dummy-geometry constants of the extraction layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionConfig {
    /// Divisor bringing per-window perimeter (µm) to O(1).
    pub perimeter_scale: f64,
    /// Divisor bringing feature width (µm) to O(1).
    pub width_scale: f64,
    /// Dummy geometry (must match the insertion step).
    pub dummy: DummySpec,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self { perimeter_scale: 100_000.0, width_scale: 2.0, dummy: DummySpec::default() }
    }
}

/// Extracts the `[C, N, M]` parameter planes of one layer of an
/// already-filled layout (training-time path; no autodiff).
///
/// # Panics
///
/// Panics when `layer` is out of range.
// The `expect` asserts the vec length computed from the same dims.
#[allow(clippy::expect_used)]
#[must_use]
pub fn extract_layer_arrays(layout: &Layout, layer: usize, cfg: &ExtractionConfig) -> NdArray {
    let g = layout.layer(layer);
    let (rows, cols) = (g.rows(), g.cols());
    let area = layout.window_area();
    let mut data = Vec::with_capacity(NUM_CHANNELS * rows * cols);
    data.extend(g.iter().map(|w| w.density as f32));
    data.extend(g.iter().map(|w| (w.perimeter / cfg.perimeter_scale) as f32));
    data.extend(g.iter().map(|w| (w.avg_width / cfg.width_scale) as f32));
    data.extend(g.iter().map(|w| (w.slack / area) as f32));
    NdArray::from_vec(data, &[NUM_CHANNELS, rows, cols]).expect("sized from dims")
}

/// Extracts the `[C, rows, cols]` parameter planes of one *region* of a
/// layer, reading only the windows inside `rect` — the building block of
/// bounded streaming extraction ([`ExtractionStream`]): unlike
/// [`extract_layer_arrays`], nothing proportional to the full layer is
/// allocated.
///
/// The planes are bitwise equal to the corresponding region of
/// [`extract_layer_arrays`] (extraction is pointwise per window).
///
/// # Panics
///
/// Panics when `layer` is out of range or `rect` exceeds the layer.
// The `expect` asserts the vec length computed from the same dims.
#[allow(clippy::expect_used)]
#[must_use]
pub fn extract_region_arrays(
    layout: &Layout,
    layer: usize,
    rect: TileRect,
    cfg: &ExtractionConfig,
) -> NdArray {
    let g = layout.layer(layer);
    assert!(
        rect.row_end() <= g.rows() && rect.col_end() <= g.cols() && !rect.is_empty(),
        "region exceeds the layer"
    );
    let area = layout.window_area();
    let mut data = Vec::with_capacity(NUM_CHANNELS * rect.len());
    let mut plane = |f: &dyn Fn(&neurfill_layout::WindowPattern) -> f32| {
        for r in rect.row0..rect.row_end() {
            for c in rect.col0..rect.col_end() {
                data.push(f(g.get(r, c)));
            }
        }
    };
    plane(&|w| w.density as f32);
    plane(&|w| (w.perimeter / cfg.perimeter_scale) as f32);
    plane(&|w| (w.avg_width / cfg.width_scale) as f32);
    plane(&|w| (w.slack / area) as f32);
    NdArray::from_vec(data, &[NUM_CHANNELS, rect.rows, rect.cols]).expect("sized from dims")
}

/// Bounded streaming extraction over a sequence of tile regions: each
/// `next()` materializes *one* tile's layout (via the injected
/// `materialize` closure) and extracts its planes, so peak memory is one
/// tile's windows plus one tile's planes — never the whole chip's.
///
/// For chip-scale sources the closure is typically
/// `|rect| source.tile_layout(rect)`; for an already-materialized layout
/// use [`ExtractionStream::over_layout`].
pub struct ExtractionStream<'a, I, F>
where
    I: Iterator<Item = TileRect>,
    F: FnMut(TileRect) -> Layout,
{
    rects: I,
    materialize: F,
    layer: usize,
    cfg: &'a ExtractionConfig,
}

impl<I, F> std::fmt::Debug for ExtractionStream<'_, I, F>
where
    I: Iterator<Item = TileRect>,
    F: FnMut(TileRect) -> Layout,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtractionStream").field("layer", &self.layer).finish_non_exhaustive()
    }
}

impl<'a, I, F> ExtractionStream<'a, I, F>
where
    I: Iterator<Item = TileRect>,
    F: FnMut(TileRect) -> Layout,
{
    /// A stream over `rects`, materializing each tile's layout with
    /// `materialize` (which must return a layout of exactly the rect's
    /// dimensions).
    pub fn new(rects: I, materialize: F, layer: usize, cfg: &'a ExtractionConfig) -> Self {
        Self { rects, materialize, layer, cfg }
    }
}

impl<'a, I> ExtractionStream<'a, I, Box<dyn FnMut(TileRect) -> Layout + 'a>>
where
    I: Iterator<Item = TileRect>,
{
    /// A stream over regions of an already-materialized layout.
    pub fn over_layout(layout: &'a Layout, rects: I, layer: usize, cfg: &'a ExtractionConfig) -> Self {
        Self::new(rects, Box::new(move |rect| layout.crop(rect)), layer, cfg)
    }
}

impl<I, F> Iterator for ExtractionStream<'_, I, F>
where
    I: Iterator<Item = TileRect>,
    F: FnMut(TileRect) -> Layout,
{
    type Item = (TileRect, NdArray);

    fn next(&mut self) -> Option<Self::Item> {
        let rect = self.rects.next()?;
        let sub = (self.materialize)(rect);
        assert_eq!(
            (sub.rows(), sub.cols()),
            (rect.rows, rect.cols),
            "materialized tile disagrees with its rect"
        );
        let whole = TileRect { row0: 0, col0: 0, rows: rect.rows, cols: rect.cols };
        Some((rect, extract_region_arrays(&sub, self.layer, whole, self.cfg)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.rects.size_hint()
    }
}

/// Builds the differentiable `[1, C, N, M]` parameter tensor of one layer
/// from the *base* (unfilled) layout and the fill tensor `x_layer` of shape
/// `[1, 1, N, M]` (µm² per window).
///
/// Gradients flow from the result back into `x_layer`; this is the
/// `∂L/∂x` edge of the paper's Eq. 11.
///
/// # Errors
///
/// Returns an error when `x_layer` has the wrong shape.
///
/// # Panics
///
/// Panics when `layer` is out of range.
// The `expect` inside `plane` asserts the vec length computed from the
// same grid dims.
#[allow(clippy::expect_used)]
pub fn extract_layer_tensor(
    layout: &Layout,
    layer: usize,
    x_layer: &Tensor,
    cfg: &ExtractionConfig,
) -> Result<Tensor> {
    let g = layout.layer(layer);
    let (rows, cols) = (g.rows(), g.cols());
    if x_layer.shape() != [1, 1, rows, cols] {
        return Err(neurfill_tensor::TensorError::ShapeMismatch {
            lhs: x_layer.shape(),
            rhs: vec![1, 1, rows, cols],
            op: "extract_layer_tensor",
        });
    }
    let area = layout.window_area() as f32;
    let plane = |f: &dyn Fn(&neurfill_layout::WindowPattern) -> f32| -> Tensor {
        let data: Vec<f32> = g.iter().map(f).collect();
        Tensor::constant(NdArray::from_vec(data, &[1, 1, rows, cols]).expect("sized"))
    };

    // Channel 0: density = ρ + x/area.
    let density = plane(&|w| w.density as f32).add(&x_layer.scale(1.0 / area))?;

    // Channel 1: perimeter = (per + 4x/edge)/scale.
    let per_scale = cfg.perimeter_scale as f32;
    let edge = cfg.dummy.edge_um as f32;
    let perimeter = plane(&|w| (w.perimeter / cfg.perimeter_scale) as f32)
        .add(&x_layer.scale(4.0 / (edge * per_scale)))?;

    // Channel 2: width = (w·m + edge·x)/(m + x)/width_scale, m = ρ·area.
    let metal = plane(&|w| (w.density as f32) * area);
    let w_metal = plane(&|w| (w.avg_width as f32) * (w.density as f32) * area);
    let numerator = w_metal.add(&x_layer.scale(edge))?;
    let denominator = metal.add(x_layer)?.clamp_min(1e-3);
    let width = numerator.div(&denominator)?.scale(1.0 / cfg.width_scale as f32);

    // Channel 3: slack fraction = (slack − x)/area.
    let slack = plane(&|w| (w.slack / layout.window_area()) as f32).sub(&x_layer.scale(1.0 / area))?;

    Tensor::concat(&[density, perimeter, width, slack], 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_layout::{apply_fill, DesignKind, DesignSpec, FillPlan};

    fn layout() -> Layout {
        DesignSpec::new(DesignKind::Fpga, 6, 6, 3).generate()
    }

    fn x_tensor(layout: &Layout, plan: &FillPlan, layer: usize) -> Tensor {
        let (rows, cols) = (layout.rows(), layout.cols());
        let start = layer * rows * cols;
        let data: Vec<f32> =
            plan.as_slice()[start..start + rows * cols].iter().map(|v| *v as f32).collect();
        Tensor::parameter(NdArray::from_vec(data, &[1, 1, rows, cols]).unwrap())
    }

    #[test]
    fn zero_fill_tensor_matches_array_extraction() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let plan = FillPlan::zeros(&l);
        for layer in 0..l.num_layers() {
            let arrays = extract_layer_arrays(&l, layer, &cfg);
            let tensor = extract_layer_tensor(&l, layer, &x_tensor(&l, &plan, layer), &cfg).unwrap();
            let t = tensor.value().reshape(&[NUM_CHANNELS, 6, 6]).unwrap();
            for (a, b) in arrays.as_slice().iter().zip(t.as_slice()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn filled_tensor_matches_array_extraction_of_filled_layout() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let mut plan = FillPlan::zeros(&l);
        for (i, (x, s)) in plan.as_mut_slice().iter_mut().zip(l.slack_vector()).enumerate() {
            *x = (i % 5) as f64 / 5.0 * s;
        }
        let filled = apply_fill(&l, &plan, &cfg.dummy);
        for layer in 0..l.num_layers() {
            let arrays = extract_layer_arrays(&filled, layer, &cfg);
            let tensor = extract_layer_tensor(&l, layer, &x_tensor(&l, &plan, layer), &cfg).unwrap();
            let t = tensor.value().reshape(&[NUM_CHANNELS, 6, 6]).unwrap();
            for (k, (a, b)) in arrays.as_slice().iter().zip(t.as_slice()).enumerate() {
                assert!((a - b).abs() < 2e-4, "channel element {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn extraction_is_differentiable_in_x() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let plan = FillPlan::zeros(&l);
        let x = x_tensor(&l, &plan, 0);
        let out = extract_layer_tensor(&l, 0, &x, &cfg).unwrap();
        out.sum().backward().unwrap();
        let g = x.grad().expect("gradient flows to x");
        // Density (1/area) + perimeter (4/(edge·scale)) + width + slack
        // (−1/area) sensitivities all contribute.
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
        assert!(g.as_slice().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn density_sensitivity_is_one_over_area() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let plan = FillPlan::zeros(&l);
        let x = x_tensor(&l, &plan, 0);
        let out = extract_layer_tensor(&l, 0, &x, &cfg).unwrap();
        // Sum only the density channel.
        let channels = out.reshape(&[NUM_CHANNELS, 36]).unwrap();
        let mask = {
            let mut m = vec![0.0f32; NUM_CHANNELS * 36];
            m[..36].fill(1.0);
            Tensor::constant(NdArray::from_vec(m, &[NUM_CHANNELS, 36]).unwrap())
        };
        channels.mul(&mask).unwrap().sum().backward().unwrap();
        let g = x.grad().unwrap();
        let expect = 1.0 / l.window_area() as f32;
        for v in g.as_slice() {
            assert!((v - expect).abs() < 1e-9, "{v} vs {expect}");
        }
    }

    #[test]
    fn region_extraction_matches_full_layer_slice() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let full = extract_layer_arrays(&l, 1, &cfg);
        let rect = TileRect { row0: 1, col0: 2, rows: 3, cols: 4 };
        let region = extract_region_arrays(&l, 1, rect, &cfg);
        assert_eq!(region.shape(), &[NUM_CHANNELS, 3, 4]);
        for ch in 0..NUM_CHANNELS {
            for r in 0..rect.rows {
                for c in 0..rect.cols {
                    let a = region.as_slice()[(ch * rect.rows + r) * rect.cols + c];
                    let b = full.as_slice()[(ch * 6 + rect.row0 + r) * 6 + rect.col0 + c];
                    assert_eq!(a, b, "channel {ch} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn streaming_extraction_covers_a_tiling_lazily() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let full = extract_layer_arrays(&l, 0, &cfg);
        let tiling = neurfill_layout::Tiling::square(6, 6, 3, 0);
        let mut materialized = 0usize;
        let stream = ExtractionStream::new(
            tiling.tiles().map(|t| t.core),
            |rect| {
                materialized += 1;
                l.crop(rect)
            },
            0,
            &cfg,
        );
        let mut seen = 0usize;
        for (rect, planes) in stream {
            assert_eq!(planes.shape(), &[NUM_CHANNELS, rect.rows, rect.cols]);
            for ch in 0..NUM_CHANNELS {
                for r in 0..rect.rows {
                    for c in 0..rect.cols {
                        let a = planes.as_slice()[(ch * rect.rows + r) * rect.cols + c];
                        let b = full.as_slice()[(ch * 6 + rect.row0 + r) * 6 + rect.col0 + c];
                        assert_eq!(a, b);
                    }
                }
            }
            seen += rect.len();
        }
        assert_eq!(seen, 36, "tiles must cover the layer exactly");
        // One materialization per tile: the stream held one tile at a time.
        assert_eq!(materialized, tiling.num_tiles());

        // Laziness: nothing is materialized until the stream is polled.
        let mut count = 0usize;
        let stream = ExtractionStream::new(
            tiling.tiles().map(|t| t.core),
            |rect| {
                count += 1;
                l.crop(rect)
            },
            0,
            &cfg,
        );
        drop(stream);
        assert_eq!(count, 0);

        // The boxed-crop convenience agrees with the closure form.
        let via_layout: Vec<_> =
            ExtractionStream::over_layout(&l, tiling.tiles().map(|t| t.core), 0, &cfg).collect();
        assert_eq!(via_layout.len(), tiling.num_tiles());
    }

    #[test]
    fn rejects_wrong_x_shape() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let x = Tensor::constant(NdArray::zeros(&[1, 1, 3, 3]));
        assert!(extract_layer_tensor(&l, 0, &x, &cfg).is_err());
    }
}
