//! The extraction layer (paper §IV-A, Fig. 4): maps a layout and a fill
//! vector `x` to the layout-parameter matrix `L` consumed by the UNet,
//! *differentiably* in `x`.
//!
//! Pattern-related parameters are updated from `x` exactly as
//! [`neurfill_layout::apply_fill`] updates the layout, so the surrogate
//! sees identical inputs at training time (extracted from filled layouts)
//! and at optimization time (computed from the base layout plus `x`):
//!
//! | channel | content | dependence on `x` |
//! |---------|---------|-------------------|
//! | 0 | metal density | `ρ + x/area` (linear) |
//! | 1 | copper perimeter (scaled) | `(per + 4x/edge)/scale` (linear) |
//! | 2 | average feature width (scaled) | `(w·m + edge·x)/(m + x)` (rational) |
//! | 3 | remaining slack fraction | `(slack − x)/area` (linear) |

use neurfill_layout::{DummySpec, Layout};
use neurfill_tensor::{NdArray, Result, Tensor};

/// Number of layout-parameter channels.
pub const NUM_CHANNELS: usize = 4;

/// Normalization and dummy-geometry constants of the extraction layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionConfig {
    /// Divisor bringing per-window perimeter (µm) to O(1).
    pub perimeter_scale: f64,
    /// Divisor bringing feature width (µm) to O(1).
    pub width_scale: f64,
    /// Dummy geometry (must match the insertion step).
    pub dummy: DummySpec,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self { perimeter_scale: 100_000.0, width_scale: 2.0, dummy: DummySpec::default() }
    }
}

/// Extracts the `[C, N, M]` parameter planes of one layer of an
/// already-filled layout (training-time path; no autodiff).
///
/// # Panics
///
/// Panics when `layer` is out of range.
// The `expect` asserts the vec length computed from the same dims.
#[allow(clippy::expect_used)]
#[must_use]
pub fn extract_layer_arrays(layout: &Layout, layer: usize, cfg: &ExtractionConfig) -> NdArray {
    let g = layout.layer(layer);
    let (rows, cols) = (g.rows(), g.cols());
    let area = layout.window_area();
    let mut data = Vec::with_capacity(NUM_CHANNELS * rows * cols);
    data.extend(g.iter().map(|w| w.density as f32));
    data.extend(g.iter().map(|w| (w.perimeter / cfg.perimeter_scale) as f32));
    data.extend(g.iter().map(|w| (w.avg_width / cfg.width_scale) as f32));
    data.extend(g.iter().map(|w| (w.slack / area) as f32));
    NdArray::from_vec(data, &[NUM_CHANNELS, rows, cols]).expect("sized from dims")
}

/// Builds the differentiable `[1, C, N, M]` parameter tensor of one layer
/// from the *base* (unfilled) layout and the fill tensor `x_layer` of shape
/// `[1, 1, N, M]` (µm² per window).
///
/// Gradients flow from the result back into `x_layer`; this is the
/// `∂L/∂x` edge of the paper's Eq. 11.
///
/// # Errors
///
/// Returns an error when `x_layer` has the wrong shape.
///
/// # Panics
///
/// Panics when `layer` is out of range.
// The `expect` inside `plane` asserts the vec length computed from the
// same grid dims.
#[allow(clippy::expect_used)]
pub fn extract_layer_tensor(
    layout: &Layout,
    layer: usize,
    x_layer: &Tensor,
    cfg: &ExtractionConfig,
) -> Result<Tensor> {
    let g = layout.layer(layer);
    let (rows, cols) = (g.rows(), g.cols());
    if x_layer.shape() != [1, 1, rows, cols] {
        return Err(neurfill_tensor::TensorError::ShapeMismatch {
            lhs: x_layer.shape(),
            rhs: vec![1, 1, rows, cols],
            op: "extract_layer_tensor",
        });
    }
    let area = layout.window_area() as f32;
    let plane = |f: &dyn Fn(&neurfill_layout::WindowPattern) -> f32| -> Tensor {
        let data: Vec<f32> = g.iter().map(f).collect();
        Tensor::constant(NdArray::from_vec(data, &[1, 1, rows, cols]).expect("sized"))
    };

    // Channel 0: density = ρ + x/area.
    let density = plane(&|w| w.density as f32).add(&x_layer.scale(1.0 / area))?;

    // Channel 1: perimeter = (per + 4x/edge)/scale.
    let per_scale = cfg.perimeter_scale as f32;
    let edge = cfg.dummy.edge_um as f32;
    let perimeter = plane(&|w| (w.perimeter / cfg.perimeter_scale) as f32)
        .add(&x_layer.scale(4.0 / (edge * per_scale)))?;

    // Channel 2: width = (w·m + edge·x)/(m + x)/width_scale, m = ρ·area.
    let metal = plane(&|w| (w.density as f32) * area);
    let w_metal = plane(&|w| (w.avg_width as f32) * (w.density as f32) * area);
    let numerator = w_metal.add(&x_layer.scale(edge))?;
    let denominator = metal.add(x_layer)?.clamp_min(1e-3);
    let width = numerator.div(&denominator)?.scale(1.0 / cfg.width_scale as f32);

    // Channel 3: slack fraction = (slack − x)/area.
    let slack = plane(&|w| (w.slack / layout.window_area()) as f32).sub(&x_layer.scale(1.0 / area))?;

    Tensor::concat(&[density, perimeter, width, slack], 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_layout::{apply_fill, DesignKind, DesignSpec, FillPlan};

    fn layout() -> Layout {
        DesignSpec::new(DesignKind::Fpga, 6, 6, 3).generate()
    }

    fn x_tensor(layout: &Layout, plan: &FillPlan, layer: usize) -> Tensor {
        let (rows, cols) = (layout.rows(), layout.cols());
        let start = layer * rows * cols;
        let data: Vec<f32> =
            plan.as_slice()[start..start + rows * cols].iter().map(|v| *v as f32).collect();
        Tensor::parameter(NdArray::from_vec(data, &[1, 1, rows, cols]).unwrap())
    }

    #[test]
    fn zero_fill_tensor_matches_array_extraction() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let plan = FillPlan::zeros(&l);
        for layer in 0..l.num_layers() {
            let arrays = extract_layer_arrays(&l, layer, &cfg);
            let tensor = extract_layer_tensor(&l, layer, &x_tensor(&l, &plan, layer), &cfg).unwrap();
            let t = tensor.value().reshape(&[NUM_CHANNELS, 6, 6]).unwrap();
            for (a, b) in arrays.as_slice().iter().zip(t.as_slice()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn filled_tensor_matches_array_extraction_of_filled_layout() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let mut plan = FillPlan::zeros(&l);
        for (i, (x, s)) in plan.as_mut_slice().iter_mut().zip(l.slack_vector()).enumerate() {
            *x = (i % 5) as f64 / 5.0 * s;
        }
        let filled = apply_fill(&l, &plan, &cfg.dummy);
        for layer in 0..l.num_layers() {
            let arrays = extract_layer_arrays(&filled, layer, &cfg);
            let tensor = extract_layer_tensor(&l, layer, &x_tensor(&l, &plan, layer), &cfg).unwrap();
            let t = tensor.value().reshape(&[NUM_CHANNELS, 6, 6]).unwrap();
            for (k, (a, b)) in arrays.as_slice().iter().zip(t.as_slice()).enumerate() {
                assert!((a - b).abs() < 2e-4, "channel element {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn extraction_is_differentiable_in_x() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let plan = FillPlan::zeros(&l);
        let x = x_tensor(&l, &plan, 0);
        let out = extract_layer_tensor(&l, 0, &x, &cfg).unwrap();
        out.sum().backward().unwrap();
        let g = x.grad().expect("gradient flows to x");
        // Density (1/area) + perimeter (4/(edge·scale)) + width + slack
        // (−1/area) sensitivities all contribute.
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
        assert!(g.as_slice().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn density_sensitivity_is_one_over_area() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let plan = FillPlan::zeros(&l);
        let x = x_tensor(&l, &plan, 0);
        let out = extract_layer_tensor(&l, 0, &x, &cfg).unwrap();
        // Sum only the density channel.
        let channels = out.reshape(&[NUM_CHANNELS, 36]).unwrap();
        let mask = {
            let mut m = vec![0.0f32; NUM_CHANNELS * 36];
            m[..36].fill(1.0);
            Tensor::constant(NdArray::from_vec(m, &[NUM_CHANNELS, 36]).unwrap())
        };
        channels.mul(&mask).unwrap().sum().backward().unwrap();
        let g = x.grad().unwrap();
        let expect = 1.0 / l.window_area() as f32;
        for v in g.as_slice() {
            assert!((v - expect).abs() < 1e-9, "{v} vs {expect}");
        }
    }

    #[test]
    fn rejects_wrong_x_shape() {
        let l = layout();
        let cfg = ExtractionConfig::default();
        let x = Tensor::constant(NdArray::zeros(&[1, 1, 3, 3]));
        assert!(extract_layer_tensor(&l, 0, &x, &cfg).is_err());
    }
}
