//! Table III assembly: evaluating a synthesized plan with the *golden*
//! simulator, scoring every column, and formatting rows like the paper.

use crate::pd::estimate;
use crate::score::{Coefficients, PlanarityMetrics, ScoreBreakdown};
use neurfill_cmpsim::CmpSimulator;
use neurfill_layout::{apply_fill, DummySpec, FillPlan, Layout};

/// Which method produced a plan — used by the analytic memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Rule-based closed form (Lin [10]).
    Lin,
    /// Rule-based SQP (Tao [11]).
    Tao,
    /// Model-based SQP with numerical gradients (Cai [12]).
    Cai {
        /// Finite-difference worker threads.
        threads: usize,
    },
    /// NeurFill with the PKB starting point.
    NeurFillPkb,
    /// NeurFill with multi-modal starting-points search.
    NeurFillMm {
        /// Particles per swarm.
        swarm_size: usize,
        /// Maximum concurrent swarms.
        max_swarms: usize,
    },
}

impl MethodKind {
    /// Display name matching the paper's Method column.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Lin => "Lin [10]",
            MethodKind::Tao => "Tao [11]",
            MethodKind::Cai { .. } => "Cai [12]",
            MethodKind::NeurFillPkb => "NeurFill (PKB)",
            MethodKind::NeurFillMm { .. } => "NeurFill (MM)",
        }
    }
}

/// Analytic peak-memory proxy (GB).
///
/// Per-method working-set model (documented in EXPERIMENTS.md): rule-based
/// methods hold a few vectors per window; Cai additionally holds simulator
/// state per finite-difference worker; NeurFill holds the network
/// parameters and layer activations; the multi-modal variant additionally
/// holds the swarm population. The *ordering* (MM > Cai ≥ Tao > PKB ≈ Lin
/// at the paper's scale) is the reproduced signal, not the absolute GB.
#[must_use]
pub fn estimate_memory_gb(kind: MethodKind, layout: &Layout, network_parameters: usize) -> f64 {
    let w = layout.num_windows() as f64;
    let bytes = match kind {
        MethodKind::Lin => w * 96.0,
        MethodKind::Tao => w * 480.0,
        MethodKind::Cai { threads } => w * 480.0 + w * 900.0 * threads as f64,
        MethodKind::NeurFillPkb => network_parameters as f64 * 16.0 + w * 4.0 * 4.0 * 40.0 + w * 240.0,
        MethodKind::NeurFillMm { swarm_size, max_swarms } => {
            // Each particle holds position/velocity/personal-best vectors
            // (3 × 8 B per window) plus swarm bookkeeping.
            network_parameters as f64 * 16.0
                + w * 4.0 * 4.0 * 40.0
                + w * 240.0
                + w * 48.0 * (swarm_size * max_swarms) as f64
        }
    };
    bytes / 1.0e9
}

/// One evaluated Table III row.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method display name.
    pub method: String,
    /// Post-CMP height range `ΔH` in Å (golden simulator).
    pub delta_h_angstrom: f64,
    /// All eight per-metric scores.
    pub breakdown: ScoreBreakdown,
    /// The "Quality" column.
    pub quality: f64,
    /// The "Overall" column.
    pub overall: f64,
    /// Wall-clock runtime (s).
    pub runtime_s: f64,
    /// Estimated memory (GB).
    pub memory_gb: f64,
    /// Total fill amount (µm²).
    pub fill_amount: f64,
    /// Estimated overlay area (µm²).
    pub overlay: f64,
    /// Golden-simulator planarity metrics of the filled layout.
    pub metrics: PlanarityMetrics,
}

/// Evaluates a plan end-to-end with the golden simulator and the Table III
/// scoring rules.
///
/// # Panics
///
/// Panics when the plan length disagrees with the layout.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn evaluate_plan(
    layout: &Layout,
    sim: &CmpSimulator,
    coeffs: &Coefficients,
    method: &str,
    plan: &FillPlan,
    dummy: &DummySpec,
    runtime_s: f64,
    memory_gb: f64,
) -> MethodResult {
    let filled = apply_fill(layout, plan, dummy);
    let profile = sim.simulate(&filled);
    let metrics = PlanarityMetrics::from_profile(&profile);
    let pd = estimate(layout, plan);
    let added_mb = plan.output_file_size_mb(layout, dummy) - layout.file_size_mb();
    let breakdown = ScoreBreakdown::from_metrics(
        coeffs,
        &metrics,
        pd.overlay,
        pd.fill_amount,
        added_mb,
        runtime_s,
        memory_gb,
    );
    MethodResult {
        method: method.to_string(),
        delta_h_angstrom: metrics.delta_h,
        quality: breakdown.quality(&coeffs.alphas),
        overall: breakdown.overall(&coeffs.alphas),
        breakdown,
        runtime_s,
        memory_gb,
        fill_amount: pd.fill_amount,
        overlay: pd.overlay,
        metrics,
    }
}

/// Formats results as a paper-style Table III block for one design.
#[must_use]
pub fn format_rows(design: &str, rows: &[MethodResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Design {design}\n{:<16} {:>7} {:>6} {:>6} {:>8} {:>8} {:>6} {:>14} {:>6} {:>8} {:>8}\n",
        "Method",
        "ΔH(Å)",
        "Perf",
        "Var",
        "LineDev",
        "Outlier",
        "FSize",
        "Runtime",
        "Mem",
        "Quality",
        "Overall"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>7.0} {:>6.3} {:>6.3} {:>8.3} {:>8.3} {:>6.3} {:>7.3}({:>4.1}s) {:>6.3} {:>8.3} {:>8.3}\n",
            r.method,
            r.delta_h_angstrom,
            r.breakdown.ov,
            r.breakdown.sigma,
            r.breakdown.sigma_star,
            r.breakdown.ol,
            r.breakdown.fs,
            r.breakdown.time,
            r.runtime_s,
            r.breakdown.mem,
            r.quality,
            r.overall,
        ));
    }
    out
}

/// Writes results as CSV (one row per method) for downstream plotting.
///
/// A `&mut` reference can be passed for `w` (see `std::io::Write`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: std::io::Write>(
    design: &str,
    rows: &[MethodResult],
    mut w: W,
) -> std::io::Result<()> {
    writeln!(
        w,
        "design,method,delta_h_angstrom,ov,fa,sigma,sigma_star,ol,fs,time,mem,quality,overall,runtime_s,memory_gb,fill_um2,overlay_um2"
    )?;
    for r in rows {
        writeln!(
            w,
            "{design},{},{:.1},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.3},{:.4},{:.0},{:.0}",
            r.method.replace(',', ";"),
            r.delta_h_angstrom,
            r.breakdown.ov,
            r.breakdown.fa,
            r.breakdown.sigma,
            r.breakdown.sigma_star,
            r.breakdown.ol,
            r.breakdown.fs,
            r.breakdown.time,
            r.breakdown.mem,
            r.quality,
            r.overall,
            r.runtime_s,
            r.memory_gb,
            r.fill_amount,
            r.overlay,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_cmpsim::ProcessParams;
    use neurfill_layout::{DesignKind, DesignSpec};

    #[test]
    fn memory_model_ordering() {
        let l = DesignSpec::new(DesignKind::CmpTest, 16, 16, 1).generate();
        let params = 20_000;
        let lin = estimate_memory_gb(MethodKind::Lin, &l, 0);
        let tao = estimate_memory_gb(MethodKind::Tao, &l, 0);
        let cai = estimate_memory_gb(MethodKind::Cai { threads: 4 }, &l, 0);
        let pkb = estimate_memory_gb(MethodKind::NeurFillPkb, &l, params);
        let mm =
            estimate_memory_gb(MethodKind::NeurFillMm { swarm_size: 8, max_swarms: 20 }, &l, params);
        assert!(lin < tao);
        assert!(tao < cai);
        assert!(mm > pkb);
        assert!(mm > cai);
    }

    #[test]
    fn evaluate_plan_scores_empty_plan_consistently() {
        let l = DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate();
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let coeffs = Coefficients::calibrate(&l, &sim.simulate(&l), 60.0);
        let plan = FillPlan::zeros(&l);
        let r = evaluate_plan(&l, &sim, &coeffs, "noop", &plan, &DummySpec::default(), 0.0, 0.0);
        // Empty plan: planarity scores 0 (calibrated), resources perfect.
        assert!(r.breakdown.sigma.abs() < 1e-9);
        assert_eq!(r.breakdown.ov, 1.0);
        assert_eq!(r.breakdown.fa, 1.0);
        assert_eq!(r.breakdown.fs, 1.0);
        assert_eq!(r.breakdown.time, 1.0);
        assert!(r.quality > 0.0);
        assert!(r.overall > r.quality * 0.8 - 1e-9);
    }

    #[test]
    fn csv_has_header_and_one_row_per_method() {
        let l = DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate();
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let coeffs = Coefficients::calibrate(&l, &sim.simulate(&l), 60.0);
        let plan = FillPlan::zeros(&l);
        let r = evaluate_plan(&l, &sim, &coeffs, "Lin, [10]", &plan, &DummySpec::default(), 0.1, 0.01);
        let mut buf = Vec::new();
        write_csv("A", &[r], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("design,method"));
        // Embedded commas in method names are sanitized.
        assert!(lines[1].contains("Lin; [10]"));
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
    }

    #[test]
    fn formatted_table_contains_all_methods() {
        let l = DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate();
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let coeffs = Coefficients::calibrate(&l, &sim.simulate(&l), 60.0);
        let plan = FillPlan::zeros(&l);
        let r1 = evaluate_plan(&l, &sim, &coeffs, "Lin [10]", &plan, &DummySpec::default(), 0.1, 0.01);
        let r2 = evaluate_plan(&l, &sim, &coeffs, "Tao [11]", &plan, &DummySpec::default(), 1.0, 0.02);
        let table = format_rows("A", &[r1, r2]);
        assert!(table.contains("Lin [10]"));
        assert!(table.contains("Tao [11]"));
        assert!(table.contains("Design A"));
    }
}
