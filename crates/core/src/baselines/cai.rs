//! Cai [12]: the state-of-the-art model-based baseline — SQP directly on
//! the full-chip CMP simulator with *numerical* gradients.
//!
//! This is the method NeurFill accelerates: every gradient costs
//! `dim + 1` full-chip simulations (paper §III, Table I), so even modest
//! iteration counts take orders of magnitude longer than backward
//! propagation. The quality, however, is the reference point NeurFill must
//! match (Table III).

use crate::pd::pd_score;
use crate::score::{Coefficients, PlanarityMetrics};
use neurfill_cmpsim::{CmpSimulator, FiniteDifference};
use neurfill_layout::{apply_fill, DummySpec, FillPlan, Layout};
use neurfill_optim::{Bounds, BoxNormalized, Objective, SqpConfig, SqpSolver};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Cai baseline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CaiConfig {
    /// SQP settings. Keep `max_iterations` small: each iteration costs a
    /// full numerical gradient.
    pub sqp: SqpConfig,
    /// Finite-difference settings (ε in µm², worker threads).
    pub fd: FiniteDifference,
    /// Dummy geometry used when applying candidate plans.
    pub dummy: DummySpec,
}

impl Default for CaiConfig {
    fn default() -> Self {
        Self {
            sqp: SqpConfig { max_iterations: 6, max_backtracks: 8, ..SqpConfig::default() },
            fd: FiniteDifference::new(50.0, 1),
            dummy: DummySpec::default(),
        }
    }
}

/// Outcome of the Cai baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CaiOutcome {
    /// The synthesized plan.
    pub plan: FillPlan,
    /// Objective value at the solution.
    pub objective_value: f64,
    /// SQP major iterations.
    pub iterations: usize,
    /// Total full-chip simulator invocations.
    pub simulations: usize,
    /// Wall-clock runtime.
    pub runtime: Duration,
}

/// Simulator-backed quality objective with finite-difference planarity
/// gradients and analytic PD gradients.
struct SimObjective<'a> {
    layout: &'a Layout,
    sim: &'a CmpSimulator,
    coeffs: &'a Coefficients,
    fd: FiniteDifference,
    dummy: DummySpec,
    simulations: AtomicUsize,
}

impl<'a> SimObjective<'a> {
    fn planarity_score(&self, x: &[f64]) -> f64 {
        self.simulations.fetch_add(1, Ordering::Relaxed);
        let plan = FillPlan::from_vec(self.layout, x.to_vec());
        let filled = apply_fill(self.layout, &plan, &self.dummy);
        let m = PlanarityMetrics::from_profile(&self.sim.simulate(&filled));
        let a = &self.coeffs.alphas;
        // Unclamped slopes keep the landscape informative (cf. §IV-A).
        a.sigma * (1.0 - m.sigma / self.coeffs.beta_sigma)
            + a.sigma_star * (1.0 - m.sigma_star / self.coeffs.beta_sigma_star)
            + a.ol * (1.0 - m.ol / self.coeffs.beta_ol)
    }
}

impl Objective for SimObjective<'_> {
    fn dim(&self) -> usize {
        self.layout.num_windows()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let plan = FillPlan::from_vec(self.layout, x.to_vec());
        self.planarity_score(x) + pd_score(self.layout, &plan, self.coeffs).score
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        // Numerical gradient of the simulator-backed part (the paper's
        // bottleneck)...
        let plan_grad = self.fd.gradient(x, &|xs: &[f64]| self.planarity_score(xs));
        // ...plus the analytic PD gradient.
        let plan = FillPlan::from_vec(self.layout, x.to_vec());
        let pd = pd_score(self.layout, &plan, self.coeffs);
        plan_grad.iter().zip(&pd.gradient).map(|(a, b)| a + b).collect()
    }
}

/// Runs the Cai model-based baseline.
#[must_use]
pub fn cai_fill(
    layout: &Layout,
    sim: &CmpSimulator,
    coeffs: &Coefficients,
    config: &CaiConfig,
) -> CaiOutcome {
    let start = Instant::now();
    let objective = SimObjective {
        layout,
        sim,
        coeffs,
        fd: config.fd,
        dummy: config.dummy,
        simulations: AtomicUsize::new(0),
    };
    let bounds = Bounds::from_slack(layout.slack_vector());
    // Solve in slack-normalized coordinates (see the NeurFill framework).
    let (normalized, unit_bounds) = BoxNormalized::new(&objective, &bounds);
    let solver = SqpSolver::new(config.sqp.clone());
    // Cai [12] also starts from the PKB point; reuse the target-density
    // search scored by the *simulator* quality (a handful of evaluations).
    let pkb =
        crate::pkb::pkb_starting_point(layout, &crate::pkb::PkbConfig { search_steps: 6 }, |plan| {
            objective.value(plan.as_slice())
        });
    let sqp = solver.maximize(&normalized, &unit_bounds, &normalized.to_u(pkb.plan.as_slice()));
    let mut plan = FillPlan::from_vec(layout, normalized.to_x(&sqp.x));
    plan.clamp_to_slack(layout);
    CaiOutcome {
        plan,
        objective_value: sqp.value,
        iterations: sqp.iterations,
        simulations: objective.simulations.load(Ordering::Relaxed),
        runtime: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Alphas;
    use neurfill_cmpsim::ProcessParams;
    use neurfill_layout::{DesignKind, DesignSpec};

    fn coeffs(layout: &Layout, sim: &CmpSimulator) -> Coefficients {
        Coefficients::calibrate(layout, &sim.simulate(layout), 60.0)
    }

    fn tiny_config() -> CaiConfig {
        CaiConfig {
            sqp: SqpConfig { max_iterations: 2, max_backtracks: 5, ..SqpConfig::default() },
            fd: FiniteDifference::new(100.0, 1),
            dummy: DummySpec::default(),
        }
    }

    #[test]
    fn cai_improves_planarity_over_unfilled() {
        let l = DesignSpec::new(DesignKind::CmpTest, 6, 6, 3).generate();
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let c = coeffs(&l, &sim);
        let outcome = cai_fill(&l, &sim, &c, &tiny_config());
        assert!(outcome.plan.is_feasible(&l, 1e-9));
        // Planarity metrics after fill beat the unfilled layout.
        let before = PlanarityMetrics::from_profile(&sim.simulate(&l));
        let filled = apply_fill(&l, &outcome.plan, &DummySpec::default());
        let after = PlanarityMetrics::from_profile(&sim.simulate(&filled));
        assert!(after.sigma < before.sigma, "{} !< {}", after.sigma, before.sigma);
    }

    #[test]
    fn simulation_count_reflects_numerical_gradients() {
        let l = DesignSpec::new(DesignKind::Fpga, 4, 4, 1).generate();
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let c = coeffs(&l, &sim);
        let outcome = cai_fill(&l, &sim, &c, &tiny_config());
        // Each gradient costs dim+1 = 49 simulations; plus PKB and line
        // searches. Even 2 iterations must far exceed the dimension.
        assert!(
            outcome.simulations > l.num_windows(),
            "only {} simulations for dim {}",
            outcome.simulations,
            l.num_windows()
        );
        let (a, b) = (Alphas::default().quality_weight(), 0.8);
        assert!((a - b).abs() < 1e-12); // guard: α set unchanged
    }

    #[test]
    fn cai_is_deterministic() {
        let l = DesignSpec::new(DesignKind::RiscV, 4, 4, 2).generate();
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let c = coeffs(&l, &sim);
        let a = cai_fill(&l, &sim, &c, &tiny_config());
        let b = cai_fill(&l, &sim, &c, &tiny_config());
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.simulations, b.simulations);
    }
}
