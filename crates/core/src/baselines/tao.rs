//! Tao [11]-style rule-based SQP filling.
//!
//! The reference method optimizes *density-based* uniformity rules (not a
//! CMP model) with an SQP solver — fast, with analytic gradients, and
//! careful about fill amount and overlay. Its Table III signature is
//! *good performance scores and mid-range planarity*. This reproduction
//! maximizes a density-rule quality score: effective-density variance and
//! column-wise line deviation (both with analytic gradients) plus the
//! analytic performance-degradation score of §IV-B.

use crate::pd::pd_score;
use crate::score::Coefficients;
use neurfill_layout::{FillPlan, Layout};
use neurfill_optim::{Bounds, BoxNormalized, Objective, SqpConfig, SqpResult, SqpSolver};
use std::time::{Duration, Instant};

/// Tao baseline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TaoConfig {
    /// SQP settings.
    pub sqp: SqpConfig,
}

impl Default for TaoConfig {
    fn default() -> Self {
        Self { sqp: SqpConfig { max_iterations: 80, ..SqpConfig::default() } }
    }
}

/// Outcome of the Tao baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct TaoOutcome {
    /// The synthesized plan.
    pub plan: FillPlan,
    /// The SQP result of the run.
    pub sqp: SqpResult,
    /// Wall-clock runtime.
    pub runtime: Duration,
}

/// Density-rule objective with analytic gradients.
struct RuleObjective<'a> {
    layout: &'a Layout,
    coeffs: &'a Coefficients,
    /// β for the density-variance rule (unfilled value).
    beta_var: f64,
    /// β for the density line-deviation rule (unfilled value).
    beta_line: f64,
}

impl<'a> RuleObjective<'a> {
    fn new(layout: &'a Layout, coeffs: &'a Coefficients) -> Self {
        let (var0, line0) = density_rules(layout, &vec![0.0; layout.num_windows()]);
        Self { layout, coeffs, beta_var: var0.max(1e-12), beta_line: line0.max(1e-12) }
    }
}

/// Computes (Σ_l var(ρ'_l), Σ_l Σ|ρ' − colmean|) for densities after fill.
fn density_rules(layout: &Layout, x: &[f64]) -> (f64, f64) {
    let area = layout.window_area();
    let (rows, cols) = (layout.rows(), layout.cols());
    let n = (rows * cols) as f64;
    let mut var_total = 0.0;
    let mut line_total = 0.0;
    for l in 0..layout.num_layers() {
        let base = l * rows * cols;
        let rho: Vec<f64> =
            layout.layer(l).iter().enumerate().map(|(k, w)| w.density + x[base + k] / area).collect();
        let mean = rho.iter().sum::<f64>() / n;
        var_total += rho.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n;
        let mut col_mean = vec![0.0; cols];
        for r in 0..rows {
            for c in 0..cols {
                col_mean[c] += rho[r * cols + c];
            }
        }
        for cm in &mut col_mean {
            *cm /= rows as f64;
        }
        for r in 0..rows {
            for c in 0..cols {
                line_total += (rho[r * cols + c] - col_mean[c]).abs();
            }
        }
    }
    (var_total, line_total)
}

/// Analytic gradients of the two density rules.
fn density_rule_gradients(layout: &Layout, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let area = layout.window_area();
    let (rows, cols) = (layout.rows(), layout.cols());
    let n = (rows * cols) as f64;
    let mut g_var = vec![0.0; x.len()];
    let mut g_line = vec![0.0; x.len()];
    for l in 0..layout.num_layers() {
        let base = l * rows * cols;
        let rho: Vec<f64> =
            layout.layer(l).iter().enumerate().map(|(k, w)| w.density + x[base + k] / area).collect();
        let mean = rho.iter().sum::<f64>() / n;
        // d var/dx_k = 2(ρ_k − mean)/(n·area); the mean term cancels.
        for (k, r) in rho.iter().enumerate() {
            g_var[base + k] = 2.0 * (r - mean) / (n * area);
        }
        // Line deviation: column means depend on every window of a column.
        let mut col_mean = vec![0.0; cols];
        for r in 0..rows {
            for c in 0..cols {
                col_mean[c] += rho[r * cols + c];
            }
        }
        for cm in &mut col_mean {
            *cm /= rows as f64;
        }
        let sign = |v: f64| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        };
        // Column sums of signs, needed for the mean's chain term.
        let mut col_sign_sum = vec![0.0; cols];
        for r in 0..rows {
            for c in 0..cols {
                col_sign_sum[c] += sign(rho[r * cols + c] - col_mean[c]);
            }
        }
        for r in 0..rows {
            for c in 0..cols {
                let s = sign(rho[r * cols + c] - col_mean[c]);
                g_line[base + r * cols + c] = (s - col_sign_sum[c] / rows as f64) / area;
            }
        }
    }
    (g_var, g_line)
}

impl Objective for RuleObjective<'_> {
    fn dim(&self) -> usize {
        self.layout.num_windows()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let (var, line) = density_rules(self.layout, x);
        let a = &self.coeffs.alphas;
        let plan = FillPlan::from_vec(self.layout, x.to_vec());
        let pd = pd_score(self.layout, &plan, self.coeffs);
        a.sigma * (1.0 - var / self.beta_var) + a.sigma_star * (1.0 - line / self.beta_line) + pd.score
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let (g_var, g_line) = density_rule_gradients(self.layout, x);
        let a = &self.coeffs.alphas;
        let plan = FillPlan::from_vec(self.layout, x.to_vec());
        let pd = pd_score(self.layout, &plan, self.coeffs);
        g_var
            .iter()
            .zip(&g_line)
            .zip(&pd.gradient)
            .map(|((gv, gl), gp)| {
                -a.sigma * gv / self.beta_var - a.sigma_star * gl / self.beta_line + gp
            })
            .collect()
    }
}

/// Runs the Tao rule-based SQP baseline.
#[must_use]
pub fn tao_fill(layout: &Layout, coeffs: &Coefficients, config: &TaoConfig) -> TaoOutcome {
    let start = Instant::now();
    let objective = RuleObjective::new(layout, coeffs);
    let bounds = Bounds::from_slack(layout.slack_vector());
    // Solve in slack-normalized coordinates (see the NeurFill framework).
    let (normalized, unit_bounds) = BoxNormalized::new(&objective, &bounds);
    let solver = SqpSolver::new(config.sqp.clone());
    let u0 = vec![0.0; layout.num_windows()];
    let sqp = solver.maximize(&normalized, &unit_bounds, &u0);
    let mut plan = FillPlan::from_vec(layout, normalized.to_x(&sqp.x));
    plan.clamp_to_slack(layout);
    TaoOutcome { plan, sqp, runtime: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Alphas;
    use neurfill_layout::{apply_fill, DesignKind, DesignSpec, DummySpec};
    use neurfill_optim::gradcheck_objective;

    fn coeffs(layout: &Layout) -> Coefficients {
        let slack: f64 = layout.slack_vector().iter().sum();
        Coefficients {
            alphas: Alphas::default(),
            beta_sigma: 1.0,
            beta_sigma_star: 1.0,
            beta_ol: 1.0,
            beta_ov: slack,
            beta_fa: slack,
            beta_fs_mb: 30.0,
            beta_time_s: 60.0,
            beta_mem_gb: 8.0,
        }
    }

    #[test]
    fn rule_gradients_match_finite_differences() {
        let l = DesignSpec::new(DesignKind::Fpga, 6, 6, 2).generate();
        let c = coeffs(&l);
        let obj = RuleObjective::new(&l, &c);
        // A generic interior point away from |·| kinks.
        let slack = l.slack_vector();
        let x: Vec<f64> = slack.iter().enumerate().map(|(i, s)| 0.3 * s + (i % 5) as f64).collect();
        assert!(gradcheck_objective(&obj, &x, 1e-3, 2e-2));
    }

    #[test]
    fn tao_improves_density_uniformity_with_moderate_fill() {
        let l = DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate();
        let c = coeffs(&l);
        let outcome = tao_fill(&l, &c, &TaoConfig::default());
        assert!(outcome.plan.is_feasible(&l, 1e-9));
        assert!(outcome.plan.total() > 0.0, "should fill something");

        let filled = apply_fill(&l, &outcome.plan, &DummySpec::default());
        let var = |layout: &Layout| {
            let d = layout.density_map(0);
            let m = d.iter().sum::<f64>() / d.len() as f64;
            d.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / d.len() as f64
        };
        assert!(var(&filled) < var(&l), "{} !< {}", var(&filled), var(&l));

        // The rule-based optimum fills less than blunt uniformity fill.
        let lin = crate::baselines::lin_fill(&l);
        assert!(outcome.plan.total() < lin.total());
    }

    #[test]
    fn tao_is_deterministic() {
        let l = DesignSpec::new(DesignKind::RiscV, 8, 8, 2).generate();
        let c = coeffs(&l);
        let a = tao_fill(&l, &c, &TaoConfig::default());
        let b = tao_fill(&l, &c, &TaoConfig::default());
        assert_eq!(a.plan, b.plan);
    }
}
