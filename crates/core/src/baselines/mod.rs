//! The compared methods of the paper's evaluation: rule-based Lin [10] and
//! Tao [11], and the model-based Cai [12] whose numerical-gradient cost
//! motivates NeurFill.

mod cai;
mod lin;
mod tao;

pub use cai::{cai_fill, CaiConfig, CaiOutcome};
pub use lin::lin_fill;
pub use tao::{tao_fill, TaoConfig, TaoOutcome};
