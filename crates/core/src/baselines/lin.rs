//! Lin [10]-style rule-based filling: density-uniformity target planning.
//!
//! The reference method solves a linear program minimizing density
//! variance under coupling constraints; its behavioural signature in the
//! paper's Table III is *instant runtime and maximal uniformity at the
//! cost of huge fill amounts* (its fill-amount/overlay scores collapse on
//! dense designs). This reproduction keeps exactly that signature: each
//! layer is filled toward the maximum achievable uniform density via the
//! closed form of Eq. 18.

use crate::pkb::{plan_for_target_density, target_density_range};
use neurfill_layout::{FillPlan, Layout};

/// Runs the rule-based uniformity fill. Deterministic and effectively
/// instant (one pass over the windows).
#[must_use]
pub fn lin_fill(layout: &Layout) -> FillPlan {
    let td: Vec<f64> = (0..layout.num_layers()).map(|l| target_density_range(layout, l).1).collect();
    plan_for_target_density(layout, &td)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_layout::{apply_fill, DesignKind, DesignSpec, DummySpec};

    #[test]
    fn fills_heavily_and_feasibly() {
        let l = DesignSpec::new(DesignKind::CmpTest, 10, 10, 3).generate();
        let plan = lin_fill(&l);
        assert!(plan.is_feasible(&l, 1e-9));
        let total_slack: f64 = l.slack_vector().iter().sum();
        assert!(plan.total() > 0.5 * total_slack, "Lin should fill most slack");
    }

    #[test]
    fn improves_density_uniformity() {
        let l = DesignSpec::new(DesignKind::CmpTest, 10, 10, 3).generate();
        let filled = apply_fill(&l, &lin_fill(&l), &DummySpec::default());
        for layer in 0..3 {
            let var = |layout: &neurfill_layout::Layout| {
                let d = layout.density_map(layer);
                let m = d.iter().sum::<f64>() / d.len() as f64;
                d.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / d.len() as f64
            };
            // Fill-blocked regions bound what uniformity filling can reach,
            // so require improvement rather than a fixed factor.
            assert!(var(&filled) < var(&l), "layer {layer}");
        }
    }

    #[test]
    fn is_deterministic() {
        let l = DesignSpec::new(DesignKind::Fpga, 8, 8, 1).generate();
        assert_eq!(lin_fill(&l), lin_fill(&l));
    }
}
