//! High-level orchestration of the full dummy-fill flow (paper Fig. 1):
//! surrogate pre-training → filling synthesis → filling insertion →
//! golden-simulator verification, behind one builder-style API.
//!
//! This is the entry point a downstream user adopts; the lower-level
//! modules stay available for custom flows.

use crate::cancel::CancelToken;
use crate::cmp_nn::CmpNeuralNetwork;
use crate::framework::{FillOutcome, NeurFill, NeurFillConfig};
use crate::report::{evaluate_plan, MethodResult};
use crate::score::Coefficients;
use crate::surrogate::{train_surrogate, SurrogateConfig, TrainReport};
use neurfill_cmpsim::{CmpSimulator, NumericsTier, ProcessParams};
use neurfill_layout::insertion::{realize_fill, InsertionReport, InsertionRules};
use neurfill_layout::{FillPlan, Layout};
use neurfill_obs::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;

/// Configuration of the end-to-end flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Process parameters of the golden simulator.
    pub process: ProcessParams,
    /// Surrogate pre-training settings.
    pub surrogate: SurrogateConfig,
    /// Synthesis (MSP-SQP) settings.
    pub neurfill: NeurFillConfig,
    /// Insertion design rules.
    pub insertion: InsertionRules,
    /// Runtime budget β (seconds) for the runtime score.
    pub beta_time_s: f64,
    /// Master seed.
    pub seed: u64,
    /// Numerics tier of the golden simulator. `Exact` (the default) keeps
    /// every output bit-identical to the reference kernels; `Fast` opts
    /// into the certified FFT/FMA/sorted-contact kernels (see the
    /// `neurfill_cmpsim::kernel` and `neurfill_tensor::numerics` docs for
    /// the tolerance contracts).
    pub numerics: NumericsTier,
    /// Tensor backend of the surrogate's inference paths. `Cpu` (the
    /// default) keeps every UNet output bit-identical to the f32 reference;
    /// `QuantCpu` opts into the certified int8 engine and requires the
    /// model bundle to carry calibration scales (see
    /// `neurfill_tensor::backend` and `neurfill_nn::quant`).
    pub backend: neurfill_tensor::BackendKind,
    /// Telemetry handle; the default (disabled) handle records nothing and
    /// leaves every output byte-identical. An enabled handle propagates to
    /// the golden simulator, the synthesis optimizers and the flow's own
    /// phase spans (`flow.*_ns`).
    pub telemetry: Telemetry,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            process: ProcessParams::default(),
            surrogate: SurrogateConfig::default(),
            neurfill: NeurFillConfig::default(),
            insertion: InsertionRules::default(),
            beta_time_s: 120.0,
            seed: 0,
            numerics: NumericsTier::Exact,
            backend: neurfill_tensor::BackendKind::Cpu,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Everything the flow produces for one layout.
#[derive(Debug)]
pub struct FlowResult {
    /// Synthesized fill plan.
    pub plan: FillPlan,
    /// Synthesis statistics.
    pub synthesis: FillOutcome,
    /// Rectangle-level insertion result.
    pub insertion: InsertionReport,
    /// Golden-simulator scoring of the *realized* fill.
    pub scored: MethodResult,
}

/// The assembled flow: a trained surrogate bound to a simulator.
///
/// The network lives behind an [`Rc`]: synthesis injects the same trained
/// instance into [`NeurFill`] instead of rebuilding or copying it, and
/// callers holding a shared network (e.g. the batch runtime's model
/// registry) can assemble many flows around one surrogate.
#[derive(Debug)]
pub struct FillingFlow {
    sim: CmpSimulator,
    network: Rc<CmpNeuralNetwork>,
    config: FlowConfig,
    train_report: TrainReport,
}

impl FillingFlow {
    /// Trains the surrogate from `sources` and assembles the flow.
    ///
    /// # Errors
    ///
    /// Returns a message when the process parameters are invalid or
    /// training fails (geometry misconfiguration).
    pub fn prepare(sources: &[Layout], config: FlowConfig) -> Result<Self, String> {
        let _prepare_span = config.telemetry.span("flow.prepare_ns");
        let sim = CmpSimulator::new(config.process.clone())?
            .with_numerics(config.numerics)
            .with_telemetry(config.telemetry.clone());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let trained =
            train_surrogate(sources, &sim, &config.surrogate, &mut rng).map_err(|e| e.to_string())?;
        Ok(Self { sim, network: Rc::new(trained.network), train_report: trained.report, config })
    }

    /// Assembles a flow around an already-trained network (e.g. loaded via
    /// [`crate::persist`], or shared via [`FillingFlow::shared_network`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the process parameters are invalid.
    pub fn with_network(
        network: impl Into<Rc<CmpNeuralNetwork>>,
        config: FlowConfig,
    ) -> Result<Self, String> {
        let sim = CmpSimulator::new(config.process.clone())?
            .with_numerics(config.numerics)
            .with_telemetry(config.telemetry.clone());
        Ok(Self {
            sim,
            network: network.into(),
            train_report: TrainReport {
                epochs: Vec::new(),
                train_samples: 0,
                height_norm: Default::default(),
            },
            config,
        })
    }

    /// The golden simulator.
    #[must_use]
    pub fn simulator(&self) -> &CmpSimulator {
        &self.sim
    }

    /// The flow configuration in use.
    #[must_use]
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The trained CMP neural network.
    #[must_use]
    pub fn network(&self) -> &CmpNeuralNetwork {
        &self.network
    }

    /// A shared handle to the trained network — inject it into another
    /// [`FillingFlow`] or a [`NeurFill`] without copying parameters.
    #[must_use]
    pub fn shared_network(&self) -> Rc<CmpNeuralNetwork> {
        Rc::clone(&self.network)
    }

    /// The surrogate training report (empty when the network was supplied
    /// pre-trained).
    #[must_use]
    pub fn train_report(&self) -> &TrainReport {
        &self.train_report
    }

    /// Runs synthesis + insertion + verification on one layout.
    ///
    /// # Errors
    ///
    /// Returns a message when the layout geometry is incompatible with the
    /// surrogate.
    pub fn run(&self, layout: &Layout) -> Result<FlowResult, String> {
        self.run_cancellable(layout, &CancelToken::never())
    }

    /// [`FillingFlow::run`] with cooperative cancellation: the token is
    /// checked between phases and polled inside the synthesis optimizer's
    /// iteration loops, so a job whose deadline expires (or that is
    /// cancelled explicitly) aborts mid-optimization. With a
    /// never-cancelled token the result is bit-identical to
    /// [`FillingFlow::run`].
    ///
    /// # Errors
    ///
    /// Returns a message when the layout geometry is incompatible with the
    /// surrogate, or a cancellation/deadline error (see [`crate::cancel`])
    /// when the token fires.
    pub fn run_cancellable(&self, layout: &Layout, cancel: &CancelToken) -> Result<FlowResult, String> {
        cancel.check("score calibration")?;
        let coeffs = {
            let _calibration_span = self.config.telemetry.span("flow.calibration_ns");
            Coefficients::calibrate(layout, &self.sim.simulate(layout), self.config.beta_time_s)
        };
        self.run_with_coefficients_cancellable(layout, &coeffs, cancel)
    }

    /// [`FillingFlow::run`] with caller-supplied score coefficients.
    ///
    /// # Errors
    ///
    /// Returns a message when the layout geometry is incompatible with the
    /// surrogate.
    pub fn run_with_coefficients(
        &self,
        layout: &Layout,
        coeffs: &Coefficients,
    ) -> Result<FlowResult, String> {
        self.run_with_coefficients_cancellable(layout, coeffs, &CancelToken::never())
    }

    /// [`FillingFlow::run_with_coefficients`] with cooperative
    /// cancellation (see [`FillingFlow::run_cancellable`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the layout geometry is incompatible with the
    /// surrogate, or a cancellation/deadline error when the token fires.
    pub fn run_with_coefficients_cancellable(
        &self,
        layout: &Layout,
        coeffs: &Coefficients,
        cancel: &CancelToken,
    ) -> Result<FlowResult, String> {
        // Phase 1: synthesis, on the flow's own network instance.
        let synthesis = {
            let _synthesis_span = self.config.telemetry.span("flow.synthesis_ns");
            let nf = NeurFill::new(Rc::clone(&self.network), self.config.neurfill.clone())
                .with_telemetry(self.config.telemetry.clone());
            nf.run_cancellable(layout, coeffs, cancel)?
        };

        // Phase 2: insertion.
        cancel.check("insertion")?;
        let insertion = {
            let _insertion_span = self.config.telemetry.span("flow.insertion_ns");
            realize_fill(layout, &synthesis.plan, &self.config.insertion)
        };

        // Phase 3: verification on the *realized* amounts.
        cancel.check("verification")?;
        let _verification_span = self.config.telemetry.span("flow.verification_ns");
        let mut realized = FillPlan::zeros(layout);
        for (slot, w) in realized.as_mut_slice().iter_mut().zip(&insertion.windows) {
            *slot = w.placed;
        }
        let dummy = self.config.insertion_dummy_spec();
        let scored = evaluate_plan(
            layout,
            &self.sim,
            coeffs,
            "NeurFill flow",
            &realized,
            &dummy,
            synthesis.runtime.as_secs_f64(),
            crate::report::estimate_memory_gb(
                crate::report::MethodKind::NeurFillPkb,
                layout,
                neurfill_nn::Module::num_parameters(self.network.unet()),
            ),
        );
        Ok(FlowResult { plan: synthesis.plan.clone(), synthesis, insertion, scored })
    }
}

impl FlowConfig {
    /// The dummy geometry implied by the insertion rules (used when scoring
    /// realized fill).
    #[must_use]
    pub fn insertion_dummy_spec(&self) -> neurfill_layout::DummySpec {
        neurfill_layout::DummySpec::new(self.insertion.edge_um)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::NUM_CHANNELS;
    use neurfill_layout::datagen::DataGenConfig;
    use neurfill_layout::{benchmark_designs, DesignKind, DesignSpec};
    use neurfill_nn::{TrainConfig, UNetConfig};

    fn tiny_config(grid: usize) -> FlowConfig {
        FlowConfig {
            process: ProcessParams::fast(),
            surrogate: SurrogateConfig {
                unet: UNetConfig {
                    in_channels: NUM_CHANNELS,
                    out_channels: 1,
                    base_channels: 4,
                    depth: 2,
                },
                train: TrainConfig {
                    epochs: 2,
                    batch_size: 4,
                    lr: 2e-3,
                    lr_decay: 1.0,
                    ..TrainConfig::default()
                },
                num_layouts: 6,
                datagen: DataGenConfig { rows: grid, cols: grid, seed: 1, ..DataGenConfig::default() },
                ..SurrogateConfig::default()
            },
            beta_time_s: 60.0,
            seed: 1,
            ..FlowConfig::default()
        }
    }

    #[test]
    fn end_to_end_flow_produces_consistent_result() {
        let grid = 8;
        let sources = benchmark_designs(grid, grid, 1);
        let flow = FillingFlow::prepare(&sources, tiny_config(grid)).unwrap();
        let layout = DesignSpec::new(DesignKind::CmpTest, grid, grid, 1).generate();
        let result = flow.run(&layout).unwrap();
        assert!(result.plan.is_feasible(&layout, 1e-9));
        assert!(result.insertion.total_placed() <= result.plan.total() + 16.0);
        assert!(result.scored.quality.is_finite());
        assert!(result.scored.overall >= 0.0);
    }

    #[test]
    fn flow_accepts_pretrained_network() {
        let grid = 8;
        let sources = benchmark_designs(grid, grid, 2);
        let cfg = tiny_config(grid);
        let flow = FillingFlow::prepare(&sources, cfg.clone()).unwrap();
        // Persist + reload the network into a fresh flow.
        let mut buf = Vec::new();
        crate::persist::save_network(flow.network(), &mut buf).unwrap();
        let net = crate::persist::load_network(buf.as_slice()).unwrap();
        let flow2 = FillingFlow::with_network(net, cfg).unwrap();
        assert_eq!(flow2.train_report().train_samples, 0);
        let layout = DesignSpec::new(DesignKind::Fpga, grid, grid, 2).generate();
        let result = flow2.run(&layout).unwrap();
        assert!(result.plan.is_feasible(&layout, 1e-9));
    }
}
