//! Prior-knowledge-based (PKB) starting-point generation (paper §IV-C,
//! Eq. 18): rule-based target-density planning followed by a linear search
//! over the target density, scored by a caller-supplied quality function
//! (the CMP neural network in NeurFill).

use neurfill_layout::{FillPlan, Layout};

/// PKB search settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PkbConfig {
    /// Number of target-density samples in the linear search.
    pub search_steps: usize,
}

impl Default for PkbConfig {
    fn default() -> Self {
        Self { search_steps: 12 }
    }
}

/// Builds the trivial maximum-uniformity plan of Eq. 18 for per-layer
/// target densities `td`.
///
/// # Panics
///
/// Panics when `td.len()` differs from the layer count.
#[must_use]
pub fn plan_for_target_density(layout: &Layout, td: &[f64]) -> FillPlan {
    assert_eq!(td.len(), layout.num_layers(), "one target density per layer");
    let area = layout.window_area();
    let mut plan = FillPlan::zeros(layout);
    for id in layout.window_ids() {
        let w = layout.window(id);
        let target = td[id.layer];
        // Eq. 18: fill toward the target, bounded by slack.
        let x = if target <= w.density { 0.0 } else { ((target - w.density) * area).min(w.slack) };
        plan.as_mut_slice()[layout.flat_index(id)] = x;
    }
    plan
}

/// The per-layer density range the linear search sweeps: from the layer's
/// mean density (no-op end) to the maximum density any window can reach.
#[must_use]
pub fn target_density_range(layout: &Layout, layer: usize) -> (f64, f64) {
    let area = layout.window_area();
    let lo = layout.mean_density(layer);
    let hi = layout.layer(layer).iter().map(|w| w.density + w.slack / area).fold(0.0f64, f64::max);
    (lo, hi.max(lo))
}

/// Result of the PKB linear search.
#[derive(Debug, Clone, PartialEq)]
pub struct PkbResult {
    /// The best plan found.
    pub plan: FillPlan,
    /// Quality of the best plan (per the supplied evaluator).
    pub quality: f64,
    /// Target densities of the best plan.
    pub target_density: Vec<f64>,
    /// Number of quality evaluations spent.
    pub evaluations: usize,
}

/// Linear search of the target layer density (paper: "a linear search of
/// target layer density is performed, and the solution with the best
/// quality is chosen as the starting point").
///
/// The search sweeps a shared fraction `t ∈ [0, 1]` of each layer's
/// density range; `evaluate` scores a candidate plan (higher is better).
///
/// # Panics
///
/// Panics when `config.search_steps` is zero.
#[must_use]
// The `expect` asserts the sweep ran at least one step (steps >= 1 is
// clamped below).
#[allow(clippy::expect_used)]
pub fn pkb_starting_point(
    layout: &Layout,
    config: &PkbConfig,
    mut evaluate: impl FnMut(&FillPlan) -> f64,
) -> PkbResult {
    assert!(config.search_steps > 0, "need at least one search step");
    let ranges: Vec<(f64, f64)> =
        (0..layout.num_layers()).map(|l| target_density_range(layout, l)).collect();
    let mut best: Option<PkbResult> = None;
    let mut evaluations = 0;
    // The scan includes t = 0 (the empty plan), so the chosen starting
    // point is never worse than doing nothing.
    for k in 0..=config.search_steps {
        let t = k as f64 / config.search_steps as f64;
        let td: Vec<f64> = ranges.iter().map(|(lo, hi)| lo + t * (hi - lo)).collect();
        let plan = plan_for_target_density(layout, &td);
        let quality = evaluate(&plan);
        evaluations += 1;
        let better = best.as_ref().is_none_or(|b| quality > b.quality);
        if better {
            best = Some(PkbResult { plan, quality, target_density: td, evaluations });
        }
    }
    let mut result = best.expect("at least one step");
    result.evaluations = evaluations;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_layout::{DesignKind, DesignSpec};

    fn layout() -> Layout {
        DesignSpec::new(DesignKind::CmpTest, 8, 8, 4).generate()
    }

    #[test]
    fn eq18_respects_all_three_cases() {
        let l = layout();
        let area = l.window_area();
        // Pick a mid-range target on layer 0.
        let (lo, hi) = target_density_range(&l, 0);
        let td = vec![(lo + hi) / 2.0, 0.0, 0.0];
        let plan = plan_for_target_density(&l, &td);
        for id in l.window_ids() {
            let w = l.window(id);
            let x = plan.amount_at(&l, id);
            if id.layer != 0 {
                assert_eq!(x, 0.0, "layers with td below density stay empty");
                continue;
            }
            if td[0] < w.density {
                assert_eq!(x, 0.0);
            } else if td[0] > w.density + w.slack / area {
                assert!((x - w.slack).abs() < 1e-9);
            } else {
                assert!((x - (td[0] - w.density) * area).abs() < 1e-9);
            }
        }
        assert!(plan.is_feasible(&l, 1e-9));
    }

    #[test]
    fn higher_target_density_never_fills_less() {
        let l = layout();
        let (lo, hi) = target_density_range(&l, 0);
        let low = plan_for_target_density(&l, &[lo + 0.2 * (hi - lo); 3]);
        let high = plan_for_target_density(&l, &[lo + 0.9 * (hi - lo); 3]);
        assert!(high.total() > low.total());
    }

    #[test]
    fn full_target_achieves_uniform_density_where_slack_allows() {
        let l = layout();
        let (_, hi) = target_density_range(&l, 0);
        let plan = plan_for_target_density(&l, &[hi; 3]);
        let filled = neurfill_layout::apply_fill(&l, &plan, &neurfill_layout::DummySpec::default());
        // Windows with enough slack reach the target exactly.
        let area = l.window_area();
        for id in l.window_ids().filter(|id| id.layer == 0) {
            let orig = l.window(id);
            if orig.density + orig.slack / area >= hi {
                let new = filled.window(id);
                assert!((new.density - hi).abs() < 1e-6, "{} vs {hi}", new.density);
            }
        }
    }

    #[test]
    fn linear_search_picks_best_candidate() {
        let l = layout();
        // Quality = negative |total fill − 30000|: prefers ~30000 µm².
        let result =
            pkb_starting_point(&l, &PkbConfig { search_steps: 16 }, |p| -(p.total() - 30_000.0).abs());
        assert_eq!(result.evaluations, 17); // t = 0 included
                                            // Verify no other scanned candidate beats the winner.
        let ranges: Vec<(f64, f64)> = (0..3).map(|ly| target_density_range(&l, ly)).collect();
        for k in 0..=16 {
            let t = k as f64 / 16.0;
            let td: Vec<f64> = ranges.iter().map(|(lo, hi)| lo + t * (hi - lo)).collect();
            let candidate = plan_for_target_density(&l, &td);
            assert!(-(candidate.total() - 30_000.0).abs() <= result.quality + 1e-9);
        }
    }

    #[test]
    fn pkb_plans_are_feasible() {
        let l = layout();
        let result = pkb_starting_point(&l, &PkbConfig::default(), |p| -p.total());
        assert!(result.plan.is_feasible(&l, 1e-9));
        assert_eq!(result.target_density.len(), 3);
    }
}
