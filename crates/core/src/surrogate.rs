//! Pre-training of the UNet surrogate (paper §IV-F, Fig. 8, Eq. 20) and
//! its accuracy evaluation (§V-A, Fig. 9).

use crate::cmp_nn::{CmpNeuralNetwork, CmpNnConfig, HeightNorm};
use crate::extraction::{extract_layer_arrays, ExtractionConfig, NUM_CHANNELS};
use neurfill_cmpsim::CmpSimulator;
use neurfill_layout::datagen::{DataGenConfig, TrainingLayoutGenerator};
use neurfill_layout::Layout;
use neurfill_nn::{fit, Dataset, Module, TrainConfig, UNet, UNetConfig};
use neurfill_tensor::{NdArray, Result, TensorError};
use rand::Rng;

/// Configuration of surrogate pre-training.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateConfig {
    /// Architecture of the UNet (input channels are forced to the
    /// extraction channel count, output to 1).
    pub unet: UNetConfig,
    /// Supervised-training hyper-parameters.
    pub train: TrainConfig,
    /// Number of layouts produced by the two-step random procedure.
    pub num_layouts: usize,
    /// Fraction of samples held out for validation.
    pub validation_fraction: f64,
    /// Two-step random-procedure settings (dims must match `unet.depth`).
    pub datagen: DataGenConfig,
    /// Extraction normalization.
    pub extraction: ExtractionConfig,
    /// Objective-layer hyper-parameters for the assembled network.
    pub cmp_nn: CmpNnConfig,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        Self {
            unet: UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 8, depth: 2 },
            train: TrainConfig {
                epochs: 8,
                batch_size: 4,
                lr: 2e-3,
                lr_decay: 0.9,
                ..TrainConfig::default()
            },
            num_layouts: 60,
            validation_fraction: 0.1,
            datagen: DataGenConfig { rows: 32, cols: 32, ..DataGenConfig::default() },
            extraction: ExtractionConfig::default(),
            cmp_nn: CmpNnConfig::default(),
        }
    }
}

/// Training statistics of a surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Per-epoch (train, validation) MSE in normalized units.
    pub epochs: Vec<(f32, Option<f32>)>,
    /// Number of training samples (layout-layers).
    pub train_samples: usize,
    /// Derived height normalization.
    pub height_norm: HeightNorm,
}

/// A trained surrogate plus its training report.
#[derive(Debug)]
pub struct TrainedSurrogate {
    /// The assembled CMP neural network (extraction + UNet + objectives).
    pub network: CmpNeuralNetwork,
    /// Training statistics.
    pub report: TrainReport,
}

/// Builds the supervised dataset: for each generated layout and layer, the
/// input is the extraction planes and the target the simulated height map
/// (normalized by `norm`).
fn build_dataset(
    layouts: &[Layout],
    sim: &CmpSimulator,
    extraction: &ExtractionConfig,
    norm: HeightNorm,
) -> Result<Dataset> {
    let mut ds = Dataset::new();
    for layout in layouts {
        let profile = sim.simulate(layout);
        for l in 0..layout.num_layers() {
            let input = extract_layer_arrays(layout, l, extraction);
            let target: Vec<f32> = profile
                .layer(l)
                .heights()
                .iter()
                .map(|h| ((h - norm.offset_nm) / norm.scale_nm) as f32)
                .collect();
            let target = NdArray::from_vec(target, &[1, layout.rows(), layout.cols()])?;
            ds.push(input, target)?;
        }
    }
    Ok(ds)
}

/// Derives the height normalization from simulated training layouts.
fn derive_norm(layouts: &[Layout], sim: &CmpSimulator) -> HeightNorm {
    let mut all = Vec::new();
    for layout in layouts.iter().take(8) {
        let profile = sim.simulate(layout);
        for l in profile.iter() {
            all.extend_from_slice(l.heights());
        }
    }
    let n = all.len().max(1) as f64;
    let mean = all.iter().sum::<f64>() / n;
    let var = all.iter().map(|h| (h - mean) * (h - mean)).sum::<f64>() / n;
    HeightNorm { offset_nm: mean, scale_nm: var.sqrt().max(1e-3) }
}

/// Pre-trains a UNet surrogate of `sim` from `sources` with the two-step
/// random procedure and assembles the CMP neural network.
///
/// # Errors
///
/// Propagates tensor shape errors (e.g. datagen dims incompatible with the
/// UNet depth).
///
/// # Panics
///
/// Panics when `sources` is empty.
pub fn train_surrogate(
    sources: &[Layout],
    sim: &CmpSimulator,
    config: &SurrogateConfig,
    rng: &mut impl Rng,
) -> Result<TrainedSurrogate> {
    assert!(!sources.is_empty(), "need source layouts");
    let div = 1usize << config.unet.depth;
    if !config.datagen.rows.is_multiple_of(div) || !config.datagen.cols.is_multiple_of(div) {
        return Err(TensorError::InvalidArgument(format!(
            "datagen dims {}x{} not divisible by UNet factor {div}",
            config.datagen.rows, config.datagen.cols
        )));
    }
    // Step 1+2 of Fig. 8: assemble + random fill.
    let mut gen = TrainingLayoutGenerator::new(sources.to_vec(), config.datagen.clone());
    let layouts = gen.generate(config.num_layouts);
    let norm = derive_norm(&layouts, sim);
    let mut train = build_dataset(&layouts, sim, &config.extraction, norm)?;
    let val_n = ((train.len() as f64) * config.validation_fraction).round() as usize;
    let val = train.split_off(val_n.min(train.len().saturating_sub(1)));

    let unet_cfg = UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, ..config.unet.clone() };
    let unet = UNet::new(unet_cfg, rng);
    let train_samples = train.len();
    let history = fit(&unet, &train, Some(&val), &config.train, rng, |_| true)?;
    let epochs = history.iter().map(|e| (e.train_loss, e.val_loss)).collect();
    unet.set_training(false);

    let network = CmpNeuralNetwork::new(unet, norm, config.extraction.clone(), config.cmp_nn.clone());
    Ok(TrainedSurrogate { network, report: TrainReport { epochs, train_samples, height_norm: norm } })
}

/// Per-window accuracy of a surrogate against the golden simulator over a
/// set of evaluation layouts (the data behind Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Mean relative height error over all windows and layouts.
    pub mean_relative_error: f64,
    /// Largest per-window *average* relative error.
    pub max_window_error: f64,
    /// Per-window average relative error map (flat `L·N·M` of the eval
    /// geometry, averaged over layouts).
    pub per_window_error: Vec<f64>,
    /// Number of evaluation layouts.
    pub num_layouts: usize,
}

impl AccuracyReport {
    /// Fraction of windows whose average relative error is below `limit`.
    #[must_use]
    pub fn fraction_below(&self, limit: f64) -> f64 {
        if self.per_window_error.is_empty() {
            return 1.0;
        }
        self.per_window_error.iter().filter(|e| **e < limit).count() as f64
            / self.per_window_error.len() as f64
    }

    /// Histogram of per-window errors with `bins` equal-width bins up to
    /// `max`. Returns `(bin upper edge, count)`.
    #[must_use]
    pub fn histogram(&self, bins: usize, max: f64) -> Vec<(f64, usize)> {
        let mut counts = vec![0usize; bins.max(1)];
        let width = max / bins.max(1) as f64;
        for &e in &self.per_window_error {
            let b = ((e / width) as usize).min(bins.saturating_sub(1));
            counts[b] += 1;
        }
        counts.into_iter().enumerate().map(|(i, c)| ((i + 1) as f64 * width, c)).collect()
    }
}

/// Evaluates surrogate accuracy on `layouts` (typically generated by the
/// two-step procedure from held-out sources for the extension-ability
/// experiment).
///
/// # Errors
///
/// Propagates prediction errors (geometry mismatch).
///
/// # Panics
///
/// Panics when `layouts` is empty or geometries differ between layouts.
pub fn evaluate_surrogate(
    network: &CmpNeuralNetwork,
    sim: &CmpSimulator,
    layouts: &[Layout],
) -> Result<AccuracyReport> {
    assert!(!layouts.is_empty(), "need evaluation layouts");
    let n_windows = layouts[0].num_windows();
    let mut err_sum = vec![0.0f64; n_windows];
    let mut count = 0usize;
    for layout in layouts {
        assert_eq!(layout.num_windows(), n_windows, "evaluation geometries differ");
        let truth = sim.simulate(layout);
        // One multi-sample forward per layout instead of one per layer.
        let samples: Vec<_> = (0..layout.num_layers())
            .map(|l| network.extract_window_sample(layout, l))
            .collect::<Result<_>>()?;
        for (l, pred) in network.predict_heights_batch(&samples)?.iter().enumerate() {
            let t = truth.layer(l).heights();
            let base = l * layout.rows() * layout.cols();
            for (k, (p, h)) in pred.iter().zip(t).enumerate() {
                err_sum[base + k] += (p - h).abs() / h.abs().max(1e-9);
            }
        }
        count += 1;
    }
    let per_window_error: Vec<f64> = err_sum.iter().map(|e| e / count as f64).collect();
    let mean = per_window_error.iter().sum::<f64>() / per_window_error.len().max(1) as f64;
    let max = per_window_error.iter().cloned().fold(0.0, f64::max);
    Ok(AccuracyReport {
        mean_relative_error: mean,
        max_window_error: max,
        per_window_error,
        num_layouts: count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_cmpsim::ProcessParams;
    use neurfill_layout::{benchmark_designs, DesignKind, DesignSpec};
    use rand::SeedableRng;

    fn tiny_config() -> SurrogateConfig {
        SurrogateConfig {
            unet: UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 1 },
            train: TrainConfig {
                epochs: 2,
                batch_size: 4,
                lr: 2e-3,
                lr_decay: 1.0,
                ..TrainConfig::default()
            },
            num_layouts: 6,
            validation_fraction: 0.2,
            datagen: DataGenConfig { rows: 8, cols: 8, ..DataGenConfig::default() },
            ..SurrogateConfig::default()
        }
    }

    #[test]
    fn training_produces_finite_losses_and_working_network() {
        let sources = benchmark_designs(10, 10, 1);
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let trained = train_surrogate(&sources, &sim, &tiny_config(), &mut rng).unwrap();
        assert_eq!(trained.report.epochs.len(), 2);
        for (t, v) in &trained.report.epochs {
            assert!(t.is_finite());
            assert!(v.unwrap().is_finite());
        }
        // Loss should drop from epoch 0 to the last epoch.
        assert!(trained.report.epochs.last().unwrap().0 <= trained.report.epochs[0].0 * 1.5);
        // The assembled network predicts on compatible layouts.
        let probe = DesignSpec::new(DesignKind::CmpTest, 8, 8, 9).generate();
        let h = trained.network.predict_layer_heights(&probe, 0).unwrap();
        assert_eq!(h.len(), 64);
        assert!(h.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn accuracy_report_statistics() {
        let sources = benchmark_designs(10, 10, 1);
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let trained = train_surrogate(&sources, &sim, &tiny_config(), &mut rng).unwrap();
        let mut gen = TrainingLayoutGenerator::new(
            sources,
            DataGenConfig { rows: 8, cols: 8, seed: 99, ..DataGenConfig::default() },
        );
        let eval_layouts = gen.generate(3);
        let report = evaluate_surrogate(&trained.network, &sim, &eval_layouts).unwrap();
        assert_eq!(report.num_layouts, 3);
        assert!(report.mean_relative_error.is_finite());
        assert!(report.max_window_error >= report.mean_relative_error);
        assert!(report.fraction_below(f64::INFINITY) == 1.0);
        let hist = report.histogram(10, 0.1);
        assert_eq!(hist.len(), 10);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, report.per_window_error.len());
    }

    #[test]
    fn rejects_incompatible_datagen_dims() {
        let sources = benchmark_designs(10, 10, 1);
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut cfg = tiny_config();
        cfg.datagen.rows = 9; // not divisible by 2^depth
        assert!(train_surrogate(&sources, &sim, &cfg, &mut rng).is_err());
    }
}
