//! Persistence of a trained CMP neural network: UNet weights plus the
//! height normalization and extraction configuration it was trained with,
//! in one self-contained text bundle.
//!
//! A surrogate is only meaningful together with its normalization
//! constants — loading weights with a different [`HeightNorm`] silently
//! mis-scales every prediction — so the bundle keeps them inseparable.

use crate::cmp_nn::{CmpNeuralNetwork, CmpNnConfig, HeightNorm};
use crate::extraction::{ExtractionConfig, NUM_CHANNELS};
use neurfill_layout::DummySpec;
use neurfill_nn::{serialize, CalibrationScales, Module, UNet, UNetConfig};
use rand::SeedableRng;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

const MAGIC: &str = "neurfill-surrogate v1";
/// A calibration section starts on its own line with the
/// [`CalibrationScales`] magic; weight lines are 8-hex-digit values and
/// `param/buffer` headers, so the marker cannot occur inside the weights.
const CALIBRATION_MARKER: &str = "\nneurfill-calibration v1\n";

/// Writes a trained network bundle to `w`.
///
/// A `&mut` reference can be passed for `w` (see `std::io::Write`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_network<W: Write>(network: &CmpNeuralNetwork, mut w: W) -> io::Result<()> {
    writeln!(w, "{MAGIC}")?;
    let cfg = network.unet().config();
    writeln!(w, "unet {} {} {} {}", cfg.in_channels, cfg.out_channels, cfg.base_channels, cfg.depth)?;
    let norm = network.height_norm();
    writeln!(w, "height_norm {} {}", norm.offset_nm, norm.scale_nm)?;
    let ex = network.extraction();
    writeln!(
        w,
        "extraction {} {} {} {}",
        ex.perimeter_scale, ex.width_scale, ex.dummy.edge_um, ex.dummy.bytes_per_dummy
    )?;
    serialize::save_parameters(network.unet(), &mut w)?;
    if let Some(cal) = network.calibration() {
        cal.write_to(&mut w)?;
    }
    Ok(())
}

/// Reads a bundle written by [`save_network`].
///
/// A `&mut` reference can be passed for `r` (see `std::io::Read`).
///
/// # Errors
///
/// Returns `InvalidData` on any format violation or architecture mismatch.
pub fn load_network<R: Read>(r: R) -> io::Result<CmpNeuralNetwork> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut reader = BufReader::new(r);
    let mut line = String::new();

    let mut next_line = |reader: &mut BufReader<R>| -> io::Result<String> {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "unexpected end of bundle"));
        }
        Ok(line.trim_end().to_string())
    };

    if next_line(&mut reader)? != MAGIC {
        return Err(bad("not a neurfill surrogate bundle".into()));
    }
    let unet_line = next_line(&mut reader)?;
    let parts: Vec<usize> = unet_line
        .strip_prefix("unet ")
        .ok_or_else(|| bad(format!("bad unet line: {unet_line:?}")))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| bad(format!("bad unet field {t:?}: {e}"))))
        .collect::<io::Result<_>>()?;
    let [in_c, out_c, base, depth] = parts[..] else {
        return Err(bad("unet line needs 4 fields".into()));
    };
    if in_c != NUM_CHANNELS {
        return Err(bad(format!(
            "bundle has {in_c} input channels; this build extracts {NUM_CHANNELS}"
        )));
    }
    let norm_line = next_line(&mut reader)?;
    let nums: Vec<f64> = norm_line
        .strip_prefix("height_norm ")
        .ok_or_else(|| bad(format!("bad height_norm line: {norm_line:?}")))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| bad(format!("bad norm field {t:?}: {e}"))))
        .collect::<io::Result<_>>()?;
    let [offset_nm, scale_nm] = nums[..] else {
        return Err(bad("height_norm needs 2 fields".into()));
    };
    let ex_line = next_line(&mut reader)?;
    let exs: Vec<f64> = ex_line
        .strip_prefix("extraction ")
        .ok_or_else(|| bad(format!("bad extraction line: {ex_line:?}")))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| bad(format!("bad extraction field {t:?}: {e}"))))
        .collect::<io::Result<_>>()?;
    let [perimeter_scale, width_scale, edge_um, bytes_per_dummy] = exs[..] else {
        return Err(bad("extraction needs 4 fields".into()));
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let unet = UNet::new(
        UNetConfig { in_channels: in_c, out_channels: out_c, base_channels: base, depth },
        &mut rng,
    );
    // The weight parser buffers internally, so the remainder of the bundle
    // — weights plus an optional calibration section — is read whole and
    // split at the calibration magic. Unknown trailing sections after the
    // calibration block are ignored by its parser (forward compatibility).
    let mut rest = String::new();
    reader.read_to_string(&mut rest)?;
    let (weights, calibration_text) = match rest.find(CALIBRATION_MARKER) {
        Some(pos) => {
            let (w, c) = rest.split_at(pos + 1);
            (w, Some(c))
        }
        None => (rest.as_str(), None),
    };
    serialize::load_parameters(&unet, weights.as_bytes())?;
    unet.set_training(false);
    let network = CmpNeuralNetwork::new(
        unet,
        HeightNorm { offset_nm, scale_nm },
        ExtractionConfig { perimeter_scale, width_scale, dummy: DummySpec { edge_um, bytes_per_dummy } },
        CmpNnConfig::default(),
    );
    match calibration_text {
        Some(text) => Ok(network.with_calibration(CalibrationScales::parse(text)?)),
        None => Ok(network),
    }
}

/// Saves a network bundle to a file path.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn save_to_file(network: &CmpNeuralNetwork, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    save_network(network, io::BufWriter::new(f))
}

/// Loads a network bundle from a file path.
///
/// # Errors
///
/// Propagates file-system and format errors.
pub fn load_from_file(path: impl AsRef<Path>) -> io::Result<CmpNeuralNetwork> {
    load_network(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_layout::{DesignKind, DesignSpec};

    fn network() -> CmpNeuralNetwork {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let unet = UNet::new(
            UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
            &mut rng,
        );
        CmpNeuralNetwork::new(
            unet,
            HeightNorm { offset_nm: 123.0, scale_nm: 4.5 },
            ExtractionConfig { perimeter_scale: 77_000.0, ..ExtractionConfig::default() },
            CmpNnConfig::default(),
        )
    }

    #[test]
    fn roundtrip_preserves_predictions_and_config() {
        let net = network();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let back = load_network(buf.as_slice()).unwrap();
        assert_eq!(back.height_norm().offset_nm, 123.0);
        assert_eq!(back.height_norm().scale_nm, 4.5);
        assert_eq!(back.extraction().perimeter_scale, 77_000.0);

        let layout = DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate();
        let a = net.predict_layer_heights(&layout, 0).unwrap();
        let b = back.predict_layer_heights(&layout, 0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let net = network();
        let mut first = Vec::new();
        save_network(&net, &mut first).unwrap();
        let reloaded = load_network(first.as_slice()).unwrap();
        let mut second = Vec::new();
        save_network(&reloaded, &mut second).unwrap();
        assert_eq!(first, second, "persistence must be a fixed point");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(load_network(b"nope".as_slice()).is_err());
        let net = network();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let cut = &buf[..buf.len() / 3];
        assert!(load_network(cut).is_err());
    }

    #[test]
    fn corrupt_headers_error_cleanly() {
        let net = network();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();

        // Wrong magic and wrong version must both be InvalidData, not a
        // panic deeper in the parameter parser.
        for bad_magic in ["other-format v1", "neurfill-surrogate v2"] {
            let corrupted = text.replacen(MAGIC, bad_magic, 1);
            let err = load_network(corrupted.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad_magic}");
        }

        // Truncation anywhere — headers or mid-weights — errors cleanly.
        for cut in [5, 30, text.len() / 2, text.len() - 3] {
            assert!(load_network(&buf[..cut]).is_err(), "cut at {cut}");
        }

        // A mangled weight value errors instead of panicking.
        let weight_line = text
            .lines()
            .find(|l| l.len() == 8 && l.bytes().all(|b| b.is_ascii_hexdigit()))
            .expect("bundle contains hex weight lines");
        let mangled = text.replacen(weight_line, "zzzzzzzz", 1);
        assert!(load_network(mangled.as_bytes()).is_err());
    }

    fn calibrated_network() -> CmpNeuralNetwork {
        // depth 2 → 4·2+3 = 11 conv inputs, one scale each.
        let scales: Vec<f32> = (0..11).map(|i| 0.01 * (i + 1) as f32).collect();
        network().with_calibration(CalibrationScales::new(scales))
    }

    #[test]
    fn calibrated_save_load_save_is_byte_identical() {
        let net = calibrated_network();
        let mut first = Vec::new();
        save_network(&net, &mut first).unwrap();
        let reloaded = load_network(first.as_slice()).unwrap();
        let back = reloaded.calibration().expect("scales survive the roundtrip");
        assert_eq!(back.scales(), net.calibration().unwrap().scales());
        let mut second = Vec::new();
        save_network(&reloaded, &mut second).unwrap();
        assert_eq!(first, second, "calibrated persistence must be a fixed point");
    }

    #[test]
    fn bundles_without_scales_still_load() {
        // The pre-calibration format is a strict prefix of the new one:
        // bundles written before this section existed keep loading, with no
        // scales attached.
        let net = network();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let back = load_network(buf.as_slice()).unwrap();
        assert!(back.calibration().is_none());
    }

    #[test]
    fn unknown_trailing_section_is_ignored() {
        let net = calibrated_network();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        buf.extend_from_slice(b"neurfill-future-section v9\nopaque payload\n");
        let back = load_network(buf.as_slice()).unwrap();
        assert_eq!(back.calibration().unwrap().scales(), net.calibration().unwrap().scales());
    }

    #[test]
    fn corrupt_calibration_is_rejected_cleanly() {
        let net = calibrated_network();
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // A flipped checksum must be InvalidData, not a silent mis-scale.
        let pos = text.rfind("checksum ").expect("calibration carries a checksum");
        let digit = text.as_bytes()[pos + "checksum ".len()];
        let flipped = if digit == b'0' { "1" } else { "0" };
        let mut mangled = text.clone();
        mangled.replace_range(pos + "checksum ".len()..pos + "checksum ".len() + 1, flipped);
        let err = load_network(mangled.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncation inside the calibration section errors too.
        let cut = text.len() - 4;
        assert!(load_network(&text.as_bytes()[..cut]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let net = network();
        let path = std::env::temp_dir().join("neurfill_persist_test.bundle");
        save_to_file(&net, &path).unwrap();
        let back = load_from_file(&path).unwrap();
        assert_eq!(back.unet().num_parameters(), net.unet().num_parameters());
        let _ = std::fs::remove_file(&path);
    }
}
