//! # neurfill
//!
//! A from-scratch Rust reproduction of **NeurFill: Migrating Full-Chip CMP
//! Simulators to Neural Networks for Model-Based Dummy Filling Synthesis**
//! (Cai et al., DAC 2021).
//!
//! The crate assembles the paper's full pipeline on top of the workspace
//! substrates:
//!
//! * [`score`] — the filling-quality metrics and Table II/III scoring.
//! * [`pd`] — analytic performance-degradation estimation (overlay via
//!   four-type region insertion, Eq. 12–17).
//! * [`extraction`] — the differentiable extraction layer (layout + fill →
//!   parameter matrix `L`).
//! * [`CmpNeuralNetwork`] — extraction + pre-trained UNet + objective
//!   layers: `S_plan` by forward propagation, `∇S_plan` by backward
//!   propagation (Eq. 10–11).
//! * [`surrogate`] — UNet pre-training with the two-step random procedure
//!   (Fig. 8, Eq. 20) and the Fig. 9 accuracy evaluation.
//! * [`pkb`] — prior-knowledge-based starting points (Eq. 18).
//! * [`NeurFill`] — the MSP-SQP framework with PKB or multi-modal (NMMSO)
//!   starting points (Fig. 7).
//! * [`baselines`] — Lin [10], Tao [11] and Cai [12] comparison methods.
//! * [`report`] — golden-simulator evaluation and Table III formatting.
//!
//! # Example
//!
//! ```no_run
//! use neurfill::{surrogate, Coefficients, NeurFill, NeurFillConfig};
//! use neurfill_cmpsim::{CmpSimulator, ProcessParams};
//! use neurfill_layout::{benchmark_designs, DesignKind, DesignSpec};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let sources = benchmark_designs(32, 32, 7);
//! let sim = CmpSimulator::new(ProcessParams::default())?;
//!
//! // Pre-train the UNet surrogate of the simulator (Fig. 8).
//! let trained = surrogate::train_surrogate(
//!     &sources, &sim, &surrogate::SurrogateConfig::default(), &mut rng)?;
//!
//! // Synthesize fill for Design A with the PKB-started MSP-SQP framework.
//! let layout = DesignSpec::new(DesignKind::CmpTest, 32, 32, 7).generate();
//! let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
//! let neurfill = NeurFill::new(trained.network, NeurFillConfig::default());
//! let outcome = neurfill.run(&layout, &coeffs)?;
//! println!("filled {:.0} µm² in {:?}", outcome.plan.total(), outcome.runtime);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod baselines;
pub mod cancel;
mod cmp_nn;
pub mod extraction;
mod framework;
pub mod pd;
pub mod persist;
pub mod pipeline;
pub mod pkb;
pub mod report;
pub mod score;
pub mod surrogate;

/// Structured telemetry (re-export of `neurfill-obs`): metric handles,
/// span timing, mergeable snapshots and JSONL export. Attach a
/// [`telemetry::Telemetry`] through [`pipeline::FlowConfig`] to instrument
/// a flow end to end.
pub use neurfill_obs as telemetry;

pub use cancel::CancelToken;
pub use cmp_nn::{CmpNeuralNetwork, CmpNnConfig, HeightNorm, PlanarityEval};
pub use framework::{FillObjective, FillOutcome, NeurFill, NeurFillConfig, StartMode};
/// Re-exported from `neurfill-cmpsim`: the workspace-wide numerics tier
/// selecting between bit-exact reference kernels and the certified fast
/// (FFT / FMA / sorted-contact) kernels.
pub use neurfill_cmpsim::NumericsTier;
pub use score::{Alphas, Coefficients, PlanarityMetrics, ScoreBreakdown};
