//! Filling-quality metrics and scores (paper §II-B, Eq. 1–6; Table II/III).
//!
//! Heights are scored in Å (the simulator reports nm; 1 nm = 10 Å) to match
//! the paper's units.
//!
//! ## Metric definitions
//!
//! * height variance `σ` — Eq. 1: sum over layers of the per-layer
//!   population variance of window heights.
//! * line deviation `σ*` — Eq. 2: sum over layers of `Σ|H_{l,i,j} − H̄_{l,j}|`
//!   where `H̄_{l,j}` is the column mean.
//! * outliers `ol` — Eq. 3 with the conventional reading of its threshold:
//!   material protruding beyond three standard deviations above the layer
//!   mean, `Σ max(0, H − (H̄_l + 3·std_l))`. (The paper's literal
//!   `H − 3·σ_l` mixes units of Å and Å²; the 3-sigma-outlier reading is
//!   the ICCAD-2014 contest metric the paper modifies.)
//!
//! ## Score aggregation (reverse-engineered from Table III)
//!
//! `Overall = Σ_k α_k·f_k` over all eight metrics with `Σα = 1`, and
//! `Quality = Σ α_k·f_k / 0.8` over the six quality metrics
//! {ov, fa, σ, σ*, ol, fs}. This reproduces the published rows, e.g.
//! Tao/Design A: quality `0.512/0.8 = 0.640` and overall
//! `0.512 + 0.15·0.968 + 0.05·0.756 = 0.695`.

use neurfill_cmpsim::ChipProfile;

/// Conversion from simulator nm to scoring Å.
pub const NM_TO_ANGSTROM: f64 = 10.0;

/// The generalized score function `f(t) = max(0, 1 − t/β)` (Eq. 6).
///
/// # Panics
///
/// Panics in debug builds when `beta` is not positive.
#[must_use]
pub fn score_fn(t: f64, beta: f64) -> f64 {
    debug_assert!(beta > 0.0, "score β must be positive");
    (1.0 - t / beta).max(0.0)
}

/// The α weights of Eq. 5 / Table II (identical across the three designs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alphas {
    /// Overlay weight `α_ov`.
    pub ov: f64,
    /// Fill-amount weight `α_fa`.
    pub fa: f64,
    /// Height-variance weight `α_σ`.
    pub sigma: f64,
    /// Line-deviation weight `α_σ*`.
    pub sigma_star: f64,
    /// Outlier weight `α_ol`.
    pub ol: f64,
    /// File-size weight `α_fs`.
    pub fs: f64,
    /// Runtime weight `α_t`.
    pub time: f64,
    /// Memory weight `α_m`.
    pub mem: f64,
}

impl Default for Alphas {
    fn default() -> Self {
        // Table II: identical α row for designs A, B and C.
        Self {
            ov: 0.15,
            fa: 0.05,
            sigma: 0.2,
            sigma_star: 0.2,
            ol: 0.15,
            fs: 0.05,
            time: 0.15,
            mem: 0.05,
        }
    }
}

impl Alphas {
    /// Sum of the six quality-metric weights (0.8 in the paper).
    #[must_use]
    pub fn quality_weight(&self) -> f64 {
        self.ov + self.fa + self.sigma + self.sigma_star + self.ol + self.fs
    }
}

/// Benchmark-related score coefficients: the αs and βs of Eq. 5/6.
///
/// The βs are benchmark-related (Table II); [`Coefficients::calibrate`]
/// derives them from the *unfilled* layout the way the contest metrics do —
/// so that a method that changes nothing scores 0 on the planarity metrics
/// and a method that perfectly planarizes scores 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Coefficients {
    /// The α weights.
    pub alphas: Alphas,
    /// β for height variance (Å²).
    pub beta_sigma: f64,
    /// β for line deviation (Å).
    pub beta_sigma_star: f64,
    /// β for outliers (Å).
    pub beta_ol: f64,
    /// β for overlay area (µm²).
    pub beta_ov: f64,
    /// β for fill amount (µm²).
    pub beta_fa: f64,
    /// β for *added* file size (MB).
    pub beta_fs_mb: f64,
    /// β for runtime (seconds). The paper uses 20 min at full chip scale;
    /// calibration scales this to the experiment size.
    pub beta_time_s: f64,
    /// β for memory (GB); 8 GB in the paper.
    pub beta_mem_gb: f64,
}

impl Coefficients {
    /// Calibrates the βs against the unfilled layout: planarity βs are the
    /// unfilled metric values, overlay/fill βs are the total slack, the
    /// file-size β is twice the input size (as in Table II), and the
    /// runtime β is supplied by the caller (scale-dependent).
    ///
    /// # Panics
    ///
    /// Panics when the unfilled profile has zero variance everywhere
    /// (degenerate calibration target).
    #[must_use]
    pub fn calibrate(
        layout: &neurfill_layout::Layout,
        unfilled: &ChipProfile,
        beta_time_s: f64,
    ) -> Self {
        let m = PlanarityMetrics::from_profile(unfilled);
        assert!(m.sigma > 0.0, "unfilled layout is already perfectly flat");
        let total_slack: f64 = layout.slack_vector().iter().sum();
        Self {
            alphas: Alphas::default(),
            beta_sigma: m.sigma,
            beta_sigma_star: m.sigma_star,
            // When the unfilled layout has no outlier mass, fall back to a
            // budget proportional to the layout's line-deviation scale so
            // the outlier term stays a soft guard rather than a stiff
            // penalty dominating every gradient.
            beta_ol: if m.ol > 0.0 { m.ol } else { (0.01 * m.sigma_star).max(1.0) },
            beta_ov: total_slack.max(1.0),
            beta_fa: total_slack.max(1.0),
            beta_fs_mb: 2.0 * layout.file_size_mb().max(0.5),
            beta_time_s,
            beta_mem_gb: 8.0,
        }
    }
}

/// The three planarity metrics of Eq. 1–3, in Å.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanarityMetrics {
    /// Height variance `σ` (Å²), Eq. 1.
    pub sigma: f64,
    /// Line deviation `σ*` (Å), Eq. 2.
    pub sigma_star: f64,
    /// Outliers `ol` (Å), Eq. 3 (3-sigma protrusion reading).
    pub ol: f64,
    /// Peak-to-valley height range `ΔH` (Å) — the Table III column.
    pub delta_h: f64,
}

impl PlanarityMetrics {
    /// Computes the metrics from a simulated (or surrogate-predicted)
    /// chip profile.
    #[must_use]
    pub fn from_profile(profile: &ChipProfile) -> Self {
        let mut sigma = 0.0;
        let mut sigma_star = 0.0;
        let mut ol = 0.0;
        for layer in profile {
            let (rows, cols) = (layer.rows(), layer.cols());
            let h: Vec<f64> = layer.heights().iter().map(|v| v * NM_TO_ANGSTROM).collect();
            let n = (rows * cols) as f64;
            let mean = h.iter().sum::<f64>() / n;
            let var = h.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            sigma += var;
            // Column means.
            let mut col_mean = vec![0.0; cols];
            for r in 0..rows {
                for c in 0..cols {
                    col_mean[c] += h[r * cols + c];
                }
            }
            for cm in &mut col_mean {
                *cm /= rows as f64;
            }
            for r in 0..rows {
                for c in 0..cols {
                    sigma_star += (h[r * cols + c] - col_mean[c]).abs();
                }
            }
            let std = var.sqrt();
            let threshold = mean + 3.0 * std;
            ol += h.iter().map(|v| (v - threshold).max(0.0)).sum::<f64>();
        }
        Self { sigma, sigma_star, ol, delta_h: profile.max_height_range() * NM_TO_ANGSTROM }
    }
}

/// All eight per-metric scores of one Table III row.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScoreBreakdown {
    /// `f_ov` — the "Performance" column of Table III.
    pub ov: f64,
    /// `f_fa`.
    pub fa: f64,
    /// `f_σ` — the "Variation" column.
    pub sigma: f64,
    /// `f_σ*` — the "Line Deviation" column.
    pub sigma_star: f64,
    /// `f_ol` — the "Outliers" column.
    pub ol: f64,
    /// `f_fs` — the "File Size" column.
    pub fs: f64,
    /// `f_t` — the "Runtime" column.
    pub time: f64,
    /// `f_m` — the "Memory" column.
    pub mem: f64,
}

impl ScoreBreakdown {
    /// Computes the breakdown from raw metric values.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn from_metrics(
        coeffs: &Coefficients,
        planarity: &PlanarityMetrics,
        overlay: f64,
        fill_amount: f64,
        added_file_mb: f64,
        runtime_s: f64,
        memory_gb: f64,
    ) -> Self {
        Self {
            ov: score_fn(overlay, coeffs.beta_ov),
            fa: score_fn(fill_amount, coeffs.beta_fa),
            sigma: score_fn(planarity.sigma, coeffs.beta_sigma),
            sigma_star: score_fn(planarity.sigma_star, coeffs.beta_sigma_star),
            ol: score_fn(planarity.ol, coeffs.beta_ol),
            fs: score_fn(added_file_mb, coeffs.beta_fs_mb),
            time: score_fn(runtime_s, coeffs.beta_time_s),
            mem: score_fn(memory_gb, coeffs.beta_mem_gb),
        }
    }

    /// The quality score `S_qual` normalized by the quality weight
    /// (the "Quality" column of Table III).
    #[must_use]
    pub fn quality(&self, alphas: &Alphas) -> f64 {
        (alphas.ov * self.ov
            + alphas.fa * self.fa
            + alphas.sigma * self.sigma
            + alphas.sigma_star * self.sigma_star
            + alphas.ol * self.ol
            + alphas.fs * self.fs)
            / alphas.quality_weight()
    }

    /// The overall score (the "Overall" column of Table III).
    #[must_use]
    pub fn overall(&self, alphas: &Alphas) -> f64 {
        alphas.ov * self.ov
            + alphas.fa * self.fa
            + alphas.sigma * self.sigma
            + alphas.sigma_star * self.sigma_star
            + alphas.ol * self.ol
            + alphas.fs * self.fs
            + alphas.time * self.time
            + alphas.mem * self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_cmpsim::LayerProfile;

    #[test]
    fn score_fn_clamps_at_zero() {
        assert_eq!(score_fn(0.0, 10.0), 1.0);
        assert_eq!(score_fn(5.0, 10.0), 0.5);
        assert_eq!(score_fn(20.0, 10.0), 0.0);
    }

    #[test]
    fn alphas_sum_to_one() {
        let a = Alphas::default();
        let total = a.ov + a.fa + a.sigma + a.sigma_star + a.ol + a.fs + a.time + a.mem;
        assert!((total - 1.0).abs() < 1e-12);
        assert!((a.quality_weight() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn table_iii_row_reproduction_tao_design_a() {
        // Published per-metric scores of Tao [11] on Design A.
        let b = ScoreBreakdown {
            ov: 1.0,
            fa: 1.0,
            sigma: 0.142,
            sigma_star: 0.425,
            ol: 1.0,
            fs: 0.970,
            time: 0.968,
            mem: 0.756,
        };
        let a = Alphas::default();
        assert!((b.quality(&a) - 0.640).abs() < 0.005, "quality {}", b.quality(&a));
        assert!((b.overall(&a) - 0.695).abs() < 0.005, "overall {}", b.overall(&a));
    }

    #[test]
    fn table_iii_row_reproduction_lin_design_a() {
        // Lin [10] / Design A with f_fa = 0 (massive fill).
        let b = ScoreBreakdown {
            ov: 0.0,
            fa: 0.0,
            sigma: 0.145,
            sigma_star: 0.445,
            ol: 1.0,
            fs: 0.967,
            time: 1.0,
            mem: 0.756,
        };
        let a = Alphas::default();
        assert!((b.quality(&a) - 0.395).abs() < 0.005, "quality {}", b.quality(&a));
        assert!((b.overall(&a) - 0.504).abs() < 0.005, "overall {}", b.overall(&a));
    }

    fn profile_from(heights_nm: Vec<f64>, rows: usize, cols: usize) -> ChipProfile {
        let n = rows * cols;
        ChipProfile::new(vec![LayerProfile::new(rows, cols, heights_nm, vec![0.0; n], vec![0.0; n])])
    }

    #[test]
    fn planarity_metrics_of_flat_profile_are_zero() {
        let p = profile_from(vec![40.0; 16], 4, 4);
        let m = PlanarityMetrics::from_profile(&p);
        assert_eq!(m.sigma, 0.0);
        assert_eq!(m.sigma_star, 0.0);
        assert_eq!(m.ol, 0.0);
        assert_eq!(m.delta_h, 0.0);
    }

    #[test]
    fn planarity_metrics_known_values() {
        // 2x2 layer with heights 1,1,3,3 nm = 10,10,30,30 Å.
        let p = profile_from(vec![1.0, 1.0, 3.0, 3.0], 2, 2);
        let m = PlanarityMetrics::from_profile(&p);
        // mean 20, var = 100 Å².
        assert!((m.sigma - 100.0).abs() < 1e-9);
        // column means are 20 each ⇒ σ* = 4 · 10 = 40 Å.
        assert!((m.sigma_star - 40.0).abs() < 1e-9);
        assert_eq!(m.delta_h, 20.0);
        // No window exceeds mean + 3 std = 50.
        assert_eq!(m.ol, 0.0);
    }

    #[test]
    fn outlier_metric_catches_protrusion() {
        // One spike well above the 3-sigma band of the rest.
        let mut h = vec![10.0; 100];
        h[37] = 11.0; // baseline noise keeps std > 0
        h[12] = 30.0; // big protrusion
        let p = profile_from(h, 10, 10);
        let m = PlanarityMetrics::from_profile(&p);
        assert!(m.ol > 0.0, "{m:?}");
    }

    #[test]
    fn calibration_scores_unfilled_layout_at_zero_planarity() {
        use neurfill_cmpsim::{CmpSimulator, ProcessParams};
        use neurfill_layout::{DesignKind, DesignSpec};
        let layout = DesignSpec::new(DesignKind::CmpTest, 12, 12, 1).generate();
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let unfilled = sim.simulate(&layout);
        let coeffs = Coefficients::calibrate(&layout, &unfilled, 60.0);
        let m = PlanarityMetrics::from_profile(&unfilled);
        let b = ScoreBreakdown::from_metrics(&coeffs, &m, 0.0, 0.0, 0.0, 0.0, 0.0);
        // Unfilled planarity metrics sit exactly at their βs ⇒ score 0.
        assert!(b.sigma.abs() < 1e-9);
        assert!(b.sigma_star.abs() < 1e-9);
        // Doing nothing costs nothing on the resource metrics.
        assert_eq!(b.ov, 1.0);
        assert_eq!(b.fa, 1.0);
        assert_eq!(b.fs, 1.0);
    }
}
