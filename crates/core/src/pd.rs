//! Performance-degradation estimation (paper §IV-B, Eq. 12–17).
//!
//! The parasitic-capacitance proxy has two parts: the total fill amount
//! `fa` (Eq. 4) and the overlay area `ov` estimated by four-type region
//! insertion (Fig. 5): dummies fill the slack types in priority order
//! 1 → 4, dummy-to-wire overlay counts type-2/3 once and type-4 twice
//! (Eq. 13), and dummy-to-dummy overlay between adjacent layers is the
//! excess of both layers' type-1 fills over the non-overlapping slack
//! (Eq. 14). Both metrics and their gradients are analytic — no simulator
//! involvement.

use crate::score::{score_fn, Coefficients};
use neurfill_layout::{non_overlap_slack, slack_types, FillPlan, Layout, WindowId};

/// Overlay/fill metrics of a plan plus their analytic gradient machinery.
#[derive(Debug, Clone, PartialEq)]
pub struct PdEstimate {
    /// Total overlay area `ov` (µm²), Eq. 15.
    pub overlay: f64,
    /// Dummy-to-wire part `ov^{d-w}`, Eq. 13.
    pub overlay_dw: f64,
    /// Dummy-to-dummy part `Σ ov^{d-d}`, Eq. 14.
    pub overlay_dd: f64,
    /// Total fill amount `fa` (µm²), Eq. 4.
    pub fill_amount: f64,
    /// Per-window type split of the fill, flat order (for insertion and
    /// file-size estimation).
    pub type_split: Vec<[f64; 4]>,
}

/// Computes the four-type insertion estimate for a plan.
///
/// # Panics
///
/// Panics when the plan length disagrees with the layout.
#[must_use]
pub fn estimate(layout: &Layout, plan: &FillPlan) -> PdEstimate {
    let n = layout.num_windows();
    assert_eq!(plan.as_slice().len(), n, "plan length mismatch");
    let mut type_split = vec![[0.0; 4]; n];
    let mut overlay_dw = 0.0;
    for id in layout.window_ids() {
        let k = layout.flat_index(id);
        let st = slack_types(layout, id);
        let split = st.fill_by_priority(plan.amount(k));
        overlay_dw += split[1] + split[2] + 2.0 * split[3];
        type_split[k] = split;
    }
    let mut overlay_dd = 0.0;
    for layer in 0..layout.num_layers().saturating_sub(1) {
        for row in 0..layout.rows() {
            for col in 0..layout.cols() {
                let k_lo = layout.flat_index(WindowId { layer, row, col });
                let k_hi = layout.flat_index(WindowId { layer: layer + 1, row, col });
                let s_star = non_overlap_slack(layout, layer, row, col);
                overlay_dd += (type_split[k_lo][0] + type_split[k_hi][0] - s_star).max(0.0);
            }
        }
    }
    PdEstimate {
        overlay: overlay_dw + overlay_dd,
        overlay_dw,
        overlay_dd,
        fill_amount: plan.total(),
        type_split,
    }
}

/// Analytic gradient of the overlay area w.r.t. each window's fill amount
/// (Eq. 16): 0 while type-1 fills of the adjacent layers fit in the
/// non-overlap slack, 2 once type-4 regions are being filled, 1 otherwise.
#[must_use]
pub fn overlay_gradient(layout: &Layout, est: &PdEstimate) -> Vec<f64> {
    let n = layout.num_windows();
    let mut grad = vec![0.0; n];
    for id in layout.window_ids() {
        let k = layout.flat_index(id);
        let split = est.type_split[k];
        let g = if split[3] > 0.0 {
            2.0
        } else {
            // Check the dummy-to-dummy condition against the upper layer.
            let dd_active = if id.layer + 1 < layout.num_layers() {
                let up = layout.flat_index(WindowId { layer: id.layer + 1, ..id });
                let s_star = non_overlap_slack(layout, id.layer, id.row, id.col);
                split[0] + est.type_split[up][0] >= s_star
            } else {
                false
            };
            let in_wire_types = split[1] > 0.0 || split[2] > 0.0;
            if dd_active || in_wire_types {
                1.0
            } else {
                0.0
            }
        };
        grad[k] = g;
    }
    grad
}

/// The performance-degradation score `S_PD` (Eq. 5c) and its analytic
/// gradient (Eq. 17).
#[derive(Debug, Clone, PartialEq)]
pub struct PdScore {
    /// `S_PD = α_ov·f_ov + α_fa·f_fa`.
    pub score: f64,
    /// `∇S_PD` in flat window order.
    pub gradient: Vec<f64>,
    /// The underlying estimate.
    pub estimate: PdEstimate,
}

/// Evaluates `S_PD` and `∇S_PD` for a plan.
///
/// When either score saturates at zero (metric beyond β), its gradient
/// contribution is kept (the paper's Eq. 17 uses the unclamped slope) so
/// the optimizer is still pushed back toward the feasible scoring region.
///
/// # Panics
///
/// Panics when the plan length disagrees with the layout.
#[must_use]
pub fn pd_score(layout: &Layout, plan: &FillPlan, coeffs: &Coefficients) -> PdScore {
    let est = estimate(layout, plan);
    let a = &coeffs.alphas;
    let score =
        a.ov * score_fn(est.overlay, coeffs.beta_ov) + a.fa * score_fn(est.fill_amount, coeffs.beta_fa);
    // Eq. 17: ∇S_PD = −(α_fa/β_fa)·∇fa − (α_ov/β_ov)·∇ov, with ∇fa = 1.
    let ov_grad = overlay_gradient(layout, &est);
    let gradient =
        ov_grad.iter().map(|g| -(a.fa / coeffs.beta_fa) - (a.ov / coeffs.beta_ov) * g).collect();
    PdScore { score, gradient, estimate: est }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Alphas;
    use neurfill_layout::{DesignKind, DesignSpec, Grid, WindowPattern};

    fn coeffs_for(layout: &Layout) -> Coefficients {
        let slack: f64 = layout.slack_vector().iter().sum();
        Coefficients {
            alphas: Alphas::default(),
            beta_sigma: 1.0,
            beta_sigma_star: 1.0,
            beta_ol: 1.0,
            beta_ov: slack,
            beta_fa: slack,
            beta_fs_mb: 1.0,
            beta_time_s: 60.0,
            beta_mem_gb: 8.0,
        }
    }

    fn stack(d0: f64, d1: f64, d2: f64) -> Layout {
        let mk = |d: f64| Grid::filled(1, 1, WindowPattern::from_line_model(d, 0.2, 10_000.0, 1.0));
        Layout::new("s", 100.0, vec![mk(d0), mk(d1), mk(d2)], 1.0)
    }

    #[test]
    fn empty_plan_has_no_overlay() {
        let l = stack(0.3, 0.5, 0.7);
        let est = estimate(&l, &FillPlan::zeros(&l));
        assert_eq!(est.overlay, 0.0);
        assert_eq!(est.fill_amount, 0.0);
    }

    #[test]
    fn type1_fill_below_capacity_has_no_dw_overlay() {
        let l = stack(0.3, 0.5, 0.7);
        let mut p = FillPlan::zeros(&l);
        // Fill a small amount on the middle layer: goes into type 1 first.
        let id = WindowId { layer: 1, row: 0, col: 0 };
        let st = slack_types(&l, id);
        p.as_mut_slice()[l.flat_index(id)] = 0.5 * st.areas[0];
        let est = estimate(&l, &p);
        assert_eq!(est.overlay_dw, 0.0);
    }

    #[test]
    fn spill_into_wire_types_creates_dw_overlay() {
        let l = stack(0.3, 0.5, 0.7);
        let id = WindowId { layer: 1, row: 0, col: 0 };
        let st = slack_types(&l, id);
        let mut p = FillPlan::zeros(&l);
        // Fill past type 1 into type 2 by 10 µm².
        p.as_mut_slice()[l.flat_index(id)] = st.areas[0] + 10.0;
        let est = estimate(&l, &p);
        assert!((est.overlay_dw - 10.0).abs() < 1e-9, "{est:?}");
    }

    #[test]
    fn type4_counts_twice() {
        let l = stack(0.3, 0.5, 0.7);
        let id = WindowId { layer: 1, row: 0, col: 0 };
        let st = slack_types(&l, id);
        let mut p = FillPlan::zeros(&l);
        let into_t4 = 5.0;
        p.as_mut_slice()[l.flat_index(id)] = st.areas[0] + st.areas[1] + st.areas[2] + into_t4;
        let est = estimate(&l, &p);
        let expect = st.areas[1] + st.areas[2] + 2.0 * into_t4;
        assert!((est.overlay_dw - expect).abs() < 1e-9, "{est:?}");
    }

    #[test]
    fn dummy_to_dummy_overlay_when_both_layers_fill_type1() {
        // Three empty layers: everything is type 1 everywhere.
        let l = stack(0.0, 0.0, 0.0);
        let k0 = l.flat_index(WindowId { layer: 0, row: 0, col: 0 });
        let k1 = l.flat_index(WindowId { layer: 1, row: 0, col: 0 });
        let s_star = non_overlap_slack(&l, 0, 0, 0); // 10000 µm²
        let mut p = FillPlan::zeros(&l);
        p.as_mut_slice()[k0] = 0.7 * s_star;
        p.as_mut_slice()[k1] = 0.7 * s_star;
        let est = estimate(&l, &p);
        assert!((est.overlay_dd - 0.4 * s_star).abs() < 1e-6, "{est:?}");
    }

    #[test]
    fn gradient_matches_eq16_regimes() {
        let l = stack(0.3, 0.5, 0.7);
        let id = WindowId { layer: 1, row: 0, col: 0 };
        let k = l.flat_index(id);
        let st = slack_types(&l, id);

        // Regime 1: small type-1 fill ⇒ gradient 0.
        let mut p = FillPlan::zeros(&l);
        p.as_mut_slice()[k] = 0.1 * st.areas[0];
        let g = overlay_gradient(&l, &estimate(&l, &p));
        assert_eq!(g[k], 0.0);

        // Regime 2: filling type-4 ⇒ gradient 2.
        let mut p = FillPlan::zeros(&l);
        p.as_mut_slice()[k] = st.areas[0] + st.areas[1] + st.areas[2] + 1.0;
        let g = overlay_gradient(&l, &estimate(&l, &p));
        assert_eq!(g[k], 2.0);

        // Regime 3: filling type-2 ⇒ gradient 1.
        let mut p = FillPlan::zeros(&l);
        p.as_mut_slice()[k] = st.areas[0] + 1.0;
        let g = overlay_gradient(&l, &estimate(&l, &p));
        assert_eq!(g[k], 1.0);
    }

    #[test]
    fn pd_score_decreases_with_fill() {
        let layout = DesignSpec::new(DesignKind::CmpTest, 6, 6, 0).generate();
        let coeffs = coeffs_for(&layout);
        let empty = pd_score(&layout, &FillPlan::zeros(&layout), &coeffs);
        let mut p = FillPlan::zeros(&layout);
        for (x, s) in p.as_mut_slice().iter_mut().zip(layout.slack_vector()) {
            *x = 0.8 * s;
        }
        let filled = pd_score(&layout, &p, &coeffs);
        assert!(empty.score > filled.score);
        // Full score for the empty plan: α_ov + α_fa.
        assert!((empty.score - 0.2).abs() < 1e-9);
    }

    #[test]
    fn pd_gradient_is_never_positive() {
        // More fill can only hurt the PD score.
        let layout = DesignSpec::new(DesignKind::Fpga, 5, 5, 1).generate();
        let coeffs = coeffs_for(&layout);
        let mut p = FillPlan::zeros(&layout);
        for (i, (x, s)) in p.as_mut_slice().iter_mut().zip(layout.slack_vector()).enumerate() {
            *x = (i % 7) as f64 / 7.0 * s;
        }
        let ps = pd_score(&layout, &p, &coeffs);
        assert!(ps.gradient.iter().all(|g| *g <= 0.0));
    }

    #[test]
    fn pd_gradient_matches_finite_difference_away_from_kinks() {
        let layout = DesignSpec::new(DesignKind::RiscV, 4, 4, 2).generate();
        let coeffs = coeffs_for(&layout);
        let slack = layout.slack_vector();
        // Mid-range fill keeps us inside one linear regime per window.
        let mut p = FillPlan::zeros(&layout);
        for (x, s) in p.as_mut_slice().iter_mut().zip(&slack) {
            *x = 0.45 * s;
        }
        let ps = pd_score(&layout, &p, &coeffs);
        let eps = 1e-4;
        for k in [0usize, 7, 20, 40] {
            let mut plus = p.clone();
            plus.as_mut_slice()[k] += eps;
            let mut minus = p.clone();
            minus.as_mut_slice()[k] -= eps;
            let fp = pd_score(&layout, &plus, &coeffs).score;
            let fm = pd_score(&layout, &minus, &coeffs).score;
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - ps.gradient[k]).abs() < 1e-6 + 0.2 * fd.abs(),
                "k={k} fd={fd} analytic={}",
                ps.gradient[k]
            );
        }
    }
}
