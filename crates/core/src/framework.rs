//! The MSP-SQP NeurFill framework (paper §IV-E, Fig. 7).
//!
//! Starting points come either from the prior-knowledge-based target
//! density search (NeurFill (PKB)) or from the NMMSO multi-modal search
//! (NeurFill (MM)); SQP then maximizes the filling-quality score whose
//! planarity part (score and gradient) is produced by the CMP neural
//! network and whose performance-degradation part is analytic.

use crate::cancel::CancelToken;
use crate::cmp_nn::CmpNeuralNetwork;
use crate::pd::pd_score;
use crate::pkb::{pkb_starting_point, PkbConfig};
use crate::score::Coefficients;
use neurfill_layout::{FillPlan, Layout};
use neurfill_optim::{Bounds, BoxNormalized, Nmmso, NmmsoConfig, Objective, SqpConfig, SqpSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::Cell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Starting-point strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum StartMode {
    /// NeurFill (PKB): prior-knowledge-based starting point (fast).
    PriorKnowledge(PkbConfig),
    /// NeurFill (MM): multi-modal starting-points search (slow, no prior
    /// knowledge needed).
    ///
    /// The paper runs NMMSO on the full fill space; at this reproduction's
    /// CPU budget the niching search operates on the per-layer
    /// target-density subspace (each point maps through Eq. 18 to a full
    /// plan), and the located modes are then refined by *full-dimensional*
    /// SQP. The multi-modal character of the score (Fig. 6) lives along
    /// exactly this fill-amount axis, so the basins found match.
    MultiModal {
        /// NMMSO settings (budget dominates the runtime).
        nmmso: NmmsoConfig,
        /// How many of the best located modes to refine with SQP.
        top_modes: usize,
    },
}

/// NeurFill configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NeurFillConfig {
    /// SQP settings.
    pub sqp: SqpConfig,
    /// Starting-point strategy.
    pub mode: StartMode,
    /// Trust-region radius around each starting point, in slack-normalized
    /// units (`0.15` = each window may move by 15 % of its slack range).
    /// A surrogate is only trustworthy near its training distribution;
    /// bounding the SQP excursion prevents the optimizer from climbing
    /// surrogate-error hills far from the (reliable) starting points.
    /// Set to `1.0` to disable.
    pub trust_radius: f64,
    /// RNG seed (used by the multi-modal search).
    pub seed: u64,
}

impl Default for NeurFillConfig {
    fn default() -> Self {
        Self {
            // initial_step is in slack-normalized units: 0.1 of a window's
            // full fill range per trial step keeps SQP inside the region
            // where the surrogate interpolates rather than extrapolates.
            sqp: SqpConfig {
                max_iterations: 80,
                tolerance: 1e-7,
                initial_step: 0.1,
                ..SqpConfig::default()
            },
            mode: StartMode::PriorKnowledge(PkbConfig::default()),
            trust_radius: 0.15,
            seed: 0,
        }
    }
}

/// Outcome of a NeurFill run.
#[derive(Debug, Clone, PartialEq)]
pub struct FillOutcome {
    /// The synthesized fill plan (feasible).
    pub plan: FillPlan,
    /// The optimizer's objective value `S_plan + S_PD` at the solution
    /// (surrogate-based; report hard scores through `report::evaluate`).
    pub objective_value: f64,
    /// SQP major iterations of the winning run.
    pub sqp_iterations: usize,
    /// Total surrogate objective evaluations (forward passes).
    pub evaluations: usize,
    /// Total surrogate gradient evaluations (backward passes).
    pub gradient_evaluations: usize,
    /// Number of SQP starting points used.
    pub starts: usize,
    /// Wall-clock runtime.
    pub runtime: Duration,
}

/// The filling-quality objective `S_qual(x) = S_plan(x) + S_PD(x)` over a
/// fixed layout, implementing [`Objective`] for the solvers.
pub struct FillObjective<'a> {
    network: &'a CmpNeuralNetwork,
    layout: &'a Layout,
    coeffs: &'a Coefficients,
    forward_count: Cell<usize>,
    backward_count: Cell<usize>,
}

impl std::fmt::Debug for FillObjective<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FillObjective(dim={})", self.layout.num_windows())
    }
}

impl<'a> FillObjective<'a> {
    /// Creates the objective for one layout.
    #[must_use]
    pub fn new(network: &'a CmpNeuralNetwork, layout: &'a Layout, coeffs: &'a Coefficients) -> Self {
        Self { network, layout, coeffs, forward_count: Cell::new(0), backward_count: Cell::new(0) }
    }

    /// Surrogate forward passes performed so far.
    #[must_use]
    pub fn forward_count(&self) -> usize {
        self.forward_count.get()
    }

    /// Surrogate backward passes performed so far.
    #[must_use]
    pub fn backward_count(&self) -> usize {
        self.backward_count.get()
    }
}

// The `expect`s assert layout/network geometry compatibility, which
// `NeurFill::run*` re-checks before constructing the objective.
#[allow(clippy::expect_used)]
impl Objective for FillObjective<'_> {
    fn dim(&self) -> usize {
        self.layout.num_windows()
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.forward_count.set(self.forward_count.get() + 1);
        let plan = FillPlan::from_vec(self.layout, x.to_vec());
        // Pinned to f32: the solvers' line searches compare this value
        // against predictions from the f32 autograd gradient, so both
        // must evaluate the same surface whatever tensor backend the
        // process selected (see `planarity_score_f32`).
        let plan_score = self
            .network
            .planarity_score_f32(self.layout, x, self.coeffs)
            .expect("layout/network geometry checked at construction");
        plan_score + pd_score(self.layout, &plan, self.coeffs).score
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        self.value_and_gradient(x).1
    }

    fn value_and_gradient(&self, x: &[f64]) -> (f64, Vec<f64>) {
        self.forward_count.set(self.forward_count.get() + 1);
        self.backward_count.set(self.backward_count.get() + 1);
        let plan = FillPlan::from_vec(self.layout, x.to_vec());
        let planarity = self
            .network
            .planarity(self.layout, x, self.coeffs)
            .expect("layout/network geometry checked at construction");
        let pd = pd_score(self.layout, &plan, self.coeffs);
        let grad = planarity.gradient.iter().zip(&pd.gradient).map(|(a, b)| a + b).collect();
        (planarity.score + pd.score, grad)
    }
}

/// The NeurFill dummy-filling synthesizer.
///
/// Holds its surrogate behind an [`Rc`] so a trained network can be
/// injected and shared between the synthesizer, the pipeline and
/// evaluation code without serializing a copy; plain
/// [`CmpNeuralNetwork`] values still convert implicitly.
#[derive(Debug)]
pub struct NeurFill {
    network: Rc<CmpNeuralNetwork>,
    config: NeurFillConfig,
    telemetry: neurfill_obs::Telemetry,
}

impl NeurFill {
    /// Creates the framework around a pre-trained CMP neural network.
    #[must_use]
    pub fn new(network: impl Into<Rc<CmpNeuralNetwork>>, config: NeurFillConfig) -> Self {
        Self { network: network.into(), config, telemetry: neurfill_obs::Telemetry::disabled() }
    }

    /// Attaches a telemetry handle; synthesis runs then record
    /// `synth.runs` and propagate into the SQP / NMMSO solvers'
    /// `optim.*` metrics.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: neurfill_obs::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The wrapped CMP neural network.
    #[must_use]
    pub fn network(&self) -> &CmpNeuralNetwork {
        &self.network
    }

    /// A shared handle to the wrapped network, for injecting the same
    /// trained surrogate into other consumers (pipeline, evaluation).
    #[must_use]
    pub fn shared_network(&self) -> Rc<CmpNeuralNetwork> {
        Rc::clone(&self.network)
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &NeurFillConfig {
        &self.config
    }

    /// Synthesizes a fill plan for `layout` under the given score
    /// coefficients.
    ///
    /// # Errors
    ///
    /// Returns an error when the layout geometry is incompatible with the
    /// surrogate.
    pub fn run(&self, layout: &Layout, coeffs: &Coefficients) -> Result<FillOutcome, String> {
        self.run_cancellable(layout, coeffs, &CancelToken::never())
    }

    /// [`NeurFill::run`] with cooperative cancellation: `cancel` is polled
    /// once per SQP major iteration and per NMMSO main-loop iteration, so
    /// a cancelled (or deadline-expired) synthesis aborts mid-optimization
    /// with a classifiable error instead of running to completion. With a
    /// never-cancelled token the result is bit-identical to
    /// [`NeurFill::run`].
    ///
    /// # Errors
    ///
    /// Returns an error when the layout geometry is incompatible with the
    /// surrogate, or a cancellation/deadline error (see [`crate::cancel`])
    /// when the token fires.
    pub fn run_cancellable(
        &self,
        layout: &Layout,
        coeffs: &Coefficients,
        cancel: &CancelToken,
    ) -> Result<FillOutcome, String> {
        self.network.check_layout(layout).map_err(|e| e.to_string())?;
        cancel.check("synthesis start")?;
        let start = Instant::now();
        let objective = FillObjective::new(&self.network, layout, coeffs);
        let bounds = Bounds::from_slack(layout.slack_vector());

        let starts: Vec<Vec<f64>> = match &self.config.mode {
            StartMode::PriorKnowledge(pkb) => {
                let result = pkb_starting_point(layout, pkb, |plan| objective.value(plan.as_slice()));
                vec![result.plan.as_slice().to_vec()]
            }
            StartMode::MultiModal { nmmso, top_modes } => {
                let mut rng = StdRng::seed_from_u64(self.config.seed);
                // Niching search over per-layer target-density fractions
                // t ∈ [0,1]^L; each point maps through Eq. 18 to a plan.
                let num_layers = layout.num_layers();
                let ranges: Vec<(f64, f64)> =
                    (0..num_layers).map(|l| crate::pkb::target_density_range(layout, l)).collect();
                let to_plan = |t: &[f64]| {
                    let td: Vec<f64> = ranges
                        .iter()
                        .zip(t)
                        .map(|((lo, hi), f)| lo + f.clamp(0.0, 1.0) * (hi - lo))
                        .collect();
                    crate::pkb::plan_for_target_density(layout, &td)
                };
                let reduced = neurfill_optim::FnObjective::new(
                    num_layers,
                    |t: &[f64]| objective.value(to_plan(t).as_slice()),
                    |_| vec![0.0; num_layers],
                );
                let reduced_bounds = Bounds::new(vec![0.0; num_layers], vec![1.0; num_layers]);
                let search = Nmmso::new(nmmso.clone()).with_telemetry(self.telemetry.clone());
                let found = search
                    .maximize_with_stop(&reduced, &reduced_bounds, &mut rng, &|| cancel.is_cancelled());
                let mut starts: Vec<Vec<f64>> = found
                    .modes
                    .into_iter()
                    .take((*top_modes).max(1))
                    .map(|m| to_plan(&m.x).as_slice().to_vec())
                    .collect();
                if starts.is_empty() {
                    starts.push(bounds.random_point(&mut rng));
                }
                starts
            }
        };

        self.optimize_from_starts(layout, &objective, &starts, start, cancel)
    }

    /// Refines a caller-supplied plan (ECO-style incremental filling):
    /// SQP starts from `initial` instead of a PKB/NMMSO search — useful
    /// after a small layout change invalidates part of a previous plan.
    ///
    /// # Errors
    ///
    /// Returns an error when the layout geometry is incompatible with the
    /// surrogate or the plan length disagrees.
    pub fn refine(
        &self,
        layout: &Layout,
        coeffs: &Coefficients,
        initial: &FillPlan,
    ) -> Result<FillOutcome, String> {
        self.network.check_layout(layout).map_err(|e| e.to_string())?;
        if initial.as_slice().len() != layout.num_windows() {
            return Err("initial plan length disagrees with the layout".into());
        }
        let start = Instant::now();
        let objective = FillObjective::new(&self.network, layout, coeffs);
        let starts = vec![initial.as_slice().to_vec()];
        self.optimize_from_starts(layout, &objective, &starts, start, &CancelToken::never())
    }

    /// Shared SQP stage: slack-normalized coordinates, trust region around
    /// each start, best-of-starts selection. `cancel` is polled per SQP
    /// major iteration and between starts.
    fn optimize_from_starts(
        &self,
        layout: &Layout,
        objective: &FillObjective<'_>,
        starts: &[Vec<f64>],
        start_time: Instant,
        cancel: &CancelToken,
    ) -> Result<FillOutcome, String> {
        let bounds = Bounds::from_slack(layout.slack_vector());
        self.telemetry.inc("synth.runs");
        let solver = SqpSolver::new(self.config.sqp.clone()).with_telemetry(self.telemetry.clone());
        // SQP runs in slack-normalized coordinates: fill amounts span four
        // orders of magnitude across windows, which would wreck the
        // quasi-Newton step geometry in raw µm².
        let (normalized, unit_bounds) = BoxNormalized::new(objective, &bounds);
        let radius = self.config.trust_radius.clamp(0.0, 1.0);
        let mut best: Option<neurfill_optim::SqpResult> = None;
        for start in starts {
            let u0 = normalized.to_u(start);
            // Trust region: intersect the unit cube with a box of the
            // configured radius around the start.
            let trust = if radius < 1.0 {
                let lo: Vec<f64> = u0.iter().map(|v| (v - radius).max(0.0)).collect();
                let hi: Vec<f64> = u0.iter().map(|v| (v + radius).min(1.0)).collect();
                Bounds::new(lo, hi)
            } else {
                unit_bounds.clone()
            };
            let run = solver.maximize_with_stop(&normalized, &trust, &u0, &|| cancel.is_cancelled());
            let was_stopped = run.stopped;
            if best.as_ref().is_none_or(|b| run.value > b.value) {
                best = Some(run);
            }
            if was_stopped {
                break;
            }
        }
        // A cancelled solve must fail the job rather than hand back the
        // partial iterate as if it were a finished synthesis.
        cancel.check("synthesis")?;
        let best = best.ok_or("no starting points")?;
        let mut plan = FillPlan::from_vec(layout, normalized.to_x(&best.x));
        plan.clamp_to_slack(layout);

        Ok(FillOutcome {
            objective_value: best.value,
            sqp_iterations: best.iterations,
            evaluations: objective.forward_count(),
            gradient_evaluations: objective.backward_count(),
            starts: starts.len(),
            runtime: start_time.elapsed(),
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmp_nn::{CmpNnConfig, HeightNorm};
    use crate::extraction::{ExtractionConfig, NUM_CHANNELS};
    use crate::score::Alphas;
    use neurfill_layout::{DesignKind, DesignSpec};
    use neurfill_nn::{UNet, UNetConfig};

    fn network() -> CmpNeuralNetwork {
        let mut rng = StdRng::seed_from_u64(0);
        let unet = UNet::new(
            UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
            &mut rng,
        );
        CmpNeuralNetwork::new(
            unet,
            HeightNorm::default(),
            ExtractionConfig::default(),
            CmpNnConfig::default(),
        )
    }

    fn coeffs(layout: &Layout) -> Coefficients {
        let slack: f64 = layout.slack_vector().iter().sum();
        Coefficients {
            alphas: Alphas::default(),
            beta_sigma: 500.0,
            beta_sigma_star: 5000.0,
            beta_ol: 10.0,
            beta_ov: slack,
            beta_fa: slack,
            beta_fs_mb: 30.0,
            beta_time_s: 60.0,
            beta_mem_gb: 8.0,
        }
    }

    fn layout() -> Layout {
        DesignSpec::new(DesignKind::CmpTest, 8, 8, 5).generate()
    }

    #[test]
    fn objective_counts_evaluations() {
        let net = network();
        let l = layout();
        let c = coeffs(&l);
        let obj = FillObjective::new(&net, &l, &c);
        let x = vec![0.0; l.num_windows()];
        let _ = obj.value(&x);
        let _ = obj.value_and_gradient(&x);
        assert_eq!(obj.forward_count(), 2);
        assert_eq!(obj.backward_count(), 1);
        assert_eq!(obj.dim(), l.num_windows());
    }

    #[test]
    fn objective_gradient_dimensions_match() {
        let net = network();
        let l = layout();
        let c = coeffs(&l);
        let obj = FillObjective::new(&net, &l, &c);
        let x = vec![10.0; l.num_windows()];
        let (v, g) = obj.value_and_gradient(&x);
        assert!(v.is_finite());
        assert_eq!(g.len(), l.num_windows());
    }

    #[test]
    fn pkb_mode_improves_on_its_starting_point_and_stays_feasible() {
        let net = network();
        let l = layout();
        let c = coeffs(&l);
        // Reproduce the PKB search's best candidate quality: SQP must not
        // end below its own starting point.
        let pkb_quality = {
            let obj = FillObjective::new(&net, &l, &c);
            crate::pkb::pkb_starting_point(&l, &crate::pkb::PkbConfig::default(), |p| {
                obj.value(p.as_slice())
            })
            .quality
        };
        let nf = NeurFill::new(net, NeurFillConfig::default());
        let outcome = nf.run(&l, &c).unwrap();
        assert!(outcome.plan.is_feasible(&l, 1e-9));
        assert!(
            outcome.objective_value >= pkb_quality - 1e-9,
            "optimized {} vs PKB start {pkb_quality}",
            outcome.objective_value
        );
        assert!(outcome.evaluations > 0);
        assert_eq!(outcome.starts, 1);
    }

    #[test]
    fn multimodal_mode_runs_with_small_budget() {
        let net = network();
        let l = layout();
        let c = coeffs(&l);
        let cfg = NeurFillConfig {
            mode: StartMode::MultiModal {
                nmmso: NmmsoConfig { max_evaluations: 30, swarm_size: 3, ..NmmsoConfig::default() },
                top_modes: 2,
            },
            sqp: SqpConfig { max_iterations: 5, ..SqpConfig::default() },
            seed: 1,
            ..NeurFillConfig::default()
        };
        let nf = NeurFill::new(net, cfg);
        let outcome = nf.run(&l, &c).unwrap();
        assert!(outcome.plan.is_feasible(&l, 1e-9));
        assert!(outcome.starts >= 1 && outcome.starts <= 2);
    }

    #[test]
    fn refine_improves_on_the_supplied_plan() {
        let net = network();
        let l = layout();
        let c = coeffs(&l);
        let nf = NeurFill::new(net, NeurFillConfig::default());
        let initial = FillPlan::zeros(&l);
        let value_before = {
            let obj = FillObjective::new(nf.network(), &l, &c);
            obj.value(initial.as_slice())
        };
        let outcome = nf.refine(&l, &c, &initial).unwrap();
        assert!(outcome.plan.is_feasible(&l, 1e-9));
        assert!(
            outcome.objective_value >= value_before - 1e-9,
            "refine must not regress: {} < {value_before}",
            outcome.objective_value
        );
        assert_eq!(outcome.starts, 1);

        // Wrong-length plans are rejected.
        let short = FillPlan::from_vec(&l, vec![0.0; l.num_windows()]);
        let other = DesignSpec::new(DesignKind::CmpTest, 4, 4, 0).generate();
        assert!(nf.refine(&other, &c, &short).is_err());
    }

    #[test]
    fn cancellation_aborts_synthesis_with_classifiable_errors() {
        let net = network();
        let l = layout();
        let c = coeffs(&l);
        let nf = NeurFill::new(net, NeurFillConfig::default());

        // Pre-cancelled token: aborts before any optimization.
        let token = CancelToken::new();
        token.cancel();
        let err = nf.run_cancellable(&l, &c, &token).unwrap_err();
        assert!(err.contains(crate::cancel::CANCELLED_MARKER), "{err}");

        // Expired deadline: same abort path, deadline-flavored message.
        let expired = CancelToken::with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        let err = nf.run_cancellable(&l, &c, &expired).unwrap_err();
        assert!(err.contains(crate::cancel::DEADLINE_MARKER), "{err}");

        // A never-cancelled token is bit-identical to the plain run.
        let plain = nf.run(&l, &c).unwrap();
        let cancellable = nf.run_cancellable(&l, &c, &CancelToken::never()).unwrap();
        assert_eq!(plain.plan.as_slice(), cancellable.plan.as_slice());
        assert_eq!(plain.objective_value, cancellable.objective_value);
        assert_eq!(plain.evaluations, cancellable.evaluations);
    }

    #[test]
    fn incompatible_layout_is_rejected() {
        let net = network();
        let l = DesignSpec::new(DesignKind::CmpTest, 6, 6, 5).generate();
        let c = coeffs(&l);
        let nf = NeurFill::new(net, NeurFillConfig::default());
        assert!(nf.run(&l, &c).is_err());
    }
}
