//! Certification harness for the Fast numerics tier (downstream layer).
//!
//! The per-kernel bounds live in `neurfill-tensor` (FMA GEMM) and
//! `neurfill-cmpsim` (FFT pad convolution, sorted contact). This suite
//! certifies the quantities a *user* of the flow actually consumes —
//! surrogate planarity score `S_plan` and its gradient, simulator-side
//! numeric gradients, the contact reference plane, synthesized fill
//! amounts and post-CMP ΔH on designs A/B/C — agreeing between the Exact
//! and Fast tiers within stated tolerances, at 1 and 8 GEMM threads.
//!
//! The quantized tensor backend is certified the same way: `S_plan`
//! through the score-only inference seam, the untouched f32 gradient
//! path, and flow-level fill totals / ΔH on designs A/B/C, each
//! bit-deterministic across thread counts.
//!
//! The GEMM tier and tensor backend are process-global (they sit behind
//! `NdArray::matmul` / `CmpNeuralNetwork::infer`), so every test that
//! flips either holds [`tier_lock`] and restores `Exact` + `Cpu` on drop
//! — tests in this binary may run concurrently.

use neurfill::extraction::{extract_layer_arrays, ExtractionConfig, NUM_CHANNELS};
use neurfill::pipeline::{FillingFlow, FlowConfig};
use neurfill::surrogate::SurrogateConfig;
use neurfill::{CmpNeuralNetwork, CmpNnConfig, Coefficients, HeightNorm, NumericsTier};
use neurfill_cmpsim::contact::{solve_reference_plane, solve_reference_plane_sorted};
use neurfill_cmpsim::{CmpSimulator, FiniteDifference, ProcessParams, FFT_MIN_RADIUS};
use neurfill_layout::datagen::DataGenConfig;
use neurfill_layout::{
    apply_fill, benchmark_designs, DesignKind, DesignSpec, DummySpec, FillPlan, Layout,
};
use neurfill_nn::calibrate;
use neurfill_nn::{TrainConfig, UNet, UNetConfig};
use neurfill_tensor::kernels::set_gemm_threads;
use neurfill_tensor::{set_backend, set_numerics_tier, BackendKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes process-global tier/backend/thread mutation within this
/// binary and restores the Exact tier, the f32 `Cpu` backend and
/// single-threaded GEMM when dropped.
struct TierLock(#[allow(dead_code)] MutexGuard<'static, ()>);

fn tier_lock() -> TierLock {
    static LOCK: Mutex<()> = Mutex::new(());
    TierLock(LOCK.lock().unwrap_or_else(PoisonError::into_inner))
}

impl Drop for TierLock {
    fn drop(&mut self) {
        set_numerics_tier(NumericsTier::Exact);
        set_backend(BackendKind::Cpu);
        set_gemm_threads(1);
    }
}

/// Designs A/B/C of the paper's evaluation.
const DESIGNS: [(DesignKind, u64); 3] =
    [(DesignKind::CmpTest, 11), (DesignKind::Fpga, 12), (DesignKind::RiscV, 13)];

/// Process parameters at an FFT-engaging radius (`>= FFT_MIN_RADIUS`), so
/// the Fast tier genuinely swaps the pad-convolution kernel.
fn fft_params() -> ProcessParams {
    ProcessParams {
        steps: 10,
        kernel_radius: FFT_MIN_RADIUS,
        character_length: 3.0,
        ..ProcessParams::default()
    }
}

fn untrained_network() -> CmpNeuralNetwork {
    let mut rng = StdRng::seed_from_u64(0xcafe);
    let unet = UNet::new(
        UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
        &mut rng,
    );
    CmpNeuralNetwork::new(
        unet,
        HeightNorm::default(),
        ExtractionConfig::default(),
        CmpNnConfig::default(),
    )
}

/// A mid-slack fill vector (30% of every window's capacity).
fn mid_fill(layout: &Layout) -> Vec<f64> {
    layout.slack_vector().into_iter().map(|s| 0.3 * s).collect()
}

/// `S_plan` and `∇S_plan` through the surrogate: the Fast tier (FMA GEMM)
/// agrees with Exact within a stated tolerance, is bit-deterministic
/// across GEMM thread counts, and Exact itself is bitwise thread-stable
/// (its contract, re-pinned here end to end through the network).
///
/// Stated tolerances (f32 forward/backward, tiny UNet):
/// score |Δ| ≤ 1e-4 · (|S_exact| + 1); gradient per element
/// |Δ| ≤ 1e-3 · (‖∇‖∞ + 1e-9).
#[test]
fn s_plan_and_gradient_agree_between_tiers_at_all_thread_counts() {
    let _guard = tier_lock();
    let net = untrained_network();
    let layout = DesignSpec::new(DesignKind::CmpTest, 8, 8, 5).generate();
    let sim = CmpSimulator::new(fft_params()).unwrap();
    let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
    let x = mid_fill(&layout);

    let mut per_tier = Vec::new();
    for tier in [NumericsTier::Exact, NumericsTier::Fast] {
        set_numerics_tier(tier);
        let mut evals = Vec::new();
        for threads in [1usize, 8] {
            set_gemm_threads(threads);
            evals.push(net.planarity(&layout, &x, &coeffs).unwrap());
        }
        let (one, eight) = (&evals[0], &evals[1]);
        assert_eq!(one.score.to_bits(), eight.score.to_bits(), "{tier}: S_plan depends on threads");
        for (a, b) in one.gradient.iter().zip(&eight.gradient) {
            assert_eq!(a.to_bits(), b.to_bits(), "{tier}: ∇S_plan depends on threads");
        }
        per_tier.push(evals.remove(0));
    }
    let (exact, fast) = (&per_tier[0], &per_tier[1]);
    assert!(
        (exact.score - fast.score).abs() <= 1e-4 * (exact.score.abs() + 1.0),
        "S_plan drifted: exact={} fast={}",
        exact.score,
        fast.score
    );
    let ginf = exact.gradient.iter().fold(0.0f64, |m, g| m.max(g.abs()));
    for (i, (a, b)) in exact.gradient.iter().zip(&fast.gradient).enumerate() {
        assert!(
            (a - b).abs() <= 1e-3 * (ginf + 1e-9),
            "∇S_plan[{i}] drifted: exact={a} fast={b} (‖∇‖∞={ginf})"
        );
    }
}

/// Simulator-side numeric gradients (the conventional-flow machinery the
/// paper replaces): finite differences of post-CMP ΔH w.r.t. the fill
/// vector agree between tiers. Per-evaluation tier drift is ≤ 2e-5 on
/// heights (see the cmpsim tier suite), so with ε = 1e-2 the forward
/// difference inherits ≤ 4e-3; stated bound 1e-2 per element.
#[test]
fn numeric_gradients_agree_between_tiers() {
    let layout = DesignSpec::new(DesignKind::Fpga, 6, 6, 9).generate();
    let params = fft_params();
    let spec = DummySpec::default();
    let x = mid_fill(&layout);
    let fd = FiniteDifference::new(1e-2, 1);
    let mut grads = Vec::new();
    for tier in [NumericsTier::Exact, NumericsTier::Fast] {
        let sim = CmpSimulator::new(params.clone()).unwrap().with_numerics(tier);
        let f = |x: &[f64]| {
            let mut plan = FillPlan::zeros(&layout);
            plan.as_mut_slice().copy_from_slice(x);
            sim.simulate(&apply_fill(&layout, &plan, &spec)).max_height_range()
        };
        grads.push(fd.gradient_seq(&x, f));
    }
    for (i, (a, b)) in grads[0].iter().zip(&grads[1]).enumerate() {
        assert!((a - b).abs() <= 1e-2, "FD gradient[{i}] drifted: exact={a} fast={b}");
    }
}

/// Contact reference plane on real simulated height fields: the sorted
/// solver (Fast default) tracks the exact solver to bisection tolerance
/// (stated bound 1e-6 on `z_ref`).
#[test]
fn contact_plane_agrees_between_solvers_on_simulated_heights() {
    let params = fft_params();
    for (kind, seed) in DESIGNS {
        let layout = DesignSpec::new(kind, 12, 12, seed).generate();
        let profile = CmpSimulator::new(params.clone()).unwrap().simulate(&layout);
        for l in 0..profile.num_layers() {
            let heights = profile.layer(l).heights();
            let exact = solve_reference_plane(heights, &params);
            let sorted = solve_reference_plane_sorted(heights, &params);
            assert!(
                (exact - sorted).abs() <= 1e-6,
                "{kind:?} layer {l}: z_ref exact={exact} sorted={sorted}"
            );
        }
    }
}

/// End-to-end flow on designs A/B/C with one shared pre-trained network:
/// the Fast tier's synthesized fill amounts and verified post-CMP ΔH
/// track the Exact tier's, and the Fast flow itself is bit-deterministic
/// across GEMM thread counts.
///
/// Stated tolerances (the synthesis optimizer re-converges from perturbed
/// iterates, so these are flow-level, not kernel-level, bounds): total
/// fill within 2% + 1 window-unit; per-design ΔH within 5% + 0.5 nm.
#[test]
fn flow_fill_amounts_and_delta_h_agree_between_tiers_on_designs_abc() {
    let _guard = tier_lock();
    let grid = 8;
    let base = FlowConfig {
        process: fft_params(),
        surrogate: SurrogateConfig {
            unet: UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
            train: TrainConfig {
                epochs: 2,
                batch_size: 4,
                lr: 2e-3,
                lr_decay: 1.0,
                ..TrainConfig::default()
            },
            num_layouts: 6,
            datagen: DataGenConfig { rows: grid, cols: grid, seed: 1, ..DataGenConfig::default() },
            ..SurrogateConfig::default()
        },
        beta_time_s: 60.0,
        seed: 1,
        ..FlowConfig::default()
    };
    // Train once, under the Exact tier, and share the network.
    set_numerics_tier(NumericsTier::Exact);
    set_gemm_threads(1);
    let trained = FillingFlow::prepare(&benchmark_designs(grid, grid, 1), base.clone()).unwrap();
    let network = trained.shared_network();

    for (kind, seed) in DESIGNS {
        let layout = DesignSpec::new(kind, grid, grid, seed).generate();
        let mut results = Vec::new();
        for tier in [NumericsTier::Exact, NumericsTier::Fast] {
            set_numerics_tier(tier);
            set_gemm_threads(1);
            let config = FlowConfig { numerics: tier, ..base.clone() };
            let flow = FillingFlow::with_network(network.clone(), config).unwrap();
            let result = flow.run(&layout).unwrap();
            if tier.is_fast() {
                // Fast is bit-deterministic across GEMM thread counts.
                set_gemm_threads(8);
                let redo = flow.run(&layout).unwrap();
                assert_eq!(
                    result.plan.as_slice(),
                    redo.plan.as_slice(),
                    "{kind:?}: Fast flow depends on GEMM threads"
                );
            }
            results.push(result);
        }
        let (exact, fast) = (&results[0], &results[1]);
        let (te, tf) = (exact.plan.total(), fast.plan.total());
        assert!((te - tf).abs() <= 0.02 * te + 1.0, "{kind:?}: fill total drifted: {te} vs {tf}");
        let (he, hf) = (exact.scored.delta_h_angstrom, fast.scored.delta_h_angstrom);
        assert!((he - hf).abs() <= 0.05 * he.abs() + 0.5, "{kind:?}: ΔH drifted: {he} vs {hf}");
    }
}

/// Calibrates a network on the real extraction planes of mid-filled
/// designs A/B/C — the same distribution every quant certification below
/// scores, so the int8 activation rails are in-distribution.
fn with_abc_calibration(net: CmpNeuralNetwork, grid: usize) -> CmpNeuralNetwork {
    let spec = DummySpec::default();
    let mut samples = Vec::new();
    for (kind, seed) in DESIGNS {
        let layout = DesignSpec::new(kind, grid, grid, seed).generate();
        let mut plan = FillPlan::zeros(&layout);
        plan.as_mut_slice().copy_from_slice(&mid_fill(&layout));
        let filled = apply_fill(&layout, &plan, &spec);
        for l in 0..filled.num_layers() {
            let planes = extract_layer_arrays(&filled, l, net.extraction());
            let &[c, h, w] = planes.shape() else { unreachable!("extraction is rank 3") };
            samples.push(planes.reshape(&[1, c, h, w]).unwrap());
        }
    }
    let scales = calibrate(net.unet(), &samples).unwrap();
    net.with_calibration(scales)
}

/// `S_plan` through the score-only inference seam: the int8 `QuantCpu`
/// backend tracks the f32 score within 1e-3 relative on designs A/B/C
/// and is bit-deterministic across GEMM thread counts (stated bound:
/// |Δ| ≤ 1e-3 · (|S_cpu| + 1)).
#[test]
fn quant_backend_s_plan_tracks_f32_on_designs_abc() {
    let _guard = tier_lock();
    let net = with_abc_calibration(untrained_network(), 8);
    let sim = CmpSimulator::new(fft_params()).unwrap();
    for (kind, seed) in DESIGNS {
        let layout = DesignSpec::new(kind, 8, 8, seed).generate();
        let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
        let x = mid_fill(&layout);
        set_backend(BackendKind::Cpu);
        let cpu = net.planarity_score(&layout, &x, &coeffs).unwrap();
        set_backend(BackendKind::QuantCpu);
        let mut scores = Vec::new();
        for threads in [1usize, 8] {
            set_gemm_threads(threads);
            scores.push(net.planarity_score(&layout, &x, &coeffs).unwrap());
        }
        assert_eq!(
            scores[0].to_bits(),
            scores[1].to_bits(),
            "{kind:?}: quant S_plan depends on GEMM threads"
        );
        assert!(
            (cpu - scores[0]).abs() <= 1e-3 * (cpu.abs() + 1.0),
            "{kind:?}: quant S_plan drifted: cpu={cpu} quant={}",
            scores[0]
        );
    }
}

/// The gradient path is *defined* to stay on f32 autograd under every
/// backend — synthesis descends the same surface regardless of how
/// candidates are scored. Certify the strongest form: `planarity` (score
/// + gradient) under `QuantCpu` is bit-identical to `Cpu`.
#[test]
fn quant_backend_leaves_gradient_path_bit_identical() {
    let _guard = tier_lock();
    let net = with_abc_calibration(untrained_network(), 8);
    let layout = DesignSpec::new(DesignKind::CmpTest, 8, 8, 5).generate();
    let sim = CmpSimulator::new(fft_params()).unwrap();
    let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
    let x = mid_fill(&layout);

    set_backend(BackendKind::Cpu);
    let cpu = net.planarity(&layout, &x, &coeffs).unwrap();
    set_backend(BackendKind::QuantCpu);
    let quant = net.planarity(&layout, &x, &coeffs).unwrap();
    assert_eq!(cpu.score.to_bits(), quant.score.to_bits(), "gradient-path score perturbed");
    for (i, (a, b)) in cpu.gradient.iter().zip(&quant.gradient).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "∇S_plan[{i}] perturbed by the quant backend");
    }
}

/// End-to-end flow on designs A/B/C with one shared trained + calibrated
/// network: the `QuantCpu` backend's synthesized fill amounts and
/// verified post-CMP ΔH track the f32 `Cpu` backend's, and the quant
/// flow is bit-deterministic across GEMM thread counts.
///
/// Stated tolerances (flow-level — the optimizer re-converges from
/// perturbed scores): total fill within 2% + 1 window-unit; per-design
/// ΔH within 5% + 0.5 nm — the same bars the Fast tier certifies.
#[test]
fn flow_fill_amounts_and_delta_h_agree_between_backends_on_designs_abc() {
    let _guard = tier_lock();
    let grid = 8;
    let base = FlowConfig {
        process: fft_params(),
        surrogate: SurrogateConfig {
            unet: UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
            train: TrainConfig {
                epochs: 2,
                batch_size: 4,
                lr: 2e-3,
                lr_decay: 1.0,
                ..TrainConfig::default()
            },
            num_layouts: 6,
            datagen: DataGenConfig { rows: grid, cols: grid, seed: 1, ..DataGenConfig::default() },
            ..SurrogateConfig::default()
        },
        beta_time_s: 60.0,
        seed: 1,
        ..FlowConfig::default()
    };
    // Train once on the f32 backend, then calibrate the shared network.
    set_numerics_tier(NumericsTier::Exact);
    set_backend(BackendKind::Cpu);
    set_gemm_threads(1);
    let trained = FillingFlow::prepare(&benchmark_designs(grid, grid, 1), base.clone()).unwrap();
    let shared = trained.shared_network();
    drop(trained);
    let owned = Rc::try_unwrap(shared).expect("network is uniquely held after the flow drops");
    let network = Rc::new(with_abc_calibration(owned, grid));

    for (kind, seed) in DESIGNS {
        let layout = DesignSpec::new(kind, grid, grid, seed).generate();
        let mut results = Vec::new();
        for backend in [BackendKind::Cpu, BackendKind::QuantCpu] {
            set_backend(backend);
            set_gemm_threads(1);
            let config = FlowConfig { backend, ..base.clone() };
            let flow = FillingFlow::with_network(Rc::clone(&network), config).unwrap();
            let result = flow.run(&layout).unwrap();
            if backend.is_quant() {
                // Quant is bit-deterministic across GEMM thread counts.
                set_gemm_threads(8);
                let redo = flow.run(&layout).unwrap();
                assert_eq!(
                    result.plan.as_slice(),
                    redo.plan.as_slice(),
                    "{kind:?}: quant flow depends on GEMM threads"
                );
            }
            results.push(result);
        }
        let (cpu, quant) = (&results[0], &results[1]);
        let (tc, tq) = (cpu.plan.total(), quant.plan.total());
        assert!((tc - tq).abs() <= 0.02 * tc + 1.0, "{kind:?}: fill total drifted: {tc} vs {tq}");
        let (hc, hq) = (cpu.scored.delta_h_angstrom, quant.scored.delta_h_angstrom);
        assert!((hc - hq).abs() <= 0.05 * hc.abs() + 0.5, "{kind:?}: ΔH drifted: {hc} vs {hq}");
    }
}
