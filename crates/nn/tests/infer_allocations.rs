//! Pins the steady-state allocation behaviour of `Module::infer`.
//!
//! The batched inference path used to allocate a fresh im2col patch
//! matrix — the largest transient of the whole forward — per convolution
//! per call. With the thread-local scratch in `neurfill-tensor`, repeated
//! `infer` calls at the same shape must allocate strictly less than the
//! first (cold) call and settle to an exact per-call count: call 2 and
//! call 3 allocate the same number of blocks.
//!
//! A counting `#[global_allocator]` keeps this honest; the test must be
//! the only one in this binary so no other test's allocations interleave.

use neurfill_nn::{Module, UNet, UNetConfig};
use neurfill_tensor::NdArray;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn batched_infer_allocations_reach_a_steady_state() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xa110c);
    let net =
        UNet::new(UNetConfig { in_channels: 6, out_channels: 1, base_channels: 8, depth: 2 }, &mut rng);
    net.set_training(false);
    let x = NdArray::from_fn(&[8, 6, 32, 32], |i| (i as f32 * 0.13).sin());

    // Cold call: grows the thread-local im2col scratch to the high-water
    // mark for this shape.
    let cold = allocations_during(|| {
        net.infer(&x).unwrap();
    });
    // Warm calls: the scratch is reused, so the per-call count must drop
    // below the cold call and be exactly repeatable.
    let warm1 = allocations_during(|| {
        net.infer(&x).unwrap();
    });
    let warm2 = allocations_during(|| {
        net.infer(&x).unwrap();
    });
    assert_eq!(warm1, warm2, "infer allocation count must be steady across warm calls");
    assert!(
        warm1 < cold,
        "warm infer must allocate less than the cold call (cold {cold}, warm {warm1})"
    );
}
