//! Training integration tests: the UNet must actually *learn* function
//! families of the kind the CMP surrogate faces.

use neurfill_nn::{fit, Dataset, Module, TrainConfig, UNet, UNetConfig};
use neurfill_tensor::{conv2d_forward, NdArray, Tensor};
use rand::{Rng, SeedableRng};

/// Builds a dataset whose targets are a fixed local stencil of the input —
/// a linear, spatially local map like the CMP kernel smoothing.
fn stencil_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Fixed 3x3 averaging stencil.
    let w = NdArray::full(&[1, 2, 3, 3], 1.0 / 3.0);
    let mut ds = Dataset::new();
    for _ in 0..n {
        let x = NdArray::from_fn(&[2, 8, 8], |_| rng.gen_range(-1.0..1.0));
        let x4 = x.reshape(&[1, 2, 8, 8]).unwrap();
        let y = conv2d_forward(&x4, &w, None, 1, 1).unwrap();
        ds.push(x, y.reshape(&[1, 8, 8]).unwrap()).unwrap();
    }
    ds
}

#[test]
fn unet_learns_local_linear_stencil() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let net =
        UNet::new(UNetConfig { in_channels: 2, out_channels: 1, base_channels: 4, depth: 1 }, &mut rng);
    let mut train = stencil_dataset(48, 1);
    let val = train.split_off(8);
    let cfg =
        TrainConfig { epochs: 120, batch_size: 8, lr: 5e-3, lr_decay: 0.98, ..TrainConfig::default() };
    let history = fit(&net, &train, Some(&val), &cfg, &mut rng, |_| true).unwrap();
    let first = history.first().unwrap().val_loss.unwrap();
    let last = history.last().unwrap().val_loss.unwrap();
    assert!(last < 0.3 * first, "validation loss should drop substantially: {first} -> {last}");
}

#[test]
fn trained_network_generalizes_to_fresh_inputs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let net =
        UNet::new(UNetConfig { in_channels: 2, out_channels: 1, base_channels: 4, depth: 1 }, &mut rng);
    let train = stencil_dataset(48, 3);
    let cfg =
        TrainConfig { epochs: 120, batch_size: 8, lr: 5e-3, lr_decay: 0.98, ..TrainConfig::default() };
    fit(&net, &train, None, &cfg, &mut rng, |_| true).unwrap();

    // Fresh data from a different seed.
    let test = stencil_dataset(8, 99);
    let err = neurfill_nn::evaluate(&net, &test, 4).unwrap();
    net.set_training(false);
    assert!(err < 0.25, "generalization MSE {err}");
}

#[test]
fn r2_of_trained_surrogate_style_model_is_high() {
    // Same seeds as the generalization test above (some inits train slower
    // within the small epoch budget these tests can afford).
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let net =
        UNet::new(UNetConfig { in_channels: 2, out_channels: 1, base_channels: 4, depth: 1 }, &mut rng);
    let train = stencil_dataset(48, 3);
    let cfg =
        TrainConfig { epochs: 120, batch_size: 8, lr: 5e-3, lr_decay: 0.98, ..TrainConfig::default() };
    fit(&net, &train, None, &cfg, &mut rng, |_| true).unwrap();
    net.set_training(false);

    let test = stencil_dataset(6, 123);
    let mut preds = Vec::new();
    let mut targets = Vec::new();
    for i in 0..test.len() {
        let (x, y) = test.sample(i);
        let out = net.forward(&Tensor::constant(x.reshape(&[1, 2, 8, 8]).unwrap())).unwrap().value();
        preds.extend_from_slice(out.as_slice());
        targets.extend_from_slice(y.as_slice());
    }
    let r2 =
        neurfill_nn::metrics::r2_score(&NdArray::from_slice(&preds), &NdArray::from_slice(&targets))
            .unwrap();
    assert!(r2 > 0.7, "R² = {r2}");
}
