//! Property-based tests of the NN layer stack: shape contracts,
//! serialization round-trips and training-mode invariants under random
//! configurations.

use neurfill_nn::layers::{BatchNorm2d, Conv2d, GroupNorm};
use neurfill_nn::{serialize, Module, UNet, UNetConfig};
use neurfill_tensor::{NdArray, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn conv_output_shapes_match_formula(
        in_c in 1usize..4,
        out_c in 1usize..5,
        k in prop_oneof![Just(1usize), Just(3), Just(5)],
        seed in 0u64..100,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pad = k / 2;
        let conv = Conv2d::new(in_c, out_c, k, 1, pad, &mut rng);
        let x = Tensor::constant(NdArray::zeros(&[2, in_c, 8, 8]));
        let y = conv.forward(&x).unwrap();
        // Same-padding convs preserve spatial extent.
        prop_assert_eq!(y.shape(), vec![2, out_c, 8, 8]);
        prop_assert_eq!(conv.num_parameters(), out_c * in_c * k * k + out_c);
    }

    #[test]
    fn unet_roundtrips_through_serialization(
        base in 2usize..5,
        depth in 1usize..3,
        seed in 0u64..50,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = UNetConfig { in_channels: 3, out_channels: 1, base_channels: base, depth };
        let a = UNet::new(cfg.clone(), &mut rng);
        let b = UNet::new(cfg, &mut rng);
        let mut buf = Vec::new();
        serialize::save_parameters(&a, &mut buf).unwrap();
        serialize::load_parameters(&b, buf.as_slice()).unwrap();
        a.set_training(false);
        b.set_training(false);
        let extent = 1usize << (depth + 1);
        let x = Tensor::constant(NdArray::from_fn(&[1, 3, extent, extent], |i| (i % 5) as f32));
        prop_assert_eq!(a.forward(&x).unwrap().value(), b.forward(&x).unwrap().value());
    }

    #[test]
    fn batch_norm_eval_is_affine_in_input(scale in 0.5f32..3.0, seed in 0u64..20) {
        // In eval mode BN is an affine map: f(s·x) − f(0) = s·(f(x) − f(0)).
        let _ = seed;
        let bn = BatchNorm2d::new(1);
        bn.set_training(false);
        let x = Tensor::constant(NdArray::from_fn(&[1, 1, 2, 2], |i| i as f32));
        let zero = Tensor::constant(NdArray::zeros(&[1, 1, 2, 2]));
        let fx = bn.forward(&x).unwrap().value();
        let f0 = bn.forward(&zero).unwrap().value();
        let fsx = bn.forward(&x.scale(scale)).unwrap().value();
        for i in 0..4 {
            let lhs = fsx.as_slice()[i] - f0.as_slice()[i];
            let rhs = scale * (fx.as_slice()[i] - f0.as_slice()[i]);
            prop_assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn group_norm_is_scale_invariant(scale in 0.5f32..4.0) {
        // GroupNorm(s·x) == GroupNorm(x) for s > 0 (mean/std normalize s
        // away; gamma = 1, beta = 0 at init).
        let gn = GroupNorm::new(1, 2);
        let x = Tensor::constant(NdArray::from_fn(&[1, 2, 2, 2], |i| i as f32 - 3.0));
        let a = gn.forward(&x).unwrap().value();
        let b = gn.forward(&x.scale(scale)).unwrap().value();
        for (va, vb) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((va - vb).abs() < 1e-3, "{va} vs {vb}");
        }
    }
}
