//! Byte-determinism of UNet forward + backward across GEMM thread counts.
//!
//! All network linear algebra funnels through the blocked GEMM layer in
//! `neurfill-tensor`; its contract is that the thread count never changes
//! a bit. This test drives that contract end to end through a real UNet:
//! output, loss and every parameter gradient must be byte-identical at
//! 1, 2 and 8 threads. The batch is sized so the larger conv GEMMs cross
//! the threading work threshold and the parallel path genuinely runs.

use neurfill_nn::{Module, UNet, UNetConfig};
use neurfill_tensor::kernels::set_gemm_threads;
use neurfill_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn unet_forward_backward_bytes_identical_across_thread_counts() {
    let cfg = UNetConfig { in_channels: 4, out_channels: 1, base_channels: 8, depth: 2 };
    let (batch, h, w) = (32usize, 16usize, 16usize);

    let run = |threads: usize| -> Vec<u32> {
        set_gemm_threads(threads);
        // Rebuild network and input from the same seed per run so the
        // only varying factor is the GEMM thread count.
        let mut rng = StdRng::seed_from_u64(1234);
        let net = UNet::new(cfg.clone(), &mut rng);
        let data: Vec<f32> =
            (0..batch * cfg.in_channels * h * w).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let x = Tensor::constant(NdArray::from_vec(data, &[batch, cfg.in_channels, h, w]).unwrap());
        let y = net.forward(&x).unwrap();
        let loss = y.mul(&y).unwrap().mean();
        loss.backward().unwrap();
        let mut bytes: Vec<u32> = y.value().as_slice().iter().map(|v| v.to_bits()).collect();
        bytes.push(loss.item().to_bits());
        for p in net.parameters() {
            let g = p.grad().expect("parameter gradient");
            bytes.extend(g.as_slice().iter().map(|v| v.to_bits()));
        }
        bytes
    };

    let t1 = run(1);
    let t2 = run(2);
    let t8 = run(8);
    set_gemm_threads(0);
    assert_eq!(t1, t2, "UNet bytes differ between 1 and 2 GEMM threads");
    assert_eq!(t1, t8, "UNet bytes differ between 1 and 8 GEMM threads");
}
