//! Multi-sample (batched) evaluation of a module.
//!
//! Every conv/norm/pool layer in this crate already treats the leading
//! tensor dimension as a sample axis, so a batch of `B` independent
//! single-sample forwards can be answered by ONE `[B, C, H, W]` forward.
//! Per-sample results are bit-identical to single-sample forwards — the
//! conv kernels process each batch element independently and batch-norm
//! runs on frozen running statistics in eval mode — which is what lets the
//! batch-synthesis runtime coalesce inference from concurrent jobs without
//! perturbing their results.

use crate::module::Module;
#[cfg(test)]
use neurfill_tensor::Tensor;
use neurfill_tensor::{NdArray, Result, TensorError};

/// Stacks rank-3 `[C, H, W]` samples into one rank-4 `[B, C, H, W]` array.
///
/// # Errors
///
/// Returns an error when `samples` is empty, a sample is not rank 3, or
/// shapes disagree.
pub fn stack_samples(samples: &[NdArray]) -> Result<NdArray> {
    let first = samples
        .first()
        .ok_or_else(|| TensorError::InvalidArgument("cannot stack an empty batch".into()))?;
    if first.rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: first.rank(), op: "stack" });
    }
    let mut data = Vec::with_capacity(samples.len() * first.numel());
    for s in samples {
        if s.shape() != first.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: first.shape().to_vec(),
                rhs: s.shape().to_vec(),
                op: "stack",
            });
        }
        data.extend_from_slice(s.as_slice());
    }
    let mut shape = vec![samples.len()];
    shape.extend_from_slice(first.shape());
    NdArray::from_vec(data, &shape)
}

/// Splits a rank-4 `[B, C, H, W]` array back into `B` rank-3 samples.
///
/// # Errors
///
/// Returns an error when `batch` is not rank 4.
pub fn unstack_samples(batch: &NdArray) -> Result<Vec<NdArray>> {
    let shape = batch.shape();
    if shape.len() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: shape.len(), op: "unstack" });
    }
    let (b, per) = (shape[0], shape[1] * shape[2] * shape[3]);
    let sample_shape = &shape[1..];
    (0..b)
        .map(|i| NdArray::from_vec(batch.as_slice()[i * per..(i + 1) * per].to_vec(), sample_shape))
        .collect()
}

/// Evaluates `module` on all `samples` in a single multi-sample forward
/// pass and returns the per-sample outputs.
///
/// This is the batched-eval entry point used by the surrogate's
/// whole-profile prediction and by the batch runtime's inference server.
/// It runs the module's [`Module::infer`] fast path — no autograd graph,
/// fused normalization, and one batched conv GEMM — so for `B` samples it
/// replaces `B` standard forward passes with one cheaper multi-sample
/// evaluation, while staying bit-identical to them.
///
/// # Errors
///
/// Propagates stacking errors and module shape errors.
pub fn forward_batched<M: Module + ?Sized>(module: &M, samples: &[NdArray]) -> Result<Vec<NdArray>> {
    let out = module.infer(&stack_samples(samples)?)?;
    unstack_samples(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unet::{UNet, UNetConfig};
    use rand::SeedableRng;

    fn unet() -> UNet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let net = UNet::new(
            UNetConfig { in_channels: 3, out_channels: 1, base_channels: 4, depth: 2 },
            &mut rng,
        );
        net.set_training(false);
        net
    }

    fn sample(seed: usize) -> NdArray {
        NdArray::from_fn(&[3, 8, 8], |i| ((i * 31 + seed * 97) % 17) as f32 * 0.1 - 0.8)
    }

    #[test]
    fn stack_unstack_roundtrip() {
        let samples: Vec<NdArray> = (0..5).map(sample).collect();
        let batch = stack_samples(&samples).unwrap();
        assert_eq!(batch.shape(), &[5, 3, 8, 8]);
        let back = unstack_samples(&batch).unwrap();
        assert_eq!(back, samples);
    }

    #[test]
    fn stack_rejects_bad_inputs() {
        assert!(stack_samples(&[]).is_err());
        assert!(stack_samples(&[NdArray::zeros(&[3, 8])]).is_err());
        let mixed = [NdArray::zeros(&[3, 8, 8]), NdArray::zeros(&[3, 4, 4])];
        assert!(stack_samples(&mixed).is_err());
    }

    #[test]
    fn batched_forward_is_bit_identical_to_singles() {
        let net = unet();
        let samples: Vec<NdArray> = (0..8).map(sample).collect();
        let batched = forward_batched(&net, &samples).unwrap();
        assert_eq!(batched.len(), 8);
        for (s, b) in samples.iter().zip(&batched) {
            // Against both the batch path at B = 1 and the standard
            // autograd forward: the infer fast path must not change bits.
            let single = forward_batched(&net, std::slice::from_ref(s)).unwrap();
            assert_eq!(&single[0], b, "batched output must match single-sample output");
            let forward = net
                .forward(&Tensor::constant(stack_samples(std::slice::from_ref(s)).unwrap()))
                .unwrap()
                .value();
            assert_eq!(&unstack_samples(&forward).unwrap()[0], b, "infer must match forward");
        }
    }
}
