//! Loss functions and regression accuracy metrics.

use neurfill_tensor::{NdArray, Result, Tensor};

/// Mean-squared-error loss: the paper's pre-training objective (Eq. 20)
/// up to the configurable `λ` factor.
///
/// # Errors
///
/// Returns an error when shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> Result<Tensor> {
    Ok(pred.sub(target)?.square().mean())
}

/// Mean-absolute-error loss.
///
/// # Errors
///
/// Returns an error when shapes differ.
pub fn l1_loss(pred: &Tensor, target: &Tensor) -> Result<Tensor> {
    Ok(pred.sub(target)?.abs().mean())
}

/// Mean relative error `mean(|pred − target| / |target|)`, the accuracy
/// metric of the paper's §V-A (Fig. 9). Entries with `|target| < floor`
/// are compared against `floor` to avoid division blow-ups.
///
/// # Errors
///
/// Returns an error when shapes differ.
pub fn mean_relative_error(pred: &NdArray, target: &NdArray, floor: f32) -> Result<f32> {
    let diff = pred.sub(target)?;
    let mut acc = 0.0;
    for (d, t) in diff.as_slice().iter().zip(target.as_slice()) {
        acc += d.abs() / t.abs().max(floor);
    }
    Ok(acc / diff.numel().max(1) as f32)
}

/// Per-element relative errors (for error-distribution histograms).
///
/// # Errors
///
/// Returns an error when shapes differ.
pub fn relative_errors(pred: &NdArray, target: &NdArray, floor: f32) -> Result<Vec<f32>> {
    let diff = pred.sub(target)?;
    Ok(diff
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(d, t)| d.abs() / t.abs().max(floor))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let a = Tensor::constant(NdArray::from_slice(&[1.0, 2.0]));
        assert_eq!(mse_loss(&a, &a).unwrap().item(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = Tensor::constant(NdArray::from_slice(&[0.0, 0.0]));
        let b = Tensor::constant(NdArray::from_slice(&[2.0, 4.0]));
        assert_eq!(mse_loss(&a, &b).unwrap().item(), 10.0);
    }

    #[test]
    fn l1_known_value() {
        let a = Tensor::constant(NdArray::from_slice(&[1.0, -1.0]));
        let b = Tensor::constant(NdArray::from_slice(&[0.0, 0.0]));
        assert_eq!(l1_loss(&a, &b).unwrap().item(), 1.0);
    }

    #[test]
    fn mse_is_differentiable() {
        let p = Tensor::parameter(NdArray::from_slice(&[1.0, 3.0]));
        let t = Tensor::constant(NdArray::from_slice(&[0.0, 0.0]));
        mse_loss(&p, &t).unwrap().backward().unwrap();
        assert_eq!(p.grad().unwrap().as_slice(), &[1.0, 3.0]); // 2(p−t)/n
    }

    #[test]
    fn relative_error_metric() {
        let pred = NdArray::from_slice(&[1.1, 1.9]);
        let tgt = NdArray::from_slice(&[1.0, 2.0]);
        let e = mean_relative_error(&pred, &tgt, 1e-6).unwrap();
        assert!((e - 0.075).abs() < 1e-5, "{e}");
        let per = relative_errors(&pred, &tgt, 1e-6).unwrap();
        assert_eq!(per.len(), 2);
    }

    #[test]
    fn relative_error_floor_guards_small_targets() {
        let pred = NdArray::from_slice(&[1.0]);
        let tgt = NdArray::from_slice(&[0.0]);
        let e = mean_relative_error(&pred, &tgt, 0.5).unwrap();
        assert_eq!(e, 2.0);
    }
}
