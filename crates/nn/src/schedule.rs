//! Learning-rate schedules.

/// A learning-rate schedule mapping epoch index to a multiplier of the
/// base learning rate.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `factor` every `every` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative factor applied at each decay (usually < 1).
        factor: f64,
    },
    /// Cosine annealing from 1 to `floor` over `total_epochs`.
    Cosine {
        /// Total number of epochs the schedule spans.
        total_epochs: usize,
        /// Final multiplier at the end of the schedule.
        floor: f64,
    },
    /// Linear warmup to the base rate over `epochs`, then the inner
    /// schedule (shifted so its epoch 0 is the first post-warmup epoch).
    ///
    /// Epoch `e < epochs` runs at `base · (e + 1) / epochs`, so the first
    /// epoch is already non-zero and the ramp reaches the full base rate on
    /// the first epoch after warmup.
    Warmup {
        /// Number of warmup epochs.
        epochs: usize,
        /// Schedule applied after the warmup.
        then: Box<LrSchedule>,
    },
}

impl LrSchedule {
    /// Learning rate at `epoch` given the base rate.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when schedule parameters are degenerate.
    #[must_use]
    pub fn lr_at(&self, epoch: usize, base_lr: f64) -> f64 {
        match self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                debug_assert!(*every > 0);
                base_lr * factor.powi((epoch / every.max(&1)) as i32)
            }
            LrSchedule::Cosine { total_epochs, floor } => {
                debug_assert!(*total_epochs > 0);
                let t = (epoch as f64 / (*total_epochs).max(1) as f64).min(1.0);
                let cos = 0.5 * (1.0 + (std::f64::consts::PI * t).cos());
                base_lr * (floor + (1.0 - floor) * cos)
            }
            LrSchedule::Warmup { epochs, then } => {
                debug_assert!(*epochs > 0);
                if epoch < *epochs {
                    base_lr * (epoch + 1) as f64 / (*epochs).max(1) as f64
                } else {
                    then.lr_at(epoch - epochs, base_lr)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant;
        assert_eq!(s.lr_at(0, 0.1), 0.1);
        assert_eq!(s.lr_at(100, 0.1), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay { every: 10, factor: 0.5 };
        assert_eq!(s.lr_at(0, 1.0), 1.0);
        assert_eq!(s.lr_at(9, 1.0), 1.0);
        assert_eq!(s.lr_at(10, 1.0), 0.5);
        assert_eq!(s.lr_at(25, 1.0), 0.25);
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = LrSchedule::Warmup {
            epochs: 4,
            then: Box::new(LrSchedule::StepDecay { every: 2, factor: 0.5 }),
        };
        assert!((s.lr_at(0, 1.0) - 0.25).abs() < 1e-12);
        assert!((s.lr_at(3, 1.0) - 1.0).abs() < 1e-12);
        // Post-warmup epochs re-index the inner schedule from zero.
        assert!((s.lr_at(4, 1.0) - 1.0).abs() < 1e-12);
        assert!((s.lr_at(6, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cosine_starts_high_ends_at_floor() {
        let s = LrSchedule::Cosine { total_epochs: 100, floor: 0.1 };
        assert!((s.lr_at(0, 1.0) - 1.0).abs() < 1e-12);
        assert!((s.lr_at(100, 1.0) - 0.1).abs() < 1e-12);
        let mid = s.lr_at(50, 1.0);
        assert!(mid < 1.0 && mid > 0.1);
        // Monotone decreasing.
        let mut prev = f64::INFINITY;
        for e in 0..=100 {
            let lr = s.lr_at(e, 1.0);
            assert!(lr <= prev + 1e-12);
            prev = lr;
        }
    }
}
