//! First-order optimizers for network training.

use neurfill_tensor::{NdArray, Tensor};
use std::collections::HashMap;

/// A first-order optimizer over a fixed set of parameters.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored on the
    /// parameters, then leaves the gradients in place (call
    /// [`Optimizer::zero_grad`] or `Module::zero_grad` before the next
    /// backward pass).
    fn step(&mut self);

    /// Clears the gradients of all managed parameters.
    fn zero_grad(&self);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: HashMap<u64, NdArray>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    #[must_use]
    pub fn new(params: Vec<Tensor>, lr: f32, momentum: f32) -> Self {
        Self { params, lr, momentum, velocity: HashMap::new() }
    }

    /// Current learning rate.
    #[must_use]
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (e.g. for a decay schedule).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    // A moment buffer is created with its gradient's shape, so these adds
    // cannot mismatch — the expects assert an internal invariant.
    #[allow(clippy::expect_used)]
    fn step(&mut self) {
        for p in &self.params {
            let Some(g) = p.grad() else { continue };
            let update = if self.momentum > 0.0 {
                let v = self.velocity.entry(p.id()).or_insert_with(|| NdArray::zeros(g.shape()));
                *v = v.scale(self.momentum).add(&g).expect("matching shapes");
                v.clone()
            } else {
                g
            };
            p.update_data(|d| {
                *d = d.sub(&update.scale(self.lr)).expect("matching shapes");
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// A positional snapshot of an [`Adam`] optimizer's internal state.
///
/// Moments are stored in the order of the optimizer's parameter list (the
/// same order as `Module::parameters`), with `None` for parameters that
/// have not received a gradient yet — tensor ids are process-local, so
/// persistence must go through positions, not ids.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Number of steps taken (the bias-correction clock).
    pub t: u32,
    /// First-moment estimate per parameter, positionally.
    pub m: Vec<Option<NdArray>>,
    /// Second-moment estimate per parameter, positionally.
    pub v: Vec<Option<NdArray>>,
}

/// Adam optimizer (Kingma & Ba), the default for UNet pre-training.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: HashMap<u64, NdArray>,
    v: HashMap<u64, NdArray>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β/ε defaults.
    #[must_use]
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Self {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Current learning rate.
    #[must_use]
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Snapshots the optimizer state (step count and moments) positionally.
    #[must_use]
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.params.iter().map(|p| self.m.get(&p.id()).cloned()).collect(),
            v: self.params.iter().map(|p| self.v.get(&p.id()).cloned()).collect(),
        }
    }

    /// Restores a snapshot taken by [`Adam::export_state`].
    ///
    /// After this call the optimizer continues exactly where the snapshot
    /// was taken: the next [`Optimizer::step`] is bit-identical to the one
    /// an uninterrupted run would have made.
    ///
    /// # Errors
    ///
    /// Returns a message when the snapshot's parameter count or any moment
    /// shape disagrees with this optimizer's parameters.
    pub fn load_state(&mut self, state: AdamState) -> std::result::Result<(), String> {
        if state.m.len() != self.params.len() || state.v.len() != self.params.len() {
            return Err(format!(
                "adam state holds {} parameters but optimizer has {}",
                state.m.len(),
                self.params.len()
            ));
        }
        for moments in [&state.m, &state.v] {
            for (p, moment) in self.params.iter().zip(moments) {
                if let Some(arr) = moment {
                    if arr.shape() != p.shape() {
                        return Err(format!(
                            "adam moment shape {:?} != parameter shape {:?}",
                            arr.shape(),
                            p.shape()
                        ));
                    }
                }
            }
        }
        self.t = state.t;
        self.m.clear();
        self.v.clear();
        for (p, m) in self.params.iter().zip(state.m) {
            if let Some(arr) = m {
                self.m.insert(p.id(), arr);
            }
        }
        for (p, v) in self.params.iter().zip(state.v) {
            if let Some(arr) = v {
                self.v.insert(p.id(), arr);
            }
        }
        Ok(())
    }
}

impl Optimizer for Adam {
    // Moment buffers are created with their gradient's shape, so these
    // combines cannot mismatch — the expects assert an internal invariant.
    #[allow(clippy::expect_used)]
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &self.params {
            let Some(g) = p.grad() else { continue };
            let m = self.m.entry(p.id()).or_insert_with(|| NdArray::zeros(g.shape()));
            let v = self.v.entry(p.id()).or_insert_with(|| NdArray::zeros(g.shape()));
            *m = m.scale(self.beta1).add(&g.scale(1.0 - self.beta1)).expect("shapes");
            *v = v.scale(self.beta2).add(&g.map(|x| x * x).scale(1.0 - self.beta2)).expect("shapes");
            let m_hat = m.scale(1.0 / bc1);
            let v_hat = v.scale(1.0 / bc2);
            let eps = self.eps;
            let lr = self.lr;
            let update = m_hat.zip_with(&v_hat, |mh, vh| lr * mh / (vh.sqrt() + eps)).expect("shapes");
            p.update_data(|d| {
                *d = d.sub(&update).expect("shapes");
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

/// Clips the gradients of `params` so their *global* L2 norm does not
/// exceed `max_norm`, returning the pre-clip norm. Standard stabilization
/// for surrogate training on rough landscapes.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            sq += g.as_slice().iter().map(|v| v * v).sum::<f32>();
        }
    }
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.set_grad(g.scale(scale));
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = (w - 3)² and checks convergence.
    fn quadratic_descent<O: Optimizer>(make: impl Fn(Vec<Tensor>) -> O, steps: usize) -> f32 {
        let w = Tensor::parameter(NdArray::from_slice(&[0.0]));
        let mut opt = make(vec![w.clone()]);
        for _ in 0..steps {
            opt.zero_grad();
            let loss = w.add_scalar(-3.0).square().sum();
            loss.backward().unwrap();
            opt.step();
        }
        w.value().as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_descent(|p| Sgd::new(p, 0.1, 0.0), 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = quadratic_descent(|p| Sgd::new(p, 0.05, 0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_descent(|p| Adam::new(p, 0.2), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn clip_grad_norm_scales_large_gradients() {
        let a = Tensor::parameter(NdArray::from_slice(&[0.0]));
        let b = Tensor::parameter(NdArray::from_slice(&[0.0]));
        a.set_grad(NdArray::from_slice(&[3.0]));
        b.set_grad(NdArray::from_slice(&[4.0]));
        let norm = clip_grad_norm(&[a.clone(), b.clone()], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((a.grad().unwrap().as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((b.grad().unwrap().as_slice()[0] - 0.8).abs() < 1e-6);
        // Below the threshold, gradients stay untouched.
        let pre = clip_grad_norm(&[a.clone(), b.clone()], 10.0);
        assert!((pre - 1.0).abs() < 1e-6);
        assert!((a.grad().unwrap().as_slice()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_exactly() {
        // Two optimizers over identical parameter values: run A for 5 steps,
        // snapshot at step 3 into B, and check steps 4–5 agree bit-exactly.
        let run = |resume_at: Option<usize>| -> Vec<f32> {
            let w = Tensor::parameter(NdArray::from_slice(&[0.0, 1.0, -2.0]));
            let mut opt = Adam::new(vec![w.clone()], 0.1);
            let mut snapshot = None;
            for step in 0..5 {
                if Some(step) == resume_at {
                    let state = snapshot.take().expect("snapshot taken earlier");
                    let mut fresh = Adam::new(vec![w.clone()], 0.1);
                    fresh.load_state(state).unwrap();
                    opt = fresh;
                }
                opt.zero_grad();
                let loss = w.add_scalar(-3.0).square().sum();
                loss.backward().unwrap();
                opt.step();
                if step == 2 {
                    snapshot = Some(opt.export_state());
                }
            }
            w.value().as_slice().to_vec()
        };
        assert_eq!(run(None), run(Some(3)));
    }

    #[test]
    fn adam_load_state_rejects_mismatches() {
        let w = Tensor::parameter(NdArray::from_slice(&[0.0]));
        let mut opt = Adam::new(vec![w], 0.1);
        let bad_count = AdamState { t: 1, m: vec![], v: vec![] };
        assert!(opt.load_state(bad_count).is_err());
        let bad_shape =
            AdamState { t: 1, m: vec![Some(NdArray::zeros(&[2]))], v: vec![Some(NdArray::zeros(&[2]))] };
        assert!(opt.load_state(bad_shape).is_err());
    }

    #[test]
    fn step_without_grad_is_noop() {
        let w = Tensor::parameter(NdArray::from_slice(&[1.0]));
        let mut opt = Adam::new(vec![w.clone()], 0.1);
        opt.step();
        assert_eq!(w.value().as_slice(), &[1.0]);
    }
}
