//! The UNet surrogate architecture (paper §IV-A/F, Fig. 4).
//!
//! A configurable encoder–decoder with skip connections: a down-sampling
//! path captures neighbourhood features of the layout-parameter matrix `L`,
//! and an up-sampling path reconstructs the post-CMP height profile at the
//! original window resolution.

use crate::layers::{BatchNorm2d, Conv2d, ConvTranspose2d};
use crate::module::{Buffer, Module};
use neurfill_tensor::{max_pool2d_forward, NdArray, Result, Tensor, TensorError};
use rand::Rng;

/// Configuration of a [`UNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct UNetConfig {
    /// Number of input channels (layout-parameter planes of `L`).
    pub in_channels: usize,
    /// Number of output channels (1 for the height profile).
    pub out_channels: usize,
    /// Channel width of the first encoder stage; stage `d` uses
    /// `base_channels · 2^d`.
    pub base_channels: usize,
    /// Number of down/up-sampling stages. Input spatial extents must be
    /// divisible by `2^depth`.
    pub depth: usize,
}

impl Default for UNetConfig {
    fn default() -> Self {
        Self { in_channels: 6, out_channels: 1, base_channels: 8, depth: 2 }
    }
}

/// Two (conv 3×3 → batch-norm → ReLU) blocks.
#[derive(Debug)]
pub(crate) struct DoubleConv {
    pub(crate) conv1: Conv2d,
    pub(crate) bn1: BatchNorm2d,
    pub(crate) conv2: Conv2d,
    pub(crate) bn2: BatchNorm2d,
}

impl DoubleConv {
    fn new(in_c: usize, out_c: usize, rng: &mut impl Rng) -> Self {
        Self {
            conv1: Conv2d::new(in_c, out_c, 3, 1, 1, rng),
            bn1: BatchNorm2d::new(out_c),
            conv2: Conv2d::new(out_c, out_c, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(out_c),
        }
    }
}

impl Module for DoubleConv {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let x = self.bn1.forward(&self.conv1.forward(input)?)?.relu();
        Ok(self.bn2.forward(&self.conv2.forward(&x)?)?.relu())
    }
    fn infer(&self, input: &NdArray) -> Result<NdArray> {
        // The backend's relu_inplace is the same max(0) kernel
        // `Tensor::relu` applies, run in place to avoid a copy per block.
        let backend = neurfill_tensor::backend::active();
        let mut x = self.bn1.infer(&self.conv1.infer(input)?)?;
        backend.relu_inplace(&mut x);
        let mut y = self.bn2.infer(&self.conv2.infer(&x)?)?;
        backend.relu_inplace(&mut y);
        Ok(y)
    }
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.conv1.parameters();
        p.extend(self.bn1.parameters());
        p.extend(self.conv2.parameters());
        p.extend(self.bn2.parameters());
        p
    }
    fn buffers(&self) -> Vec<Buffer> {
        let mut b = self.bn1.buffers();
        b.extend(self.bn2.buffers());
        b
    }
    fn set_training(&self, training: bool) {
        self.bn1.set_training(training);
        self.bn2.set_training(training);
    }
}

/// The UNet surrogate replacing the full-chip CMP simulator.
///
/// # Examples
///
/// ```
/// use neurfill_nn::{UNet, UNetConfig, Module};
/// use neurfill_tensor::{NdArray, Tensor};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = UNet::new(UNetConfig { in_channels: 4, out_channels: 1, base_channels: 4, depth: 2 }, &mut rng);
/// let l = Tensor::constant(NdArray::zeros(&[1, 4, 16, 16]));
/// let h = net.forward(&l)?; // post-CMP height profile
/// assert_eq!(h.shape(), vec![1, 1, 16, 16]);
/// # Ok::<(), neurfill_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct UNet {
    config: UNetConfig,
    pub(crate) stem: DoubleConv,
    pub(crate) downs: Vec<DoubleConv>,
    pub(crate) ups: Vec<ConvTranspose2d>,
    pub(crate) up_convs: Vec<DoubleConv>,
    pub(crate) head: Conv2d,
}

impl UNet {
    /// Builds a UNet with randomly initialized weights.
    ///
    /// # Panics
    ///
    /// Panics when `depth`, `base_channels`, `in_channels` or
    /// `out_channels` is zero.
    #[must_use]
    pub fn new(config: UNetConfig, rng: &mut impl Rng) -> Self {
        assert!(config.depth > 0, "UNet depth must be >= 1");
        assert!(config.base_channels > 0, "UNet base_channels must be >= 1");
        assert!(config.in_channels > 0 && config.out_channels > 0);
        let b = config.base_channels;
        let stem = DoubleConv::new(config.in_channels, b, rng);
        let mut downs = Vec::with_capacity(config.depth);
        for d in 0..config.depth {
            downs.push(DoubleConv::new(b << d, b << (d + 1), rng));
        }
        let mut ups = Vec::with_capacity(config.depth);
        let mut up_convs = Vec::with_capacity(config.depth);
        for d in (0..config.depth).rev() {
            ups.push(ConvTranspose2d::new(b << (d + 1), b << d, 2, 2, 0, rng));
            up_convs.push(DoubleConv::new(b << (d + 1), b << d, rng));
        }
        let head = Conv2d::new(b, config.out_channels, 1, 1, 0, rng);
        Self { config, stem, downs, ups, up_convs, head }
    }

    /// The configuration this network was built with.
    #[must_use]
    pub fn config(&self) -> &UNetConfig {
        &self.config
    }

    pub(crate) fn check_input(&self, shape: &[usize]) -> Result<()> {
        if shape.len() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: shape.len(), op: "unet" });
        }
        if shape[1] != self.config.in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: shape.to_vec(),
                rhs: vec![shape[0], self.config.in_channels, shape[2], shape[3]],
                op: "unet",
            });
        }
        let div = 1usize << self.config.depth;
        if !shape[2].is_multiple_of(div) || !shape[3].is_multiple_of(div) {
            return Err(TensorError::InvalidArgument(format!(
                "UNet depth {} requires spatial extents divisible by {div}, got {}x{}",
                self.config.depth, shape[2], shape[3]
            )));
        }
        Ok(())
    }
}

impl Module for UNet {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(&input.shape())?;
        let mut skips = Vec::with_capacity(self.config.depth);
        let mut x = self.stem.forward(input)?;
        for down in &self.downs {
            skips.push(x.clone());
            x = down.forward(&x.max_pool2d(2, 2)?)?;
        }
        // One skip per up stage, consumed deepest-first.
        for ((up, up_conv), skip) in self.ups.iter().zip(&self.up_convs).zip(skips.into_iter().rev()) {
            let upsampled = up.forward(&x)?;
            let cat = Tensor::concat(&[skip, upsampled], 1)?;
            x = up_conv.forward(&cat)?;
        }
        self.head.forward(&x)
    }

    fn infer(&self, input: &NdArray) -> Result<NdArray> {
        // Same topology as `forward`, on the raw kernels the tensor ops
        // call internally — outputs are bit-identical, with no graph built.
        self.check_input(input.shape())?;
        let mut skips = Vec::with_capacity(self.config.depth);
        let mut x = self.stem.infer(input)?;
        for down in &self.downs {
            skips.push(x.clone());
            x = down.infer(&max_pool2d_forward(&x, 2, 2)?.0)?;
        }
        // One skip per up stage, consumed deepest-first.
        for ((up, up_conv), skip) in self.ups.iter().zip(&self.up_convs).zip(skips.into_iter().rev()) {
            let upsampled = up.infer(&x)?;
            let cat = NdArray::concat(&[&skip, &upsampled], 1)?;
            x = up_conv.infer(&cat)?;
        }
        self.head.infer(&x)
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.stem.parameters();
        for d in &self.downs {
            p.extend(d.parameters());
        }
        for u in &self.ups {
            p.extend(u.parameters());
        }
        for u in &self.up_convs {
            p.extend(u.parameters());
        }
        p.extend(self.head.parameters());
        p
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut b = self.stem.buffers();
        for d in &self.downs {
            b.extend(d.buffers());
        }
        for u in &self.up_convs {
            b.extend(u.buffers());
        }
        b
    }

    fn set_training(&self, training: bool) {
        self.stem.set_training(training);
        for d in &self.downs {
            d.set_training(training);
        }
        for u in &self.up_convs {
            u.set_training(training);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_tensor::NdArray;
    use rand::SeedableRng;

    fn small() -> UNet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        UNet::new(UNetConfig { in_channels: 3, out_channels: 1, base_channels: 4, depth: 2 }, &mut rng)
    }

    #[test]
    fn output_matches_input_resolution() {
        let net = small();
        let x = Tensor::constant(NdArray::zeros(&[2, 3, 16, 16]));
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 1, 16, 16]);
    }

    #[test]
    fn rejects_non_divisible_spatial() {
        let net = small();
        let x = Tensor::constant(NdArray::zeros(&[1, 3, 10, 10]));
        assert!(net.forward(&x).is_err());
    }

    #[test]
    fn rejects_wrong_channels() {
        let net = small();
        let x = Tensor::constant(NdArray::zeros(&[1, 2, 16, 16]));
        assert!(net.forward(&x).is_err());
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let net = small();
        let x = Tensor::constant(NdArray::from_fn(&[1, 3, 8, 8], |i| (i % 7) as f32 * 0.1));
        net.forward(&x).unwrap().square().sum().backward().unwrap();
        let params = net.parameters();
        assert!(!params.is_empty());
        for (i, p) in params.iter().enumerate() {
            assert!(p.grad().is_some(), "parameter {i} has no gradient");
        }
    }

    #[test]
    fn gradient_flows_back_to_input() {
        let net = small();
        let x = Tensor::parameter(NdArray::from_fn(&[1, 3, 8, 8], |i| (i % 5) as f32 * 0.2));
        net.forward(&x).unwrap().sum().backward().unwrap();
        let g = x.grad().unwrap();
        assert_eq!(g.shape(), &[1, 3, 8, 8]);
        assert!(g.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn eval_mode_is_deterministic_wrt_batch() {
        let net = small();
        // Move running stats away from init, then freeze.
        let x = Tensor::constant(NdArray::from_fn(&[2, 3, 8, 8], |i| (i % 11) as f32 * 0.05));
        for _ in 0..3 {
            net.forward(&x).unwrap();
        }
        net.set_training(false);
        let single = Tensor::constant(NdArray::from_fn(&[1, 3, 8, 8], |i| (i % 11) as f32 * 0.05));
        let y1 = net.forward(&single).unwrap().value();
        let y2 = net.forward(&single).unwrap().value();
        assert_eq!(y1, y2);
    }

    #[test]
    fn parameter_count_is_stable() {
        let a = small();
        let b = small();
        assert_eq!(a.num_parameters(), b.num_parameters());
        assert_eq!(a.parameters().len(), b.parameters().len());
    }
}
