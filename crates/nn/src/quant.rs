//! Offline calibration and int8 quantization of a trained [`UNet`] for
//! the `QuantCpu` inference backend.
//!
//! The pipeline has two offline steps and one load-time step:
//!
//! 1. **Calibration** ([`calibrate`]): replay the exact f32 inference
//!    traversal over representative samples (training shards), recording
//!    the absolute maximum seen at each convolution input. One symmetric
//!    scale per convolution, in traversal order — [`CalibrationScales`].
//! 2. **Persistence**: the scales serialize as a versioned, checksummed
//!    text section appended to the model bundle. Old loaders ignore it
//!    (they stop after the counted weight blocks); bundles without it
//!    load fine and simply cannot serve the quantized backend.
//! 3. **Compilation** ([`QuantUNet::compile`]): fold each conv + batch
//!    norm + ReLU block into a single [`QConvKernel`] (int8 weights,
//!    fused dequantize/bias/ReLU epilogue). Max-pool, transposed
//!    convolution, concat and the batch dimension stay f32 — they are
//!    cheap and quantization there buys nothing.
//!
//! [`QuantUNet`] implements [`Module`], so the batched inference helpers
//! (`forward_batched`) drive it exactly like the f32 network. It is
//! inference-only: `forward` wraps `infer` in a constant (no gradients),
//! and `parameters()` is empty.

use crate::layers::{BatchNorm2d, Conv2d};
use crate::module::Module;
use crate::unet::{DoubleConv, UNet, UNetConfig};
use neurfill_tensor::quant::{absmax, scale_for, QConvKernel};
use neurfill_tensor::{max_pool2d_forward, NdArray, Result, Tensor, TensorError};
use std::io::{self, Read, Write};

/// First line of the serialized calibration section.
pub const CALIBRATION_MAGIC: &str = "neurfill-calibration v1";

/// Number of convolution layers (and therefore calibration scales) a UNet
/// of the given depth has, in inference-traversal order: stem (2), each
/// down stage (2), each up stage (2), head (1).
#[must_use]
pub fn expected_scale_count(depth: usize) -> usize {
    4 * depth + 3
}

/// Per-convolution-layer symmetric input quantization scales, in the
/// inference traversal order [`calibrate`] records and
/// [`QuantUNet::compile`] consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationScales {
    scales: Vec<f32>,
}

/// FNV-1a over the serialized scale lines — cheap corruption detection
/// for a section that silently degrading would be expensive to debug.
fn fnv1a(bytes: &[u8]) -> u32 {
    bytes.iter().fold(0x811c_9dc5u32, |h, &b| (h ^ u32::from(b)).wrapping_mul(0x0100_0193))
}

impl CalibrationScales {
    /// Wraps raw per-layer scales (traversal order).
    #[must_use]
    pub fn new(scales: Vec<f32>) -> Self {
        Self { scales }
    }

    /// The per-layer scales, in traversal order.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Number of per-layer scales.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// Whether there are no scales.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// The serialized text section: magic, count, one 8-hex-digit f32 bit
    /// pattern per scale, FNV-1a checksum over the scale lines.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        for s in &self.scales {
            body.push_str(&format!("{:08x}\n", s.to_bits()));
        }
        format!(
            "{CALIBRATION_MAGIC}\nscales {}\n{body}checksum {:08x}\n",
            self.scales.len(),
            fnv1a(body.as_bytes())
        )
    }

    /// Writes the serialized section.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_text().as_bytes())
    }

    /// Parses a serialized calibration section (anything after its
    /// checksum line is ignored, so future sections can follow it).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a wrong magic/version, malformed counts or
    /// scale lines, truncation, or a checksum mismatch.
    pub fn parse(text: &str) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let mut lines = text.lines();
        let magic = lines.next().unwrap_or_default();
        if magic != CALIBRATION_MAGIC {
            return Err(bad(format!("bad calibration magic: {magic:?}")));
        }
        let count_line = lines.next().unwrap_or_default();
        let count: usize = count_line
            .strip_prefix("scales ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad(format!("bad calibration count line: {count_line:?}")))?;
        let mut scales = Vec::with_capacity(count);
        let mut body = String::new();
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| bad("truncated calibration scales".into()))?;
            if line.len() != 8 {
                return Err(bad(format!("bad calibration scale line: {line:?}")));
            }
            let bits = u32::from_str_radix(line, 16)
                .map_err(|_| bad(format!("bad calibration scale line: {line:?}")))?;
            scales.push(f32::from_bits(bits));
            body.push_str(line);
            body.push('\n');
        }
        let sum_line = lines.next().unwrap_or_default();
        let stored = sum_line
            .strip_prefix("checksum ")
            .and_then(|v| u32::from_str_radix(v, 16).ok())
            .ok_or_else(|| bad(format!("bad calibration checksum line: {sum_line:?}")))?;
        let computed = fnv1a(body.as_bytes());
        if stored != computed {
            return Err(bad(format!(
                "calibration checksum mismatch: stored {stored:08x}, computed {computed:08x}"
            )));
        }
        Ok(Self { scales })
    }

    /// Reads and parses a serialized section from a reader.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and [`CalibrationScales::parse`] failures.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut text = String::new();
        r.read_to_string(&mut text)?;
        Self::parse(&text)
    }
}

/// Records `absmax(input)` at `maxes[*idx]` and advances the cursor.
fn record(input: &NdArray, maxes: &mut [f32], idx: &mut usize) {
    maxes[*idx] = maxes[*idx].max(absmax(input.as_slice()));
    *idx += 1;
}

/// Runs one [`DoubleConv`] on the f32 inference path, recording the input
/// absmax of each of its two convolutions.
fn record_double(
    dc: &DoubleConv,
    input: &NdArray,
    maxes: &mut [f32],
    idx: &mut usize,
) -> Result<NdArray> {
    record(input, maxes, idx);
    let mut x = dc.bn1.infer(&dc.conv1.infer(input)?)?;
    x.map_inplace(|v| v.max(0.0));
    record(&x, maxes, idx);
    let mut y = dc.bn2.infer(&dc.conv2.infer(&x)?)?;
    y.map_inplace(|v| v.max(0.0));
    Ok(y)
}

/// Computes per-convolution-layer input scales by replaying the exact f32
/// inference traversal of `unet` over `samples` (each `[N, C, H, W]`) and
/// recording the largest magnitude each convolution input reaches.
///
/// # Errors
///
/// Returns an error when `samples` is empty or any sample fails the
/// network's input checks.
pub fn calibrate(unet: &UNet, samples: &[NdArray]) -> Result<CalibrationScales> {
    if samples.is_empty() {
        return Err(TensorError::InvalidArgument("calibration requires at least one sample".into()));
    }
    let count = expected_scale_count(unet.config().depth);
    let mut maxes = vec![0.0f32; count];
    for sample in samples {
        unet.check_input(sample.shape())?;
        let mut idx = 0;
        let mut x = record_double(&unet.stem, sample, &mut maxes, &mut idx)?;
        let mut skips = Vec::with_capacity(unet.config().depth);
        for down in &unet.downs {
            skips.push(x.clone());
            let pooled = max_pool2d_forward(&x, 2, 2)?.0;
            x = record_double(down, &pooled, &mut maxes, &mut idx)?;
        }
        for ((up, up_conv), skip) in unet.ups.iter().zip(&unet.up_convs).zip(skips.into_iter().rev()) {
            let upsampled = up.infer(&x)?;
            let cat = NdArray::concat(&[&skip, &upsampled], 1)?;
            x = record_double(up_conv, &cat, &mut maxes, &mut idx)?;
        }
        record(&x, &mut maxes, &mut idx);
        debug_assert_eq!(idx, count);
    }
    Ok(CalibrationScales::new(maxes.into_iter().map(scale_for).collect()))
}

/// One quantized (conv → BN → ReLU) × 2 block.
#[derive(Debug)]
struct QDouble {
    conv1: QConvKernel,
    conv2: QConvKernel,
}

impl QDouble {
    fn forward(&self, input: &NdArray) -> Result<NdArray> {
        self.conv2.forward(&self.conv1.forward(input)?)
    }
}

/// The decoder's transposed convolutions stay f32 (they are a small
/// fraction of the FLOPs and quantizing them buys little).
#[derive(Debug)]
struct UpStage {
    weight: NdArray,
    bias: NdArray,
    stride: usize,
    padding: usize,
}

/// Folds a convolution and its following evaluation-mode batch norm into
/// one quantized kernel: `W'[o] = W[o] · γ[o] / d[o]`,
/// `b'[o] = (b[o] − μ[o]) · γ[o] / d[o] + β[o]`, `d = (σ² + eps).sqrt()`,
/// with ReLU fused into the dequantize epilogue.
fn fuse_conv_bn(conv: &Conv2d, bn: &BatchNorm2d, in_scale: f32) -> Result<QConvKernel> {
    let w = conv.weight().data();
    let cb = conv.bias().data();
    let (gamma, beta) = (bn.gamma(), bn.beta());
    let (mean, var) = (bn.running_mean(), bn.running_var());
    let o = w.shape()[0];
    let k = w.numel() / o;
    let mut fused_w = w.clone();
    let mut fused_b = vec![0.0f32; o];
    for (oi, fb) in fused_b.iter_mut().enumerate() {
        let d = (var.as_slice()[oi] + bn.eps()).sqrt();
        let s = gamma.as_slice()[oi] / d;
        for v in &mut fused_w.as_mut_slice()[oi * k..(oi + 1) * k] {
            *v *= s;
        }
        *fb = (cb.as_slice()[oi] - mean.as_slice()[oi]) * s + beta.as_slice()[oi];
    }
    QConvKernel::from_f32(&fused_w, &fused_b, in_scale, true, conv.stride(), conv.padding())
}

fn fuse_double(dc: &DoubleConv, scales: &[f32], idx: &mut usize) -> Result<QDouble> {
    let conv1 = fuse_conv_bn(&dc.conv1, &dc.bn1, scales[*idx])?;
    let conv2 = fuse_conv_bn(&dc.conv2, &dc.bn2, scales[*idx + 1])?;
    *idx += 2;
    Ok(QDouble { conv1, conv2 })
}

/// An int8-quantized, inference-only compilation of a trained [`UNet`]:
/// every conv+BN+ReLU block runs the exact-integer `madd` kernel; pool,
/// up-convolution and concat stay f32. Topology and input checks match
/// the f32 network, so it is a drop-in [`Module`] for the batched
/// inference helpers.
#[derive(Debug)]
pub struct QuantUNet {
    config: UNetConfig,
    stem: QDouble,
    downs: Vec<QDouble>,
    ups: Vec<UpStage>,
    up_convs: Vec<QDouble>,
    head: QConvKernel,
}

impl QuantUNet {
    /// Compiles `unet` against per-layer calibration `scales` (traversal
    /// order, [`expected_scale_count`] entries).
    ///
    /// # Errors
    ///
    /// Returns an error when the scale count does not match the network's
    /// depth or any scale is non-positive/non-finite.
    pub fn compile(unet: &UNet, calibration: &CalibrationScales) -> Result<Self> {
        let config = unet.config().clone();
        let want = expected_scale_count(config.depth);
        if calibration.len() != want {
            return Err(TensorError::InvalidArgument(format!(
                "calibration carries {} scales but a depth-{} UNet needs {want}",
                calibration.len(),
                config.depth
            )));
        }
        let scales = calibration.scales();
        let mut idx = 0;
        let stem = fuse_double(&unet.stem, scales, &mut idx)?;
        let mut downs = Vec::with_capacity(config.depth);
        for down in &unet.downs {
            downs.push(fuse_double(down, scales, &mut idx)?);
        }
        let mut ups = Vec::with_capacity(config.depth);
        let mut up_convs = Vec::with_capacity(config.depth);
        for (up, up_conv) in unet.ups.iter().zip(&unet.up_convs) {
            ups.push(UpStage {
                weight: up.weight().data().clone(),
                bias: up.bias().data().clone(),
                stride: up.stride(),
                padding: up.padding(),
            });
            up_convs.push(fuse_double(up_conv, scales, &mut idx)?);
        }
        let head = QConvKernel::from_f32(
            &unet.head.weight().data(),
            unet.head.bias().data().as_slice(),
            scales[idx],
            false,
            unet.head.stride(),
            unet.head.padding(),
        )?;
        Ok(Self { config, stem, downs, ups, up_convs, head })
    }

    /// The configuration of the f32 network this was compiled from.
    #[must_use]
    pub fn config(&self) -> &UNetConfig {
        &self.config
    }

    fn check_input(&self, shape: &[usize]) -> Result<()> {
        if shape.len() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: shape.len(), op: "unet" });
        }
        if shape[1] != self.config.in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: shape.to_vec(),
                rhs: vec![shape[0], self.config.in_channels, shape[2], shape[3]],
                op: "unet",
            });
        }
        let div = 1usize << self.config.depth;
        if !shape[2].is_multiple_of(div) || !shape[3].is_multiple_of(div) {
            return Err(TensorError::InvalidArgument(format!(
                "UNet depth {} requires spatial extents divisible by {div}, got {}x{}",
                self.config.depth, shape[2], shape[3]
            )));
        }
        Ok(())
    }
}

impl Module for QuantUNet {
    /// Inference-only: evaluates [`Module::infer`] and wraps the result in
    /// a constant — no gradients flow through the quantized network.
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(Tensor::constant(self.infer(&input.value())?))
    }

    fn infer(&self, input: &NdArray) -> Result<NdArray> {
        self.check_input(input.shape())?;
        let backend = neurfill_tensor::backend::active();
        let mut skips = Vec::with_capacity(self.config.depth);
        let mut x = self.stem.forward(input)?;
        for down in &self.downs {
            skips.push(x.clone());
            x = down.forward(&max_pool2d_forward(&x, 2, 2)?.0)?;
        }
        for ((up, up_conv), skip) in self.ups.iter().zip(&self.up_convs).zip(skips.into_iter().rev()) {
            let upsampled =
                backend.conv_transpose2d(&x, &up.weight, Some(&up.bias), up.stride, up.padding)?;
            let cat = NdArray::concat(&[&skip, &upsampled], 1)?;
            x = up_conv.forward(&cat)?;
        }
        self.head.forward(&x)
    }

    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn trained_like_unet() -> UNet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
        let unet = UNet::new(
            UNetConfig { in_channels: 3, out_channels: 1, base_channels: 4, depth: 2 },
            &mut rng,
        );
        // Move batch-norm running stats off their init so fusion is
        // non-trivial, then freeze.
        let x = Tensor::constant(NdArray::from_fn(&[2, 3, 16, 16], |i| (i as f32 * 0.19).sin()));
        for _ in 0..5 {
            unet.forward(&x).unwrap();
        }
        unet.set_training(false);
        unet
    }

    fn sample(seed: usize) -> NdArray {
        NdArray::from_fn(&[1, 3, 16, 16], |i| ((i + seed * 131) as f32 * 0.17).sin())
    }

    #[test]
    fn scale_count_matches_architecture() {
        assert_eq!(expected_scale_count(1), 7);
        assert_eq!(expected_scale_count(2), 11);
        let unet = trained_like_unet();
        let cal = calibrate(&unet, &[sample(0), sample(1)]).unwrap();
        assert_eq!(cal.len(), expected_scale_count(2));
        assert!(cal.scales().iter().all(|&s| s > 0.0 && s.is_finite()));
    }

    #[test]
    fn calibration_text_round_trips() {
        let cal = CalibrationScales::new(vec![0.013, 1.5e-3, 2.0, 0.25]);
        let text = cal.to_text();
        let back = CalibrationScales::parse(&text).unwrap();
        assert_eq!(cal, back);
        // A second serialize is byte-identical (fixed point).
        assert_eq!(text, back.to_text());
        // Trailing future sections are ignored.
        let extended = format!("{text}future-section v9\nstuff\n");
        assert_eq!(CalibrationScales::parse(&extended).unwrap(), cal);
    }

    #[test]
    fn corrupt_calibration_is_rejected_cleanly() {
        let cal = CalibrationScales::new(vec![0.013, 0.07]);
        let text = cal.to_text();
        // Flip one hex digit of a scale: checksum must catch it.
        assert!(CalibrationScales::parse(&text).is_ok());
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let flip = lines[2].replacen(
            lines[2].chars().next().unwrap(),
            if lines[2].starts_with('0') { "1" } else { "0" },
            1,
        );
        lines[2] = flip;
        let corrupted = lines.join("\n");
        let err = CalibrationScales::parse(&corrupted).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        // Truncation and bad magic are also InvalidData.
        assert_eq!(
            CalibrationScales::parse("neurfill-calibration v1\nscales 3\n00000000\n")
                .unwrap_err()
                .kind(),
            std::io::ErrorKind::InvalidData
        );
        assert_eq!(
            CalibrationScales::parse("something-else v1\n").unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn quantized_unet_tracks_f32_infer() {
        let unet = trained_like_unet();
        let samples: Vec<NdArray> = (0..4).map(sample).collect();
        let cal = calibrate(&unet, &samples).unwrap();
        let q = QuantUNet::compile(&unet, &cal).unwrap();
        let x = sample(7); // not in the calibration set
        let f = unet.infer(&x).unwrap();
        let qy = q.infer(&x).unwrap();
        assert_eq!(f.shape(), qy.shape());
        let fmax = absmax(f.as_slice()).max(1e-6);
        for (a, b) in f.as_slice().iter().zip(qy.as_slice()) {
            assert!(
                (a - b).abs() <= 0.08 * fmax,
                "quantized output drifted: f32={a} quant={b} (range {fmax})"
            );
        }
    }

    #[test]
    fn quantized_infer_is_bit_deterministic_and_batch_composable() {
        let unet = trained_like_unet();
        let cal = calibrate(&unet, &[sample(0)]).unwrap();
        let q = QuantUNet::compile(&unet, &cal).unwrap();
        let x = sample(3);
        let a = q.infer(&x).unwrap();
        let b = q.infer(&x).unwrap();
        assert_eq!(a, b);
        // forward == infer (wrapped constant), the Module contract.
        let f = q.forward(&Tensor::constant(x)).unwrap().value();
        assert_eq!(a, f);
        assert!(q.parameters().is_empty());
    }

    #[test]
    fn compile_rejects_wrong_scale_count() {
        let unet = trained_like_unet();
        let cal = CalibrationScales::new(vec![0.1; 5]);
        assert!(QuantUNet::compile(&unet, &cal).is_err());
        let cal = CalibrationScales::new(vec![0.0; expected_scale_count(2)]);
        assert!(QuantUNet::compile(&unet, &cal).is_err()); // non-positive scale
    }

    #[test]
    fn calibrate_rejects_empty_and_bad_samples() {
        let unet = trained_like_unet();
        assert!(calibrate(&unet, &[]).is_err());
        assert!(calibrate(&unet, &[NdArray::zeros(&[1, 2, 16, 16])]).is_err());
    }
}
