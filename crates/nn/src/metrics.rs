//! Regression accuracy metrics for surrogate evaluation.

use neurfill_tensor::{NdArray, Result, TensorError};

fn check_shapes(pred: &NdArray, target: &NdArray) -> Result<()> {
    if pred.shape() != target.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: pred.shape().to_vec(),
            rhs: target.shape().to_vec(),
            op: "metrics",
        });
    }
    if pred.numel() == 0 {
        return Err(TensorError::InvalidArgument("empty arrays".into()));
    }
    Ok(())
}

/// Mean absolute error.
///
/// # Errors
///
/// Returns an error when shapes differ or the arrays are empty.
pub fn mae(pred: &NdArray, target: &NdArray) -> Result<f64> {
    check_shapes(pred, target)?;
    let sum: f64 =
        pred.as_slice().iter().zip(target.as_slice()).map(|(p, t)| f64::from((p - t).abs())).sum();
    Ok(sum / pred.numel() as f64)
}

/// Root-mean-square error.
///
/// # Errors
///
/// Returns an error when shapes differ or the arrays are empty.
pub fn rmse(pred: &NdArray, target: &NdArray) -> Result<f64> {
    check_shapes(pred, target)?;
    let sum: f64 = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(p, t)| {
            let d = f64::from(p - t);
            d * d
        })
        .sum();
    Ok((sum / pred.numel() as f64).sqrt())
}

/// Coefficient of determination `R² = 1 − SS_res/SS_tot`. A constant-mean
/// predictor scores 0, a perfect predictor 1; worse-than-mean predictors go
/// negative. For a constant target the convention here is 1 when exact,
/// otherwise negative infinity would be meaningless, so 0 is returned.
///
/// # Errors
///
/// Returns an error when shapes differ or the arrays are empty.
pub fn r2_score(pred: &NdArray, target: &NdArray) -> Result<f64> {
    check_shapes(pred, target)?;
    let n = target.numel() as f64;
    let mean: f64 = target.as_slice().iter().map(|v| f64::from(*v)).sum::<f64>() / n;
    let ss_tot: f64 = target.as_slice().iter().map(|t| (f64::from(*t) - mean).powi(2)).sum();
    let ss_res: f64 = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(p, t)| (f64::from(*p) - f64::from(*t)).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return Ok(if ss_res == 0.0 { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = NdArray::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(mae(&t, &t).unwrap(), 0.0);
        assert_eq!(rmse(&t, &t).unwrap(), 0.0);
        assert_eq!(r2_score(&t, &t).unwrap(), 1.0);
    }

    #[test]
    fn known_values() {
        let p = NdArray::from_slice(&[2.0, 2.0]);
        let t = NdArray::from_slice(&[0.0, 4.0]);
        assert_eq!(mae(&p, &t).unwrap(), 2.0);
        assert_eq!(rmse(&p, &t).unwrap(), 2.0);
        // Predicting the mean ⇒ R² = 0.
        assert_eq!(r2_score(&p, &t).unwrap(), 0.0);
    }

    #[test]
    fn r2_negative_for_bad_predictor() {
        let p = NdArray::from_slice(&[10.0, -10.0]);
        let t = NdArray::from_slice(&[0.0, 1.0]);
        assert!(r2_score(&p, &t).unwrap() < 0.0);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = NdArray::from_slice(&[1.0]);
        let b = NdArray::from_slice(&[1.0, 2.0]);
        assert!(mae(&a, &b).is_err());
        assert!(rmse(&a, &b).is_err());
        assert!(r2_score(&a, &b).is_err());
    }

    #[test]
    fn constant_target_convention() {
        let t = NdArray::from_slice(&[5.0, 5.0]);
        let p = NdArray::from_slice(&[5.0, 6.0]);
        assert_eq!(r2_score(&t, &t).unwrap(), 1.0);
        assert_eq!(r2_score(&p, &t).unwrap(), 0.0);
    }
}
