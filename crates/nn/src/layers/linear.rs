//! Fully-connected layer.

use crate::module::Module;
use neurfill_tensor::{init, NdArray, Result, Tensor};
use rand::Rng;

/// A fully-connected (affine) layer: `y = x·Wᵀ + b` for `x` of shape
/// `[batch, in_features]`.
#[derive(Debug)]
pub struct Linear {
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight =
            Tensor::parameter(init::kaiming_uniform(&[out_features, in_features], in_features, rng));
        let bias = Tensor::parameter(NdArray::zeros(&[out_features]));
        Self { weight, bias }
    }

    /// The weight tensor `[out, in]`.
    #[must_use]
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias tensor `[out]`.
    #[must_use]
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Module for Linear {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        // y = x·Wᵀ + b, expressed as a 1×1 convolution so both operands stay
        // differentiable without needing a transpose op in the tensor crate:
        // x [B, in] ≅ [B, in, 1, 1], W [out, in] ≅ [out, in, 1, 1].
        let b = input.shape()[0];
        let in_f = input.shape()[1];
        let out_f = self.weight.shape()[0];
        let x4 = input.reshape(&[b, in_f, 1, 1])?;
        let w4 = self.weight.reshape(&[out_f, in_f, 1, 1])?;
        let y = x4.conv2d(&w4, None, 1, 0)?.reshape(&[b, out_f])?;
        y.add(&self.bias.reshape(&[1, out_f])?)
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn linear_matches_manual_affine() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let lin = Linear::new(3, 2, &mut rng);
        lin.weight.set_data(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap());
        lin.bias.set_data(NdArray::from_slice(&[0.5, -0.5]));
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]).unwrap());
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.value().as_slice(), &[6.5, 14.5]);
    }

    #[test]
    fn linear_gradients_flow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let lin = Linear::new(4, 3, &mut rng);
        let x = Tensor::parameter(NdArray::ones(&[2, 4]));
        lin.forward(&x).unwrap().square().sum().backward().unwrap();
        assert!(x.grad().is_some());
        assert!(lin.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn linear_batch_independence() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let lin = Linear::new(2, 2, &mut rng);
        let x1 = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap());
        let x2 = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 9.0, 9.0], &[2, 2]).unwrap());
        let y1 = lin.forward(&x1).unwrap().value();
        let y2 = lin.forward(&x2).unwrap().value();
        assert_eq!(&y2.as_slice()[..2], y1.as_slice());
    }
}
