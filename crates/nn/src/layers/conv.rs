//! Convolution layers.

use crate::module::Module;
use neurfill_tensor::{init, NdArray, Result, Tensor};
use rand::Rng;

/// A 2-D convolution layer (NCHW).
///
/// # Examples
///
/// ```
/// use neurfill_nn::{layers::Conv2d, Module};
/// use neurfill_tensor::{NdArray, Tensor};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let x = Tensor::constant(NdArray::zeros(&[1, 3, 16, 16]));
/// let y = conv.forward(&x)?;
/// assert_eq!(y.shape(), vec![1, 8, 16, 16]);
/// # Ok::<(), neurfill_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    stride: usize,
    padding: usize,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform weights.
    #[must_use]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Tensor::parameter(init::kaiming_uniform(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        let bias = Tensor::parameter(NdArray::zeros(&[out_channels]));
        Self { weight, bias, stride, padding }
    }

    /// The weight tensor `[O, C, kh, kw]`.
    #[must_use]
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias tensor `[O]`.
    #[must_use]
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The convolution stride.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The convolution padding.
    #[must_use]
    pub fn padding(&self) -> usize {
        self.padding
    }
}

impl Module for Conv2d {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        input.conv2d(&self.weight, Some(&self.bias), self.stride, self.padding)
    }

    fn infer(&self, input: &NdArray) -> Result<NdArray> {
        // Inference goes through the backend seam; every backend's f32
        // conv is the same reference kernel, so this dispatch never
        // changes a bit.
        neurfill_tensor::backend::active().conv2d(
            input,
            &self.weight.data(),
            Some(&*self.bias.data()),
            self.stride,
            self.padding,
        )
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// A transposed 2-D convolution layer (up-convolution in the UNet decoder).
#[derive(Debug)]
pub struct ConvTranspose2d {
    weight: Tensor,
    bias: Tensor,
    stride: usize,
    padding: usize,
}

impl ConvTranspose2d {
    /// Creates a transposed convolution with Kaiming-uniform weights.
    #[must_use]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Tensor::parameter(init::kaiming_uniform(
            &[in_channels, out_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        let bias = Tensor::parameter(NdArray::zeros(&[out_channels]));
        Self { weight, bias, stride, padding }
    }

    /// The weight tensor `[C, O, kh, kw]`.
    #[must_use]
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias tensor `[O]`.
    #[must_use]
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The convolution stride.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The convolution padding.
    #[must_use]
    pub fn padding(&self) -> usize {
        self.padding
    }
}

impl Module for ConvTranspose2d {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        input.conv_transpose2d(&self.weight, Some(&self.bias), self.stride, self.padding)
    }

    fn infer(&self, input: &NdArray) -> Result<NdArray> {
        neurfill_tensor::backend::active().conv_transpose2d(
            input,
            &self.weight.data(),
            Some(&*self.bias.data()),
            self.stride,
            self.padding,
        )
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn conv_preserves_spatial_with_same_padding() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        let x = Tensor::constant(NdArray::zeros(&[2, 2, 8, 8]));
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 4, 8, 8]);
        assert_eq!(conv.num_parameters(), 4 * 2 * 9 + 4);
    }

    #[test]
    fn transpose_doubles_spatial_with_stride2_k2() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let up = ConvTranspose2d::new(4, 2, 2, 2, 0, &mut rng);
        let x = Tensor::constant(NdArray::zeros(&[1, 4, 5, 5]));
        let y = up.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![1, 2, 10, 10]);
    }

    #[test]
    fn gradients_reach_conv_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[1, 1, 4, 4]));
        conv.forward(&x).unwrap().square().sum().backward().unwrap();
        for p in conv.parameters() {
            assert!(p.grad().is_some());
        }
        conv.zero_grad();
        assert!(conv.parameters().iter().all(|p| p.grad().is_none()));
    }
}
