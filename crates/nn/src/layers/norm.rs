//! Batch normalization.

use crate::module::{Buffer, Module};
use neurfill_tensor::{NdArray, Result, Tensor};
use std::cell::Cell;
use std::rc::Rc;

/// 2-D batch normalization over NCHW tensors.
///
/// In training mode, statistics are computed from the batch and running
/// estimates are updated; in evaluation mode the running estimates are used.
/// The normalization expression is built from differentiable primitives, so
/// gradients flow through the batch statistics exactly as in PyTorch.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    running_mean: Buffer,
    running_var: Buffer,
    momentum: f32,
    eps: f32,
    training: Cell<bool>,
    channels: usize,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    #[must_use]
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Tensor::parameter(NdArray::ones(&[channels])),
            beta: Tensor::parameter(NdArray::zeros(&[channels])),
            running_mean: Rc::new(std::cell::RefCell::new(NdArray::zeros(&[channels]))),
            running_var: Rc::new(std::cell::RefCell::new(NdArray::ones(&[channels]))),
            momentum: 0.1,
            eps: 1e-5,
            training: Cell::new(true),
            channels,
        }
    }

    /// Running mean estimate (evaluation-mode statistics).
    #[must_use]
    pub fn running_mean(&self) -> NdArray {
        self.running_mean.borrow().clone()
    }

    /// Running variance estimate (evaluation-mode statistics).
    #[must_use]
    pub fn running_var(&self) -> NdArray {
        self.running_var.borrow().clone()
    }

    /// The numerical-stability epsilon added to the variance.
    #[must_use]
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// The learned scale `γ` (one value per channel).
    #[must_use]
    pub fn gamma(&self) -> NdArray {
        self.gamma.data().clone()
    }

    /// The learned shift `β` (one value per channel).
    #[must_use]
    pub fn beta(&self) -> NdArray {
        self.beta.data().clone()
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let c = self.channels;
        let g = self.gamma.reshape(&[1, c, 1, 1])?;
        let b = self.beta.reshape(&[1, c, 1, 1])?;
        if self.training.get() {
            // Per-channel batch statistics via keepdim means.
            let m = input.mean_axis(0, true)?.mean_axis(2, true)?.mean_axis(3, true)?;
            let centered = input.sub(&m)?;
            let v = centered.square().mean_axis(0, true)?.mean_axis(2, true)?.mean_axis(3, true)?;
            // Update running stats with detached values.
            {
                let mv = m.value().reshape(&[c])?;
                let vv = v.value().reshape(&[c])?;
                let mut rm = self.running_mean.borrow_mut();
                let mut rv = self.running_var.borrow_mut();
                *rm = rm.scale(1.0 - self.momentum).add(&mv.scale(self.momentum))?;
                *rv = rv.scale(1.0 - self.momentum).add(&vv.scale(self.momentum))?;
            }
            let denom = v.add_scalar(self.eps).sqrt();
            centered.div(&denom)?.mul(&g)?.add(&b)
        } else {
            let rm = Tensor::constant(self.running_mean.borrow().reshape(&[1, c, 1, 1])?);
            let rv = Tensor::constant(self.running_var.borrow().reshape(&[1, c, 1, 1])?);
            let denom = rv.add_scalar(self.eps).sqrt();
            input.sub(&rm)?.div(&denom)?.mul(&g)?.add(&b)
        }
    }

    fn infer(&self, input: &NdArray) -> Result<NdArray> {
        // Fused evaluation-mode normalization: one pass instead of four
        // broadcast ops. Per element this computes ((x − m) / d) · g + b in
        // exactly the order the tensor expression does, so outputs stay
        // bit-identical to `forward`. Training mode falls back to `forward`
        // (batch statistics need the graph's semantics).
        if self.training.get() || input.rank() != 4 || input.shape()[1] != self.channels {
            return self.forward(&Tensor::constant(input.clone())).map(|t| t.value());
        }
        let rm = self.running_mean.borrow();
        let rv = self.running_var.borrow();
        let g = self.gamma.data();
        let b = self.beta.data();
        let mut out = input.clone();
        // The backend contract pins the per-element expression
        // ((x − m) / d) · g + b with d = (var + eps).sqrt(), so the seam
        // dispatch keeps outputs bit-identical to `forward`.
        neurfill_tensor::backend::active().batchnorm_inplace(
            &mut out,
            rm.as_slice(),
            rv.as_slice(),
            g.as_slice(),
            b.as_slice(),
            self.eps,
        )?;
        Ok(out)
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn buffers(&self) -> Vec<Buffer> {
        vec![Rc::clone(&self.running_mean), Rc::clone(&self.running_var)]
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

/// Group normalization over NCHW tensors (Wu & He): per-sample statistics
/// over channel groups. Unlike batch norm it has no running state and
/// behaves identically in training and evaluation — useful for batch-size-1
/// fine-tuning and as an ablation against [`BatchNorm2d`].
#[derive(Debug)]
pub struct GroupNorm {
    gamma: Tensor,
    beta: Tensor,
    groups: usize,
    channels: usize,
    eps: f32,
}

impl GroupNorm {
    /// Creates a group-norm layer.
    ///
    /// # Panics
    ///
    /// Panics when `channels` is not divisible by `groups` or `groups` is
    /// zero.
    #[must_use]
    pub fn new(groups: usize, channels: usize) -> Self {
        assert!(groups > 0, "need at least one group");
        assert_eq!(channels % groups, 0, "channels must divide into groups");
        Self {
            gamma: Tensor::parameter(NdArray::ones(&[channels])),
            beta: Tensor::parameter(NdArray::zeros(&[channels])),
            groups,
            channels,
            eps: 1e-5,
        }
    }
}

impl Module for GroupNorm {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let shape = input.shape();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let g = self.groups;
        // Group view: [N·g, (C/g)·H·W]; per-row statistics.
        let per = (c / g) * h * w;
        let xg = input.reshape(&[n * g, per])?;
        let mean = xg.mean_axis(1, true)?;
        let centered = xg.sub(&mean)?;
        let var = centered.square().mean_axis(1, true)?;
        let normalized = centered.div(&var.add_scalar(self.eps).sqrt())?.reshape(&[n, c, h, w])?;
        let gamma = self.gamma.reshape(&[1, self.channels, 1, 1])?;
        let beta = self.beta.reshape(&[1, self.channels, 1, 1])?;
        normalized.mul(&gamma)?.add(&beta)
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_batch_to_zero_mean_unit_var() {
        let bn = BatchNorm2d::new(2);
        let x = Tensor::constant(NdArray::from_fn(&[2, 2, 3, 3], |i| i as f32));
        let y = bn.forward(&x).unwrap().value();
        // Per-channel mean ≈ 0, var ≈ 1.
        let per_c = y.reshape(&[2, 2, 9]).unwrap();
        for c in 0..2 {
            let mut vals = Vec::new();
            for n in 0..2 {
                for s in 0..9 {
                    vals.push(per_c.at(&[n, c, s]));
                }
            }
            let arr = NdArray::from_slice(&vals);
            assert!(arr.mean().abs() < 1e-4);
            assert!((arr.var() - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let bn = BatchNorm2d::new(1);
        // Train on data with mean 10 to move the running stats.
        let x = Tensor::constant(NdArray::full(&[4, 1, 2, 2], 10.0));
        for _ in 0..200 {
            bn.forward(&x).unwrap();
        }
        bn.set_training(false);
        let y = bn.forward(&x).unwrap().value();
        // Normalized 10.0 against running mean ≈ 10 ⇒ ≈ 0.
        assert!(y.as_slice().iter().all(|v| v.abs() < 0.1), "{y:?}");
    }

    #[test]
    fn gradients_flow_through_batch_stats() {
        let bn = BatchNorm2d::new(1);
        let x = Tensor::parameter(NdArray::from_fn(&[1, 1, 2, 2], |i| i as f32));
        bn.forward(&x).unwrap().square().sum().backward().unwrap();
        assert!(x.grad().is_some());
        assert!(bn.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn running_stats_converge_to_data_stats() {
        let bn = BatchNorm2d::new(1);
        let x = Tensor::constant(NdArray::from_fn(&[8, 1, 2, 2], |i| (i % 4) as f32));
        for _ in 0..200 {
            bn.forward(&x).unwrap();
        }
        let rm = bn.running_mean();
        assert!((rm.as_slice()[0] - 1.5).abs() < 0.05, "{rm:?}");
    }

    #[test]
    fn exposes_two_buffers() {
        let bn = BatchNorm2d::new(3);
        let bufs = bn.buffers();
        assert_eq!(bufs.len(), 2);
        assert_eq!(bufs[0].borrow().shape(), &[3]);
    }

    #[test]
    fn group_norm_normalizes_per_group() {
        let gn = GroupNorm::new(2, 4);
        let x = Tensor::constant(NdArray::from_fn(&[1, 4, 2, 2], |i| i as f32));
        let y = gn.forward(&x).unwrap().value();
        // Each group of 2 channels (8 values) is normalized to mean 0.
        let group0: f32 = y.as_slice()[..8].iter().sum();
        let group1: f32 = y.as_slice()[8..].iter().sum();
        assert!(group0.abs() < 1e-3, "{group0}");
        assert!(group1.abs() < 1e-3, "{group1}");
    }

    #[test]
    fn group_norm_is_batch_independent_and_deterministic() {
        let gn = GroupNorm::new(1, 2);
        let x1 = Tensor::constant(NdArray::from_fn(&[1, 2, 2, 2], |i| i as f32));
        let y1 = gn.forward(&x1).unwrap().value();
        // Duplicate the sample: per-sample stats must give identical rows.
        let mut data = x1.value().into_vec();
        data.extend(data.clone());
        let x2 = Tensor::constant(NdArray::from_vec(data, &[2, 2, 2, 2]).unwrap());
        let y2 = gn.forward(&x2).unwrap().value();
        assert_eq!(&y2.as_slice()[..8], y1.as_slice());
        assert_eq!(&y2.as_slice()[8..], y1.as_slice());
    }

    #[test]
    fn group_norm_gradients_flow() {
        let gn = GroupNorm::new(2, 4);
        let x = Tensor::parameter(NdArray::from_fn(&[2, 4, 2, 2], |i| (i % 7) as f32));
        gn.forward(&x).unwrap().square().sum().backward().unwrap();
        assert!(x.grad().is_some());
        assert!(gn.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn group_norm_rejects_indivisible_channels() {
        let _ = GroupNorm::new(3, 4);
    }
}
