//! Activation modules (stateless wrappers over tensor ops).

use crate::module::Module;
use neurfill_tensor::{Result, Tensor};

/// ReLU activation module.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Relu {
    /// Creates a ReLU module.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Module for Relu {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.relu())
    }
    fn infer(&self, input: &neurfill_tensor::NdArray) -> Result<neurfill_tensor::NdArray> {
        Ok(input.map(|v| v.max(0.0)))
    }
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

/// Sigmoid activation module.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sigmoid;

impl Sigmoid {
    /// Creates a sigmoid module.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Module for Sigmoid {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.sigmoid())
    }
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

/// Tanh activation module.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tanh;

impl Tanh {
    /// Creates a tanh module.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Module for Tanh {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.tanh())
    }
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

/// Leaky-ReLU activation module with configurable negative slope.
#[derive(Debug, Clone, Copy)]
pub struct LeakyRelu {
    alpha: f32,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative slope.
    #[must_use]
    pub fn new(alpha: f32) -> Self {
        Self { alpha }
    }
}

impl Default for LeakyRelu {
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl Module for LeakyRelu {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.leaky_relu(self.alpha))
    }
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_tensor::NdArray;

    #[test]
    fn activations_are_parameter_free() {
        assert_eq!(Relu::new().num_parameters(), 0);
        assert_eq!(Sigmoid::new().num_parameters(), 0);
        assert_eq!(Tanh::new().num_parameters(), 0);
        assert_eq!(LeakyRelu::default().num_parameters(), 0);
    }

    #[test]
    fn relu_module_matches_op() {
        let x = Tensor::constant(NdArray::from_slice(&[-1.0, 2.0]));
        let y = Relu::new().forward(&x).unwrap();
        assert_eq!(y.value().as_slice(), &[0.0, 2.0]);
    }
}
