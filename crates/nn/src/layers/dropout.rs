//! Dropout regularization.

use crate::module::Module;
use neurfill_tensor::{NdArray, Result, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell};

/// Inverted dropout: in training mode each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`; in evaluation
/// mode the input passes through unchanged.
///
/// The layer owns a seeded RNG so training runs stay reproducible.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    training: Cell<bool>,
    rng: RefCell<StdRng>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1)`.
    #[must_use]
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Self { p, training: Cell::new(true), rng: RefCell::new(StdRng::seed_from_u64(seed)) }
    }

    /// The drop probability.
    #[must_use]
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Module for Dropout {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if !self.training.get() || self.p == 0.0 {
            // Identity that still participates in the graph.
            return Ok(input.scale(1.0));
        }
        let keep = 1.0 - self.p;
        let mut rng = self.rng.borrow_mut();
        let mask =
            NdArray::from_fn(&input.shape(), |_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 });
        input.mul(&Tensor::constant(mask))
    }

    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Tensor::constant(NdArray::from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(d.forward(&x).unwrap().value().as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn training_mode_zeroes_roughly_p_fraction() {
        let d = Dropout::new(0.3, 1);
        let x = Tensor::constant(NdArray::ones(&[10_000]));
        let y = d.forward(&x).unwrap().value();
        let zeros = y.as_slice().iter().filter(|v| **v == 0.0).count();
        assert!((zeros as f64 / 10_000.0 - 0.3).abs() < 0.03, "{zeros}");
        // Survivors are scaled to preserve the expectation.
        assert!((y.mean() - 1.0).abs() < 0.05, "{}", y.mean());
    }

    #[test]
    fn gradients_pass_only_through_kept_units() {
        let d = Dropout::new(0.5, 2);
        let x = Tensor::parameter(NdArray::ones(&[1000]));
        let y = d.forward(&x).unwrap();
        y.sum().backward().unwrap();
        let g = x.grad().unwrap();
        let v = y.value();
        for (gi, yi) in g.as_slice().iter().zip(v.as_slice()) {
            if *yi == 0.0 {
                assert_eq!(*gi, 0.0);
            } else {
                assert!((gi - 2.0).abs() < 1e-6); // 1/keep = 2
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
