//! Pooling and upsampling modules.

use crate::module::Module;
use neurfill_tensor::{Result, Tensor};

/// Max-pooling module.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with the given kernel and stride.
    #[must_use]
    pub fn new(kernel: usize, stride: usize) -> Self {
        Self { kernel, stride }
    }
}

impl Module for MaxPool2d {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        input.max_pool2d(self.kernel, self.stride)
    }
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

/// Nearest-neighbour upsampling module.
#[derive(Debug, Clone, Copy)]
pub struct UpsampleNearest2d {
    scale: usize,
}

impl UpsampleNearest2d {
    /// Creates an upsampling layer with the given integer scale factor.
    #[must_use]
    pub fn new(scale: usize) -> Self {
        Self { scale }
    }
}

impl Module for UpsampleNearest2d {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        input.upsample_nearest2d(self.scale)
    }
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_tensor::NdArray;

    #[test]
    fn pool_then_upsample_restores_shape() {
        let x = Tensor::constant(NdArray::from_fn(&[1, 2, 8, 8], |i| i as f32));
        let pooled = MaxPool2d::new(2, 2).forward(&x).unwrap();
        assert_eq!(pooled.shape(), vec![1, 2, 4, 4]);
        let up = UpsampleNearest2d::new(2).forward(&pooled).unwrap();
        assert_eq!(up.shape(), x.shape());
    }
}
