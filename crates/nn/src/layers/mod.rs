//! Neural-network layers: convolutions, linear, normalization, pooling,
//! upsampling and activation modules.

mod activation;
mod conv;
mod dropout;
mod linear;
mod norm;
mod pool;
mod sequential;

pub use activation::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use conv::{Conv2d, ConvTranspose2d};
pub use dropout::Dropout;
pub use linear::Linear;
pub use norm::{BatchNorm2d, GroupNorm};
pub use pool::{MaxPool2d, UpsampleNearest2d};
pub use sequential::Sequential;
