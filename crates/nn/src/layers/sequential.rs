//! Sequential composition of modules.

use crate::module::{Buffer, Module};
use neurfill_tensor::{Result, Tensor};

/// A chain of modules applied in order.
///
/// # Examples
///
/// ```
/// use neurfill_nn::{layers::{Conv2d, Relu, Sequential}, Module};
/// use neurfill_tensor::{NdArray, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Sequential::new()
///     .push(Conv2d::new(1, 4, 3, 1, 1, &mut rng))
///     .push(Relu::new())
///     .push(Conv2d::new(4, 1, 1, 1, 0, &mut rng));
/// let y = net.forward(&Tensor::constant(NdArray::zeros(&[1, 1, 8, 8])))?;
/// assert_eq!(y.shape(), vec![1, 1, 8, 8]);
/// # Ok::<(), neurfill_tensor::TensorError>(())
/// ```
#[derive(Default)]
pub struct Sequential {
    modules: Vec<Box<dyn Module>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} modules)", self.modules.len())
    }
}

impl Sequential {
    /// Creates an empty chain.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a module (builder style).
    #[must_use]
    pub fn push(mut self, module: impl Module + 'static) -> Self {
        self.modules.push(Box::new(module));
        self
    }

    /// Number of modules in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for m in &self.modules {
            x = m.forward(&x)?;
        }
        Ok(x)
    }

    fn infer(&self, input: &neurfill_tensor::NdArray) -> Result<neurfill_tensor::NdArray> {
        let mut x = input.clone();
        for m in &self.modules {
            x = m.infer(&x)?;
        }
        Ok(x)
    }

    fn parameters(&self) -> Vec<Tensor> {
        self.modules.iter().flat_map(|m| m.parameters()).collect()
    }

    fn buffers(&self) -> Vec<Buffer> {
        self.modules.iter().flat_map(|m| m.buffers()).collect()
    }

    fn set_training(&self, training: bool) {
        for m in &self.modules {
            m.set_training(training);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Conv2d, Relu};
    use neurfill_tensor::NdArray;
    use rand::SeedableRng;

    #[test]
    fn empty_chain_is_identity() {
        let net = Sequential::new();
        assert!(net.is_empty());
        let x = Tensor::constant(NdArray::from_slice(&[1.0, 2.0]));
        assert_eq!(net.forward(&x).unwrap().value().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn collects_parameters_and_buffers_in_order() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let net = Sequential::new()
            .push(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
            .push(BatchNorm2d::new(2))
            .push(Relu::new());
        assert_eq!(net.len(), 3);
        // conv: weight + bias; bn: gamma + beta.
        assert_eq!(net.parameters().len(), 4);
        // bn: running mean + var.
        assert_eq!(net.buffers().len(), 2);
    }

    #[test]
    fn gradients_flow_through_the_chain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let net = Sequential::new()
            .push(Conv2d::new(1, 2, 3, 1, 1, &mut rng))
            .push(Relu::new())
            .push(Conv2d::new(2, 1, 1, 1, 0, &mut rng));
        let x = Tensor::parameter(NdArray::from_fn(&[1, 1, 4, 4], |i| i as f32 * 0.1));
        net.forward(&x).unwrap().square().sum().backward().unwrap();
        assert!(x.grad().is_some());
        assert!(net.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn set_training_propagates() {
        let net = Sequential::new().push(BatchNorm2d::new(1));
        net.set_training(false);
        // Eval-mode batch norm on unit running stats is ~identity.
        let x = Tensor::constant(NdArray::full(&[1, 1, 2, 2], 3.0));
        let y = net.forward(&x).unwrap().value();
        assert!(y.as_slice().iter().all(|v| (v - 3.0).abs() < 1e-2));
    }
}
