//! The [`Module`] abstraction shared by all layers and networks.

use neurfill_tensor::{NdArray, Result, Tensor};
use std::cell::RefCell;
use std::rc::Rc;

/// A shared handle to non-trainable module state (e.g. batch-norm running
/// statistics) that must survive serialization round-trips.
pub type Buffer = Rc<RefCell<NdArray>>;

/// A differentiable component: maps one tensor to another and exposes its
/// trainable parameters.
///
/// Modules take `&self` in [`Module::forward`]; stateful layers (e.g.
/// batch-norm running statistics) use interior mutability so that networks
/// compose without threading `&mut` everywhere.
pub trait Module {
    /// Applies the module to an input tensor.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the
    /// module's configuration.
    fn forward(&self, input: &Tensor) -> Result<Tensor>;

    /// Inference fast path: applies the module to a raw array without
    /// building the autograd graph.
    ///
    /// The result is bit-identical to evaluation-mode [`Module::forward`]
    /// — layers override this to run their raw kernels directly (and fuse
    /// where possible), but never to change arithmetic. The default falls
    /// back to `forward` on a constant tensor, so every module supports it.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the
    /// module's configuration.
    fn infer(&self, input: &NdArray) -> Result<NdArray> {
        self.forward(&Tensor::constant(input.clone())).map(|t| t.value())
    }

    /// All trainable parameters, in a stable order.
    ///
    /// The order is part of the serialization contract: weights saved by
    /// [`crate::serialize::save_parameters`] are restored positionally.
    fn parameters(&self) -> Vec<Tensor>;

    /// Non-trainable state carried by the module (running statistics),
    /// in a stable order. Serialized alongside parameters.
    fn buffers(&self) -> Vec<Buffer> {
        Vec::new()
    }

    /// Switches between training and evaluation behaviour.
    ///
    /// The default implementation does nothing; layers with mode-dependent
    /// behaviour (batch-norm) override it.
    fn set_training(&self, _training: bool) {}

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(Tensor::numel).sum()
    }

    /// Clears the gradients of every parameter.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_tensor::NdArray;

    struct Doubler;

    impl Module for Doubler {
        fn forward(&self, input: &Tensor) -> Result<Tensor> {
            Ok(input.scale(2.0))
        }
        fn parameters(&self) -> Vec<Tensor> {
            Vec::new()
        }
    }

    #[test]
    fn default_num_parameters_is_zero_for_stateless() {
        let m = Doubler;
        assert_eq!(m.num_parameters(), 0);
        let y = m.forward(&Tensor::constant(NdArray::from_slice(&[1.0]))).unwrap();
        assert_eq!(y.value().as_slice(), &[2.0]);
    }
}
