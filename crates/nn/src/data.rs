//! In-memory supervised datasets and mini-batching.

use neurfill_tensor::{NdArray, Result, TensorError};
use rand::seq::SliceRandom;
use rand::Rng;

/// A supervised regression dataset of `(input, target)` NCHW samples.
///
/// Samples are stored individually (shape `[C, H, W]`); batching stacks
/// them into `[B, C, H, W]` arrays.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    inputs: Vec<NdArray>,
    targets: Vec<NdArray>,
}

impl Dataset {
    /// Creates an empty dataset.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dataset with room for `n` samples, avoiding
    /// reallocation when the size is known up front (e.g. when loading a
    /// shard whose header carries its sample count).
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self { inputs: Vec::with_capacity(n), targets: Vec::with_capacity(n) }
    }

    /// Reserves room for at least `additional` more samples.
    pub fn reserve(&mut self, additional: usize) {
        self.inputs.reserve(additional);
        self.targets.reserve(additional);
    }

    /// Remaining capacity before the next reallocation.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inputs.capacity().min(self.targets.capacity())
    }

    /// Iterates over `(input, target)` pairs in storage order — the same
    /// consumption shape streaming shard readers expose, so code can be
    /// written against either source.
    pub fn iter(&self) -> impl Iterator<Item = (&NdArray, &NdArray)> {
        self.inputs.iter().zip(self.targets.iter())
    }

    /// Appends every pair from `pairs`, validating shapes like
    /// [`Dataset::push`].
    ///
    /// # Errors
    ///
    /// Returns an error on the first shape mismatch; pairs before it are
    /// kept.
    pub fn extend_pairs(&mut self, pairs: impl IntoIterator<Item = (NdArray, NdArray)>) -> Result<()> {
        let pairs = pairs.into_iter();
        self.reserve(pairs.size_hint().0);
        for (input, target) in pairs {
            self.push(input, target)?;
        }
        Ok(())
    }

    /// Adds one `(input, target)` pair.
    ///
    /// # Errors
    ///
    /// Returns an error when the sample shapes disagree with already stored
    /// samples.
    pub fn push(&mut self, input: NdArray, target: NdArray) -> Result<()> {
        if let (Some(i0), Some(t0)) = (self.inputs.first(), self.targets.first()) {
            if input.shape() != i0.shape() || target.shape() != t0.shape() {
                return Err(TensorError::ShapeMismatch {
                    lhs: input.shape().to_vec(),
                    rhs: i0.shape().to_vec(),
                    op: "dataset push",
                });
            }
        }
        self.inputs.push(input);
        self.targets.push(target);
        Ok(())
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Borrow of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn sample(&self, i: usize) -> (&NdArray, &NdArray) {
        (&self.inputs[i], &self.targets[i])
    }

    /// Splits off the last `n` samples into a separate dataset (e.g. a
    /// validation split).
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds the dataset size.
    #[must_use]
    pub fn split_off(&mut self, n: usize) -> Dataset {
        assert!(n <= self.len());
        let at = self.len() - n;
        Dataset { inputs: self.inputs.split_off(at), targets: self.targets.split_off(at) }
    }

    /// Stacks samples `indices` into a `[B, C, H, W]` input batch and the
    /// matching target batch.
    ///
    /// # Panics
    ///
    /// Panics when `indices` is empty or out of range.
    #[must_use]
    // The stacked buffer is sized from the shape it is checked against, so
    // `from_vec` cannot fail — the expect asserts an internal invariant.
    #[allow(clippy::expect_used)]
    pub fn batch(&self, indices: &[usize]) -> (NdArray, NdArray) {
        assert!(!indices.is_empty());
        let stack = |items: &[NdArray]| {
            let sample_shape = items[indices[0]].shape().to_vec();
            let mut shape = vec![indices.len()];
            shape.extend(&sample_shape);
            let mut data = Vec::with_capacity(indices.len() * items[indices[0]].numel());
            for &i in indices {
                data.extend_from_slice(items[i].as_slice());
            }
            NdArray::from_vec(data, &shape).expect("stacked shapes agree")
        };
        (stack(&self.inputs), stack(&self.targets))
    }

    /// Yields shuffled mini-batch index lists covering the dataset once.
    #[must_use]
    pub fn shuffled_batches(&self, batch_size: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.chunks(batch_size.max(1)).map(<[usize]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> Dataset {
        let mut ds = Dataset::new();
        for i in 0..5 {
            ds.push(NdArray::full(&[1, 2, 2], i as f32), NdArray::full(&[1, 2, 2], -(i as f32)))
                .unwrap();
        }
        ds
    }

    #[test]
    fn push_rejects_mismatched_shapes() {
        let mut ds = tiny();
        assert!(ds.push(NdArray::zeros(&[2, 2, 2]), NdArray::zeros(&[1, 2, 2])).is_err());
    }

    #[test]
    fn batch_stacks_in_order() {
        let ds = tiny();
        let (x, y) = ds.batch(&[2, 0]);
        assert_eq!(x.shape(), &[2, 1, 2, 2]);
        assert_eq!(x.as_slice()[0], 2.0);
        assert_eq!(x.as_slice()[4], 0.0);
        assert_eq!(y.as_slice()[0], -2.0);
    }

    #[test]
    fn shuffled_batches_cover_everything() {
        let ds = tiny();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let batches = ds.shuffled_batches(2, &mut rng);
        let mut seen: Vec<usize> = batches.concat();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let ds = tiny();
        let pairs: Vec<_> = ds.iter().collect();
        assert_eq!(pairs.len(), 5);
        for (i, (x, y)) in pairs.iter().enumerate() {
            assert_eq!(x.as_slice()[0], i as f32);
            assert_eq!(y.as_slice()[0], -(i as f32));
        }
    }

    #[test]
    fn with_capacity_and_extend_pairs() {
        let mut ds = Dataset::with_capacity(4);
        assert!(ds.capacity() >= 4);
        ds.extend_pairs(
            (0..4).map(|i| {
                (NdArray::full(&[1, 2, 2], i as f32), NdArray::full(&[1, 2, 2], i as f32 + 0.5))
            }),
        )
        .unwrap();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.sample(3).1.as_slice()[0], 3.5);
        // Mismatched pair errors; earlier pairs are kept.
        let err = ds.extend_pairs([(NdArray::zeros(&[2, 2, 2]), NdArray::zeros(&[1, 2, 2]))]);
        assert!(err.is_err());
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn split_off_takes_tail() {
        let mut ds = tiny();
        let val = ds.split_off(2);
        assert_eq!(ds.len(), 3);
        assert_eq!(val.len(), 2);
        assert_eq!(val.sample(0).0.as_slice()[0], 3.0);
    }
}
