//! Weight serialization in a self-contained text format.
//!
//! Parameters are saved positionally (the order of
//! [`crate::Module::parameters`] is the contract), each with its shape, so
//! loading validates architecture compatibility. The format is plain text:
//!
//! ```text
//! neurfill-weights v1
//! param 0 shape 8 6 3 3
//! <one f32 per line, row-major, in hexadecimal bit pattern>
//! ...
//! ```
//!
//! Hexadecimal bit patterns round-trip `f32` exactly.

use crate::module::Module;
use neurfill_tensor::NdArray;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

const MAGIC: &str = "neurfill-weights v1";

/// Serializes the parameters of `module` to a writer.
///
/// A `&mut` reference can be passed for `w` (see `std::io::Write`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_parameters<W: Write>(module: &dyn Module, mut w: W) -> io::Result<()> {
    let params = module.parameters();
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "count {}", params.len())?;
    for (i, p) in params.iter().enumerate() {
        write_block(&mut w, "param", i, &p.value())?;
    }
    let buffers = module.buffers();
    writeln!(w, "buffers {}", buffers.len())?;
    for (i, b) in buffers.iter().enumerate() {
        write_block(&mut w, "buffer", i, &b.borrow())?;
    }
    Ok(())
}

fn write_block<W: Write>(w: &mut W, kind: &str, i: usize, data: &NdArray) -> io::Result<()> {
    let mut header = format!("{kind} {i} shape");
    for d in data.shape() {
        let _ = write!(header, " {d}");
    }
    writeln!(w, "{header}")?;
    let mut buf = String::with_capacity(data.numel() * 9);
    for v in data.as_slice() {
        let _ = writeln!(buf, "{:08x}", v.to_bits());
    }
    w.write_all(buf.as_bytes())
}

/// Restores parameters saved by [`save_parameters`] into `module`.
///
/// A `&mut` reference can be passed for `r` (see `std::io::Read`).
///
/// # Errors
///
/// Returns `InvalidData` when the stream is not a weight file, the
/// parameter count differs, or any shape disagrees with the module.
pub fn load_parameters<R: Read>(module: &dyn Module, r: R) -> io::Result<()> {
    let mut lines = BufReader::new(r).lines();
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let magic = lines.next().ok_or_else(|| bad("empty weight file".into()))??;
    if magic.trim() != MAGIC {
        return Err(bad(format!("bad magic line: {magic:?}")));
    }
    let count_line = lines.next().ok_or_else(|| bad("missing count".into()))??;
    let count: usize = count_line
        .strip_prefix("count ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad(format!("bad count line: {count_line:?}")))?;
    let params = module.parameters();
    if params.len() != count {
        return Err(bad(format!("weight file has {count} parameters but module has {}", params.len())));
    }
    for (i, p) in params.iter().enumerate() {
        let arr = read_block(&mut lines, "param", i, &p.shape())?;
        p.set_data(arr);
    }
    // The buffers section is required by the v1 format.
    let buffers = module.buffers();
    let buf_line = lines.next().ok_or_else(|| bad("missing buffers section".into()))??;
    let buf_count: usize = buf_line
        .strip_prefix("buffers ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad(format!("bad buffers line: {buf_line:?}")))?;
    if buffers.len() != buf_count {
        return Err(bad(format!(
            "weight file has {buf_count} buffers but module has {}",
            buffers.len()
        )));
    }
    for (i, b) in buffers.iter().enumerate() {
        let shape = b.borrow().shape().to_vec();
        let arr = read_block(&mut lines, "buffer", i, &shape)?;
        *b.borrow_mut() = arr;
    }
    Ok(())
}

fn read_block(
    lines: &mut impl Iterator<Item = io::Result<String>>,
    kind: &'static str,
    i: usize,
    expect_shape: &[usize],
) -> io::Result<NdArray> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let header = lines.next().ok_or_else(|| bad(format!("missing header for {kind} {i}")))??;
    let shape = parse_header(&header, kind, i).map_err(bad)?;
    if shape != expect_shape {
        return Err(bad(format!("{kind} {i}: file shape {shape:?} != module shape {expect_shape:?}")));
    }
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        let line = lines.next().ok_or_else(|| bad(format!("truncated data for {kind} {i}")))??;
        let hex = line.trim();
        // Values are written as exactly 8 hex digits; anything shorter is a
        // truncated stream that would otherwise parse to a corrupt f32.
        if hex.len() != 8 {
            return Err(bad(format!("bad value {line:?}: expected 8 hex digits")));
        }
        let bits = u32::from_str_radix(hex, 16).map_err(|e| bad(format!("bad value {line:?}: {e}")))?;
        data.push(f32::from_bits(bits));
    }
    NdArray::from_vec(data, &shape).map_err(|e| bad(format!("shape error for {kind} {i}: {e}")))
}

fn parse_header(header: &str, kind: &str, expect_index: usize) -> Result<Vec<usize>, String> {
    let mut it = header.split_whitespace();
    if it.next() != Some(kind) {
        return Err(format!("bad {kind} header: {header:?}"));
    }
    let idx: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad {kind} index in {header:?}"))?;
    if idx != expect_index {
        return Err(format!("{kind} index {idx} out of order (expected {expect_index})"));
    }
    if it.next() != Some("shape") {
        return Err(format!("missing shape in {header:?}"));
    }
    it.map(|s| s.parse().map_err(|e| format!("bad extent {s:?}: {e}"))).collect()
}

/// Saves module parameters to a file path.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn save_to_file(module: &dyn Module, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    save_parameters(module, io::BufWriter::new(f))
}

/// Loads module parameters from a file path.
///
/// # Errors
///
/// Propagates file-system and format errors.
pub fn load_from_file(module: &dyn Module, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::open(path)?;
    load_parameters(module, BufReader::new(f))
}

/// Copies parameter values from `src` into `dst` (architectures must match
/// positionally).
///
/// # Errors
///
/// Returns `InvalidData` on count or shape mismatch.
pub fn copy_parameters(src: &dyn Module, dst: &dyn Module) -> io::Result<()> {
    let sp = src.parameters();
    let dp = dst.parameters();
    if sp.len() != dp.len() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "parameter count mismatch"));
    }
    for (s, d) in sp.iter().zip(&dp) {
        if s.shape() != d.shape() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "parameter shape mismatch"));
        }
        d.set_data(s.value());
    }
    let sb = src.buffers();
    let db = dst.buffers();
    if sb.len() != db.len() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "buffer count mismatch"));
    }
    for (s, d) in sb.iter().zip(&db) {
        *d.borrow_mut() = s.borrow().clone();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Conv2d;
    use crate::unet::{UNet, UNetConfig};
    use neurfill_tensor::Tensor as T;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_exact_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let b = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let mut buf = Vec::new();
        save_parameters(&a, &mut buf).unwrap();
        load_parameters(&b, buf.as_slice()).unwrap();
        for (pa, pb) in a.parameters().iter().zip(b.parameters()) {
            assert_eq!(pa.value(), pb.value());
        }
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let b = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        let mut buf = Vec::new();
        save_parameters(&a, &mut buf).unwrap();
        assert!(load_parameters(&b, buf.as_slice()).is_err());
    }

    #[test]
    fn load_rejects_garbage() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        assert!(load_parameters(&a, b"not a weight file".as_slice()).is_err());
    }

    #[test]
    fn unet_roundtrip_produces_identical_outputs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = UNetConfig { in_channels: 2, out_channels: 1, base_channels: 2, depth: 1 };
        let a = UNet::new(cfg.clone(), &mut rng);
        let b = UNet::new(cfg, &mut rng);
        use crate::module::Module as _;
        // Drift a's running statistics so the roundtrip must carry buffers.
        let x = T::constant(neurfill_tensor::NdArray::from_fn(&[2, 2, 4, 4], |i| i as f32 * 0.1));
        for _ in 0..5 {
            a.forward(&x).unwrap();
        }
        let mut buf = Vec::new();
        save_parameters(&a, &mut buf).unwrap();
        load_parameters(&b, buf.as_slice()).unwrap();
        a.set_training(false);
        b.set_training(false);
        let probe = T::constant(neurfill_tensor::NdArray::from_fn(&[1, 2, 4, 4], |i| i as f32 * 0.1));
        let ya = a.forward(&probe).unwrap().value();
        let yb = b.forward(&probe).unwrap().value();
        assert_eq!(ya, yb);
    }

    #[test]
    fn copy_parameters_carries_buffers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = UNetConfig { in_channels: 1, out_channels: 1, base_channels: 2, depth: 1 };
        let a = UNet::new(cfg.clone(), &mut rng);
        let b = UNet::new(cfg, &mut rng);
        use crate::module::Module as _;
        let x = T::constant(neurfill_tensor::NdArray::from_fn(&[2, 1, 4, 4], |i| i as f32));
        for _ in 0..5 {
            a.forward(&x).unwrap();
        }
        copy_parameters(&a, &b).unwrap();
        for (ba, bb) in a.buffers().iter().zip(b.buffers()) {
            assert_eq!(*ba.borrow(), *bb.borrow());
        }
    }
}
