//! # neurfill-nn
//!
//! Neural-network building blocks on top of [`neurfill_tensor`]: layers,
//! the UNet surrogate architecture (paper §IV-A, Fig. 4), optimizers, loss
//! functions, datasets and a training loop implementing the pre-training
//! objective of the NeurFill paper (Eq. 20).
//!
//! # Example
//!
//! ```
//! use neurfill_nn::{UNet, UNetConfig, Module};
//! use neurfill_tensor::{NdArray, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = UNet::new(UNetConfig { in_channels: 4, ..UNetConfig::default() }, &mut rng);
//! let layout_params = Tensor::constant(NdArray::zeros(&[1, 4, 32, 32]));
//! let height_profile = net.forward(&layout_params)?;
//! assert_eq!(height_profile.shape(), vec![1, 1, 32, 32]);
//! # Ok::<(), neurfill_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod data;
pub mod layers;
pub mod loss;
pub mod metrics;
mod module;
pub mod optim;
pub mod quant;
pub mod schedule;
pub mod serialize;
pub mod trainer;
mod unet;

pub use batch::forward_batched;
pub use data::Dataset;
pub use module::{Buffer, Module};
pub use optim::{clip_grad_norm, Adam, AdamState, Optimizer, Sgd};
pub use quant::{calibrate, CalibrationScales, QuantUNet};
pub use schedule::LrSchedule;
pub use trainer::{evaluate, fit, EpochStats, TrainConfig};
pub use unet::{UNet, UNetConfig};
