//! A small supervised training loop used for UNet pre-training (paper
//! §IV-F, Eq. 20).

use crate::data::Dataset;
use crate::loss::mse_loss;
use crate::module::Module;
use crate::optim::{Adam, Optimizer};
use neurfill_tensor::{Result, Tensor};
use rand::Rng;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 4, lr: 1e-3, lr_decay: 1.0 }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Mean validation loss (when a validation set was supplied).
    pub val_loss: Option<f32>,
}

/// Trains `model` on `train` with MSE loss and Adam.
///
/// Returns per-epoch statistics. `on_epoch` is invoked after each epoch
/// (use it for logging or early stopping via returning `false`).
///
/// # Errors
///
/// Propagates shape errors from the model's forward pass.
pub fn fit(
    model: &dyn Module,
    train: &Dataset,
    val: Option<&Dataset>,
    config: &TrainConfig,
    rng: &mut impl Rng,
    mut on_epoch: impl FnMut(&EpochStats) -> bool,
) -> Result<Vec<EpochStats>> {
    let mut opt = Adam::new(model.parameters(), config.lr);
    let mut history = Vec::with_capacity(config.epochs);
    model.set_training(true);
    for epoch in 0..config.epochs {
        let mut total = 0.0;
        let mut batches = 0;
        for idx in train.shuffled_batches(config.batch_size, rng) {
            let (x, y) = train.batch(&idx);
            opt.zero_grad();
            let pred = model.forward(&Tensor::constant(x))?;
            let loss = mse_loss(&pred, &Tensor::constant(y))?;
            total += loss.item();
            batches += 1;
            loss.backward()?;
            opt.step();
        }
        let val_loss = match val {
            Some(v) if !v.is_empty() => Some(evaluate(model, v, config.batch_size)?),
            _ => None,
        };
        let stats = EpochStats { epoch, train_loss: total / batches.max(1) as f32, val_loss };
        let go_on = on_epoch(&stats);
        history.push(stats);
        opt.set_lr(opt.lr() * config.lr_decay);
        if !go_on {
            break;
        }
    }
    model.set_training(false);
    Ok(history)
}

/// Mean MSE of `model` over `data` in evaluation mode.
///
/// # Errors
///
/// Propagates shape errors from the model's forward pass.
pub fn evaluate(model: &dyn Module, data: &Dataset, batch_size: usize) -> Result<f32> {
    model.set_training(false);
    let mut total = 0.0;
    let mut batches = 0;
    let idx: Vec<usize> = (0..data.len()).collect();
    for chunk in idx.chunks(batch_size.max(1)) {
        let (x, y) = data.batch(chunk);
        let pred = model.forward(&Tensor::constant(x))?;
        total += mse_loss(&pred, &Tensor::constant(y))?.item();
        batches += 1;
    }
    model.set_training(true);
    Ok(total / batches.max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Conv2d;
    use neurfill_tensor::NdArray;
    use rand::SeedableRng;

    /// A 1×1 conv can represent y = 2x exactly; training should find it.
    #[test]
    fn fit_learns_linear_map() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let model = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        let mut ds = Dataset::new();
        for i in 0..16 {
            let x = NdArray::full(&[1, 2, 2], i as f32 * 0.1);
            let y = x.scale(2.0);
            ds.push(x, y).unwrap();
        }
        let cfg = TrainConfig { epochs: 200, batch_size: 4, lr: 0.05, lr_decay: 1.0 };
        let history = fit(&model, &ds, None, &cfg, &mut rng, |_| true).unwrap();
        let last = history.last().unwrap();
        assert!(last.train_loss < 1e-4, "loss = {}", last.train_loss);
    }

    #[test]
    fn early_stop_callback_halts_training() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let model = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        let mut ds = Dataset::new();
        ds.push(NdArray::ones(&[1, 2, 2]), NdArray::ones(&[1, 2, 2])).unwrap();
        let cfg = TrainConfig { epochs: 50, batch_size: 1, lr: 0.01, lr_decay: 1.0 };
        let history = fit(&model, &ds, None, &cfg, &mut rng, |s| s.epoch < 2).unwrap();
        assert_eq!(history.len(), 3);
    }

    #[test]
    fn validation_loss_is_reported() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let model = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        let mut ds = Dataset::new();
        for i in 0..8 {
            ds.push(NdArray::full(&[1, 2, 2], i as f32), NdArray::full(&[1, 2, 2], i as f32)).unwrap();
        }
        let val = ds.split_off(2);
        let cfg = TrainConfig { epochs: 1, batch_size: 2, lr: 0.01, lr_decay: 1.0 };
        let history = fit(&model, &ds, Some(&val), &cfg, &mut rng, |_| true).unwrap();
        assert!(history[0].val_loss.is_some());
    }
}
