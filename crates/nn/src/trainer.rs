//! A small supervised training loop used for UNet pre-training (paper
//! §IV-F, Eq. 20).

use crate::data::Dataset;
use crate::loss::mse_loss;
use crate::module::Module;
use crate::optim::{Adam, Optimizer};
use crate::schedule::LrSchedule;
use neurfill_tensor::{Result, Tensor};
use rand::Rng;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Multiplicative learning-rate decay applied after each epoch
    /// (composes with `schedule`; keep one of the two at identity).
    pub lr_decay: f32,
    /// Learning-rate schedule over epochs, applied as a multiplier of
    /// `lr` (e.g. warmup or cosine annealing).
    pub schedule: LrSchedule,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 4, lr: 1e-3, lr_decay: 1.0, schedule: LrSchedule::Constant }
    }
}

impl TrainConfig {
    /// The effective learning rate at `epoch`: the schedule's rate times
    /// the accumulated `lr_decay`. This is the exact value the optimizer
    /// runs with during that epoch.
    #[must_use]
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let decayed = self.schedule.lr_at(epoch, f64::from(self.lr))
            * f64::from(self.lr_decay).powi(i32::try_from(epoch).unwrap_or(i32::MAX));
        decayed as f32
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Mean validation loss (when a validation set was supplied).
    pub val_loss: Option<f32>,
    /// Learning rate the epoch ran with.
    pub lr: f32,
}

/// Restores evaluation mode when dropped, so no exit path — normal return,
/// early stop, `?` error propagation, or panic — can leave a model stuck
/// in training mode.
struct EvalOnDrop<'a>(&'a dyn Module);

impl Drop for EvalOnDrop<'_> {
    fn drop(&mut self) {
        self.0.set_training(false);
    }
}

/// Trains `model` on `train` with MSE loss and Adam.
///
/// Returns per-epoch statistics. `on_epoch` is invoked after each epoch
/// (use it for logging or early stopping via returning `false`). The
/// model is left in evaluation mode on every exit path, including errors.
///
/// # Errors
///
/// Propagates shape errors from the model's forward pass.
pub fn fit(
    model: &dyn Module,
    train: &Dataset,
    val: Option<&Dataset>,
    config: &TrainConfig,
    rng: &mut impl Rng,
    mut on_epoch: impl FnMut(&EpochStats) -> bool,
) -> Result<Vec<EpochStats>> {
    let mut opt = Adam::new(model.parameters(), config.lr);
    let mut history = Vec::with_capacity(config.epochs);
    let guard = EvalOnDrop(model);
    for epoch in 0..config.epochs {
        model.set_training(true);
        let lr = config.lr_at(epoch);
        opt.set_lr(lr);
        let mut total = 0.0;
        let mut batches = 0;
        for idx in train.shuffled_batches(config.batch_size, rng) {
            let (x, y) = train.batch(&idx);
            opt.zero_grad();
            let pred = model.forward(&Tensor::constant(x))?;
            let loss = mse_loss(&pred, &Tensor::constant(y))?;
            total += loss.item();
            batches += 1;
            loss.backward()?;
            opt.step();
        }
        let val_loss = match val {
            Some(v) if !v.is_empty() => Some(evaluate(model, v, config.batch_size)?),
            _ => None,
        };
        let stats = EpochStats { epoch, train_loss: total / batches.max(1) as f32, val_loss, lr };
        let go_on = on_epoch(&stats);
        history.push(stats);
        if !go_on {
            break;
        }
    }
    drop(guard);
    Ok(history)
}

/// Mean MSE of `model` over `data` in evaluation mode.
///
/// The model is left in evaluation mode (callers mid-training re-enable
/// training mode themselves, as [`fit`] does at each epoch start).
///
/// # Errors
///
/// Propagates shape errors from the model's forward pass.
pub fn evaluate(model: &dyn Module, data: &Dataset, batch_size: usize) -> Result<f32> {
    model.set_training(false);
    let mut total = 0.0;
    let mut batches = 0;
    let idx: Vec<usize> = (0..data.len()).collect();
    for chunk in idx.chunks(batch_size.max(1)) {
        let (x, y) = data.batch(chunk);
        let pred = model.forward(&Tensor::constant(x))?;
        total += mse_loss(&pred, &Tensor::constant(y))?.item();
        batches += 1;
    }
    Ok(total / batches.max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Conv2d;
    use neurfill_tensor::NdArray;
    use rand::SeedableRng;
    use std::cell::Cell;

    /// A 1×1 conv can represent y = 2x exactly; training should find it.
    #[test]
    fn fit_learns_linear_map() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let model = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        let mut ds = Dataset::new();
        for i in 0..16 {
            let x = NdArray::full(&[1, 2, 2], i as f32 * 0.1);
            let y = x.scale(2.0);
            ds.push(x, y).unwrap();
        }
        let cfg = TrainConfig { epochs: 200, batch_size: 4, lr: 0.05, ..TrainConfig::default() };
        let history = fit(&model, &ds, None, &cfg, &mut rng, |_| true).unwrap();
        let last = history.last().unwrap();
        assert!(last.train_loss < 1e-4, "loss = {}", last.train_loss);
    }

    #[test]
    fn early_stop_callback_halts_training() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let model = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        let mut ds = Dataset::new();
        ds.push(NdArray::ones(&[1, 2, 2]), NdArray::ones(&[1, 2, 2])).unwrap();
        let cfg = TrainConfig { epochs: 50, batch_size: 1, lr: 0.01, ..TrainConfig::default() };
        let history = fit(&model, &ds, None, &cfg, &mut rng, |s| s.epoch < 2).unwrap();
        assert_eq!(history.len(), 3);
    }

    #[test]
    fn validation_loss_is_reported() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let model = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        let mut ds = Dataset::new();
        for i in 0..8 {
            ds.push(NdArray::full(&[1, 2, 2], i as f32), NdArray::full(&[1, 2, 2], i as f32)).unwrap();
        }
        let val = ds.split_off(2);
        let cfg = TrainConfig { epochs: 1, batch_size: 2, lr: 0.01, ..TrainConfig::default() };
        let history = fit(&model, &ds, Some(&val), &cfg, &mut rng, |_| true).unwrap();
        assert!(history[0].val_loss.is_some());
    }

    /// A model wrapper that records the last training-mode switch, so tests
    /// can observe what state [`fit`] leaves a model in.
    struct ModeProbe {
        inner: Conv2d,
        training: Cell<bool>,
    }

    impl Module for ModeProbe {
        fn forward(&self, input: &Tensor) -> Result<Tensor> {
            self.inner.forward(input)
        }
        fn parameters(&self) -> Vec<Tensor> {
            self.inner.parameters()
        }
        fn set_training(&self, training: bool) {
            self.training.set(training);
            self.inner.set_training(training);
        }
    }

    fn probe(rng: &mut impl Rng) -> ModeProbe {
        ModeProbe { inner: Conv2d::new(1, 1, 1, 1, 0, rng), training: Cell::new(true) }
    }

    #[test]
    fn fit_restores_eval_mode_after_early_stop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let model = probe(&mut rng);
        let mut ds = Dataset::new();
        ds.push(NdArray::ones(&[1, 2, 2]), NdArray::ones(&[1, 2, 2])).unwrap();
        let cfg = TrainConfig { epochs: 10, batch_size: 1, lr: 0.01, ..TrainConfig::default() };
        let history = fit(&model, &ds, None, &cfg, &mut rng, |_| false).unwrap();
        assert_eq!(history.len(), 1);
        assert!(!model.training.get(), "early stop must leave the model in eval mode");
    }

    #[test]
    fn fit_restores_eval_mode_after_mid_epoch_error() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let model = probe(&mut rng); // expects 1 input channel
        let mut ds = Dataset::new();
        // 2-channel inputs make the forward pass fail inside the epoch.
        ds.push(NdArray::ones(&[2, 2, 2]), NdArray::ones(&[1, 2, 2])).unwrap();
        let cfg = TrainConfig { epochs: 3, batch_size: 1, lr: 0.01, ..TrainConfig::default() };
        assert!(fit(&model, &ds, None, &cfg, &mut rng, |_| true).is_err());
        assert!(!model.training.get(), "error propagation must leave the model in eval mode");
    }

    #[test]
    fn per_epoch_lr_follows_schedule() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let model = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        let mut ds = Dataset::new();
        ds.push(NdArray::ones(&[1, 2, 2]), NdArray::ones(&[1, 2, 2])).unwrap();
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 1,
            lr: 0.4,
            lr_decay: 1.0,
            schedule: LrSchedule::Warmup {
                epochs: 2,
                then: Box::new(LrSchedule::StepDecay { every: 2, factor: 0.5 }),
            },
        };
        let history = fit(&model, &ds, None, &cfg, &mut rng, |_| true).unwrap();
        let lrs: Vec<f32> = history.iter().map(|s| s.lr).collect();
        let expect: Vec<f32> = (0..6).map(|e| cfg.lr_at(e)).collect();
        assert_eq!(lrs, expect);
        // Warmup: 0.2, 0.4; then step decay re-indexed from the warmup end.
        assert!((lrs[0] - 0.2).abs() < 1e-7);
        assert!((lrs[1] - 0.4).abs() < 1e-7);
        assert!((lrs[3] - 0.4).abs() < 1e-7);
        assert!((lrs[4] - 0.2).abs() < 1e-7);
    }

    #[test]
    fn lr_decay_compounds_per_epoch() {
        let cfg = TrainConfig { lr: 1.0, lr_decay: 0.5, ..TrainConfig::default() };
        assert!((cfg.lr_at(0) - 1.0).abs() < 1e-7);
        assert!((cfg.lr_at(1) - 0.5).abs() < 1e-7);
        assert!((cfg.lr_at(3) - 0.125).abs() < 1e-7);
    }
}
