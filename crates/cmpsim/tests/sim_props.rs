//! Property-based tests of the CMP simulator's physical invariants.

use neurfill_cmpsim::{contact, CmpSimulator, LayerInput, PadKernel, ProcessParams};
use proptest::prelude::*;

fn params() -> ProcessParams {
    ProcessParams { steps: 12, kernel_radius: 2, ..ProcessParams::default() }
}

fn layer_input(rows: usize, cols: usize, densities: Vec<f64>) -> LayerInput {
    LayerInput {
        rows,
        cols,
        perimeter: densities.iter().map(|d| 2.0 * 10_000.0 * d / 0.2).collect(),
        avg_width: vec![0.2; rows * cols],
        density: densities,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn heights_are_finite_and_below_initial(
        densities in proptest::collection::vec(0.05f64..0.95, 36)
    ) {
        let sim = CmpSimulator::new(params()).unwrap();
        let out = sim.simulate_layer(&layer_input(6, 6, densities));
        for &h in out.heights() {
            prop_assert!(h.is_finite());
            prop_assert!(h < params().initial_height);
            prop_assert!(h > 0.0, "over-polished to {h}");
        }
        for &d in out.dishing() {
            prop_assert!(d >= 0.0 && d <= params().initial_step + 1e-9);
        }
        for &e in out.erosion() {
            prop_assert!(e >= -1e-9);
        }
    }

    #[test]
    fn uniform_density_gives_flat_surface(d in 0.1f64..0.9) {
        let sim = CmpSimulator::new(params()).unwrap();
        let out = sim.simulate_layer(&layer_input(5, 5, vec![d; 25]));
        prop_assert!(out.height_range() < 1e-9, "range {}", out.height_range());
    }

    #[test]
    fn simulation_is_permutation_equivariant_under_transpose(
        densities in proptest::collection::vec(0.1f64..0.9, 25)
    ) {
        // Transposing the input pattern transposes the output heights
        // (the kernel is isotropic and the physics is position-free).
        let sim = CmpSimulator::new(params()).unwrap();
        let base = layer_input(5, 5, densities.clone());
        let mut transposed_density = vec![0.0; 25];
        for r in 0..5 {
            for c in 0..5 {
                transposed_density[c * 5 + r] = densities[r * 5 + c];
            }
        }
        let transposed = layer_input(5, 5, transposed_density);
        let a = sim.simulate_layer(&base);
        let b = sim.simulate_layer(&transposed);
        for r in 0..5 {
            for c in 0..5 {
                prop_assert!((a.height(r, c) - b.height(c, r)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn pressure_balance_holds_for_any_topography(
        heights in proptest::collection::vec(400.0f64..600.0, 49)
    ) {
        let p = params();
        let z_ref = contact::solve_reference_plane(&heights, &p);
        let q = contact::window_pressures(&heights, z_ref, &p);
        let mean: f64 = q.iter().sum::<f64>() / q.len() as f64;
        prop_assert!((mean - p.applied_pressure).abs() < 1e-5, "mean pressure {mean}");
        prop_assert!(q.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn kernel_preserves_mean_on_interior(
        field in proptest::collection::vec(0.0f64..1.0, 81)
    ) {
        // Edge renormalization keeps values a convex combination, so the
        // smoothed field stays within the input's range.
        let k = PadKernel::exponential(1.5, 2);
        let out = k.apply(&field, 9, 9);
        let lo = field.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in out {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    #[test]
    fn more_polish_time_removes_more_material(
        densities in proptest::collection::vec(0.2f64..0.8, 16)
    ) {
        let short = CmpSimulator::new(ProcessParams { steps: 5, kernel_radius: 2, ..ProcessParams::default() }).unwrap();
        let long = CmpSimulator::new(ProcessParams { steps: 25, kernel_radius: 2, ..ProcessParams::default() }).unwrap();
        let input = layer_input(4, 4, densities);
        let a = short.simulate_layer(&input);
        let b = long.simulate_layer(&input);
        for (ha, hb) in a.heights().iter().zip(b.heights()) {
            prop_assert!(hb < ha, "longer polish must sit lower: {hb} !< {ha}");
        }
    }
}
