//! Bit-exactness contracts of the optimized simulator kernels.
//!
//! The interior/border split of `PadKernel::apply` and the optimized
//! contact solver must reproduce their reference implementations bit for
//! bit — these properties compare `f64` bit patterns, never values. The
//! opt-in sorted contact solver is held to bisection tolerance instead
//! (its force sum runs in sorted order), and full `simulate` output is
//! checked byte-identical between plain and instrumented simulators.

use neurfill_cmpsim::contact::{
    solve_reference_plane, solve_reference_plane_reference, solve_reference_plane_sorted,
};
use neurfill_cmpsim::{CmpSimulator, ContactSolve, NumericsTier, PadKernel, ProcessParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_field(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-50.0f64..500.0)).collect()
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} ({x} vs {y})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Interior fast path + border class table == reference bounds-checked
    // loop, bitwise, on random grids (including grids smaller than the
    // kernel window, where everything is border).
    #[test]
    fn pad_kernel_split_is_bitwise_equal_to_reference(
        rows in 1usize..20,
        cols in 1usize..20,
        radius in 0usize..5,
        character_length in 0.4f64..4.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let field = random_field(&mut rng, rows * cols);
        let kernel = PadKernel::exponential(character_length, radius);
        let fast = kernel.apply(&field, rows, cols);
        let slow = kernel.apply_reference(&field, rows, cols);
        for (i, (x, y)) in fast.iter().zip(&slow).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "{}x{} r={} element {}", rows, cols, radius, i
            );
        }
    }

    // Optimized contact solver == reference solver, bitwise, across
    // random height fields and process parameters — including flat
    // fields, where the bracket's ulp-tie walk path is most likely.
    #[test]
    fn contact_solver_is_bitwise_equal_to_reference(
        n in 1usize..300,
        base in -100.0f64..600.0,
        spread in 0.0f64..80.0,
        exponent in prop_oneof![Just(1.0f64), Just(1.3), Just(1.5)],
        penetration in 1.0f64..60.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let heights: Vec<f64> =
            (0..n).map(|_| base + rng.gen_range(0.0..=1.0) * spread).collect();
        let params = ProcessParams {
            contact_exponent: exponent,
            reference_penetration: penetration,
            ..ProcessParams::default()
        };
        let want = solve_reference_plane_reference(&heights, &params);
        let got = solve_reference_plane(&heights, &params);
        prop_assert_eq!(want.to_bits(), got.to_bits(), "{} vs {}", want, got);
    }

    // Fast-tier FFT path vs the spatial path on random grids — every
    // clip class (boards smaller than the window are all border), odd
    // and even extents — within the documented per-pixel tolerance
    // |fft − spatial| ≤ 1e-9 · (|spatial| + max|field|).
    #[test]
    fn fft_kernel_tracks_spatial_kernel(
        rows in 1usize..24,
        cols in 1usize..24,
        radius in 0usize..6,
        character_length in 0.4f64..4.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfff7_0001);
        let field = random_field(&mut rng, rows * cols);
        let fmax = field.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let kernel = PadKernel::exponential(character_length, radius);
        let spatial = kernel.apply(&field, rows, cols);
        let fft = kernel.apply_fft(&field, rows, cols);
        for (i, (s, f)) in spatial.iter().zip(&fft).enumerate() {
            let bound = 1e-9 * (s.abs() + fmax);
            prop_assert!(
                (s - f).abs() <= bound,
                "{}x{} r={} element {}: spatial {} vs fft {} (bound {:e})",
                rows, cols, radius, i, s, f, bound
            );
        }
    }

    // A Fast-tier kernel below the FFT crossover radius shares the
    // spatial path bit for bit — the tier switch alone must not change
    // small-radius results.
    #[test]
    fn fast_tier_below_crossover_is_bitwise_spatial(
        rows in 1usize..20,
        cols in 1usize..20,
        radius in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0dd5_eed5);
        let field = random_field(&mut rng, rows * cols);
        let exact = PadKernel::exponential(1.5, radius);
        let fast = exact.clone().with_tier(NumericsTier::Fast);
        let a = exact.apply(&field, rows, cols);
        let b = fast.apply(&field, rows, cols);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    // Sorted prefix-sum solver agrees with the exact solver to bisection
    // tolerance (it is opt-in precisely because it is not bit-identical).
    #[test]
    fn sorted_solver_tracks_exact_solver(
        n in 1usize..300,
        spread in 0.5f64..80.0,
        exponent in prop_oneof![Just(1.0f64), Just(1.5)],
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let heights: Vec<f64> =
            (0..n).map(|_| 500.0 + rng.gen_range(0.0..=1.0) * spread).collect();
        let params =
            ProcessParams { contact_exponent: exponent, ..ProcessParams::default() };
        let exact = solve_reference_plane(&heights, &params);
        let sorted = solve_reference_plane_sorted(&heights, &params);
        prop_assert!((exact - sorted).abs() < 1e-6, "{} vs {}", exact, sorted);
    }
}

/// Degenerate pad-kernel grids: single row / single column strips where
/// the kernel window always clips on one axis.
#[test]
fn pad_kernel_matches_reference_on_strip_grids() {
    let mut rng = StdRng::seed_from_u64(42);
    for radius in [0usize, 1, 2, 4] {
        let kernel = PadKernel::exponential(1.5, radius);
        for &(rows, cols) in &[(1usize, 17usize), (17, 1), (1, 1), (2, 9), (9, 2)] {
            let field = random_field(&mut rng, rows * cols);
            assert_bits_eq(
                &kernel.apply(&field, rows, cols),
                &kernel.apply_reference(&field, rows, cols),
                &format!("{rows}x{cols} r={radius}"),
            );
        }
    }
}

/// Flat fields sit exactly on the contact bracket's mathematical
/// boundary (`mean_force(lo₀) = target` up to rounding) — pin the
/// optimized solver to the reference there explicitly.
#[test]
fn contact_solver_matches_reference_on_flat_fields() {
    for n in [1usize, 2, 3, 64, 1000] {
        for h in [0.0f64, 500.0, -250.0, 1e-12] {
            let heights = vec![h; n];
            let params = ProcessParams::default();
            let want = solve_reference_plane_reference(&heights, &params);
            let got = solve_reference_plane(&heights, &params);
            assert_eq!(want.to_bits(), got.to_bits(), "n={n} h={h}");
        }
    }
}

/// Full-chip simulation through the default (exact) path is byte-identical
/// between the plain simulator and one with the sorted solver only when
/// the former is used; the sorted solver stays within physical tolerance.
#[test]
fn simulate_is_unchanged_by_default_and_close_under_sorted_solver() {
    use neurfill_layout::{DesignKind, DesignSpec};
    let layout = DesignSpec::new(DesignKind::CmpTest, 10, 10, 3).generate();
    let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
    let exact = sim.clone().with_contact_solve(ContactSolve::Exact).simulate(&layout);
    let default = sim.simulate(&layout);
    assert_eq!(exact, default, "Exact must be the default solver");
    let sorted = sim.with_contact_solve(ContactSolve::SortedPrefix).simulate(&layout);
    for layer in 0..default.num_layers() {
        let a = default.layer(layer);
        let b = sorted.layer(layer);
        for (x, y) in a.heights().iter().zip(b.heights()) {
            assert!((x - y).abs() < 1e-5, "sorted solver drifted: {x} vs {y}");
        }
    }
}
