//! Certification harness for the Fast numerics tier (per-kernel layer).
//!
//! The Fast tier swaps three kernels — FFT pad convolution, the
//! FMA-contracted GEMM (certified in `neurfill-tensor`), and the sorted
//! prefix contact solver — behind [`NumericsTier`]. This suite pins the
//! cmpsim side of the contract:
//!
//! * **FFT vs spatial**: per pixel, `|fft − spatial| ≤ TOL_FFT ·
//!   (|spatial| + max|field|)` with `TOL_FFT = 1e-9`, across all clip
//!   classes, odd/even board extents, and radii {1, 3, 17, 64};
//! * **Sorted contact**: summation order is canonical (sort key ties
//!   broken by original index), so `z_ref` is bit-identical however the
//!   heights were assembled — pinned by permutation invariance and by
//!   1-vs-8-worker bit-equality of a Fast-tier sharded simulation;
//! * **Exact is default and unchanged**: the tier switch itself, at
//!   `Exact`, is byte-invisible everywhere;
//! * **Fast-tier simulator drift** on designs A/B/C stays within
//!   `TOL_HEIGHTS` of the exact tier after full polish loops.

use neurfill_cmpsim::contact::{solve_reference_plane_sorted, ContactSolve};
use neurfill_cmpsim::{
    map_sequential, simulate_layer_sharded, CmpSimulator, LayerInput, NumericsTier, PadKernel,
    ProcessParams, TileShard, FFT_MIN_RADIUS,
};
use neurfill_layout::{DesignKind, DesignSpec, Tiling};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Documented FFT-vs-spatial tolerance (see `cmpsim::kernel` docs):
/// relative to the output magnitude plus the field scale.
const TOL_FFT: f64 = 1e-9;

/// Fast-vs-exact full-simulation height tolerance on designs A/B/C
/// (FFT rounding + sorted-contact bisection drift, compounded over all
/// polish steps, stays orders of magnitude below this).
const TOL_HEIGHTS: f64 = 1e-5;

fn random_field(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-50.0f64..500.0)).collect()
}

fn assert_fft_close(kernel: &PadKernel, field: &[f64], rows: usize, cols: usize, what: &str) {
    let fmax = field.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let spatial = kernel.apply(field, rows, cols);
    let fft = kernel.apply_fft(field, rows, cols);
    for (i, (s, f)) in spatial.iter().zip(&fft).enumerate() {
        let bound = TOL_FFT * (s.abs() + fmax);
        assert!(
            (s - f).abs() <= bound,
            "{what}: pixel {i} spatial={s} fft={f} |Δ|={:e} bound={bound:e}",
            (s - f).abs()
        );
    }
}

/// FFT vs spatial at the satellite's radii {1, 3, 17, 64}. Board shapes
/// are chosen per radius so each case exercises interior + all four
/// border sides, odd and even extents, strips, and boards smaller than
/// the kernel window (all-border: every pixel clips on both axes).
#[test]
fn fft_matches_spatial_at_certified_radii() {
    let mut rng = StdRng::seed_from_u64(0x71e5);
    for &(radius, boards) in &[
        (1usize, &[(8usize, 8usize), (9, 13), (1, 20), (20, 1), (2, 2)][..]),
        (3, &[(16, 16), (9, 9), (7, 15), (2, 5), (1, 1)][..]),
        (17, &[(48, 48), (35, 41), (17, 64), (10, 10), (1, 40)][..]),
        (64, &[(20, 20), (48, 33), (1, 80), (80, 1)][..]),
    ] {
        let kernel = PadKernel::exponential(0.04 * (radius as f64).max(10.0), radius);
        for &(rows, cols) in boards {
            let field = random_field(&mut rng, rows * cols);
            assert_fft_close(&kernel, &field, rows, cols, &format!("r={radius} {rows}x{cols}"));
        }
    }
}

/// Plan caching: repeated applications on the same board shape (and on a
/// second shape through the same kernel) keep producing in-tolerance
/// results — the cached plan is shape-keyed, not last-use state.
#[test]
fn fft_plan_cache_serves_multiple_shapes() {
    let mut rng = StdRng::seed_from_u64(0x9141);
    let kernel = PadKernel::exponential(2.0, 9);
    for _ in 0..3 {
        for &(rows, cols) in &[(24usize, 24usize), (17, 31), (24, 24)] {
            let field = random_field(&mut rng, rows * cols);
            assert_fft_close(&kernel, &field, rows, cols, &format!("cached {rows}x{cols}"));
        }
    }
}

/// The Fast tier dispatches `apply` itself (not just `apply_fft`) through
/// the FFT above the crossover radius, and the result honors the bound.
#[test]
fn fast_tier_apply_dispatches_to_fft_within_bound() {
    let mut rng = StdRng::seed_from_u64(0xd15b);
    let radius = FFT_MIN_RADIUS;
    let exact = PadKernel::exponential(1.5, radius);
    let fast = exact.clone().with_tier(NumericsTier::Fast);
    let (rows, cols) = (30usize, 26usize);
    let field = random_field(&mut rng, rows * cols);
    let want_fft = exact.apply_fft(&field, rows, cols);
    let got = fast.apply(&field, rows, cols);
    for (w, g) in want_fft.iter().zip(&got) {
        assert_eq!(w.to_bits(), g.to_bits(), "fast apply must take the FFT path verbatim");
    }
    assert_fft_close(&exact, &field, rows, cols, "fast dispatch");
}

/// Sorted-prefix solver: the (height desc, index asc) sort key makes the
/// summation order canonical, so any permutation of the same multiset of
/// heights — in particular any worker count's assembly order — yields a
/// bit-identical `z_ref`, including fields riddled with exact ties.
#[test]
fn sorted_solver_is_permutation_invariant_bitwise() {
    let params = ProcessParams::default();
    let mut rng = StdRng::seed_from_u64(0x5027ed);
    // Heights drawn from a tiny value set: ~32 duplicates per value.
    let mut heights: Vec<f64> =
        (0..256).map(|_| 500.0 + f64::from(rng.gen_range(0u32..8)) * 2.5).collect();
    let want = solve_reference_plane_sorted(&heights, &params).to_bits();
    for shuffle in 0..10 {
        heights.shuffle(&mut rng);
        let got = solve_reference_plane_sorted(&heights, &params).to_bits();
        assert_eq!(want, got, "shuffle {shuffle} changed z_ref");
    }
}

/// A chunked threaded shard map (the same disjoint-chunk pattern the chip
/// crate's worker pool uses), for the worker-count bit-equality pin.
fn map_threaded(
    workers: usize,
) -> impl Fn(Vec<TileShard>, &(dyn Fn(TileShard) -> TileShard + Sync)) -> Vec<TileShard> {
    move |shards, f| {
        let len = shards.len();
        let mut slots: Vec<Option<TileShard>> = shards.into_iter().map(Some).collect();
        let chunk = len.div_ceil(workers).max(1);
        std::thread::scope(|scope| {
            for group in slots.chunks_mut(chunk) {
                scope.spawn(move || {
                    for slot in group {
                        if let Some(s) = slot.take() {
                            *slot = Some(f(s));
                        }
                    }
                });
            }
        });
        slots.into_iter().flatten().collect()
    }
}

/// Fast-tier sharded simulation (FFT smoothing + sorted contact) is
/// bit-identical between 1 and 8 workers: tile results are pure
/// functions of their inputs and the contact solve runs on the assembled
/// chip board in canonical order, so parallelism cannot reorder a sum.
#[test]
fn fast_tier_sharded_is_bit_identical_across_worker_counts() {
    let params = ProcessParams {
        kernel_radius: FFT_MIN_RADIUS,
        character_length: 3.0,
        steps: 4,
        ..ProcessParams::default()
    };
    let layout = DesignSpec::new(DesignKind::Fpga, 24, 24, 7).generate();
    let kernel = PadKernel::exponential(params.character_length, params.kernel_radius)
        .with_tier(NumericsTier::Fast);
    let tiling = Tiling::square(24, 24, 6, params.kernel_radius);
    let build = || -> Vec<TileShard> {
        tiling
            .tiles()
            .map(|t| {
                let sub = layout.crop(t.ext);
                TileShard::new(t, &LayerInput::from_layout(&sub, 0), &kernel, &params).unwrap()
            })
            .collect()
    };
    let (seq, _, _) = simulate_layer_sharded(
        build(),
        24,
        24,
        &params,
        &kernel,
        ContactSolve::SortedPrefix,
        &map_sequential,
    );
    for workers in [1usize, 8] {
        let map = map_threaded(workers);
        let (par, _, _) =
            simulate_layer_sharded(build(), 24, 24, &params, &kernel, ContactSolve::SortedPrefix, &map);
        assert_eq!(seq, par, "fast tier diverged at {workers} workers");
    }
}

/// `with_numerics(Exact)` is byte-invisible: same kernel path, same
/// solver, bit-identical full simulation — the Exact tier IS today's
/// behavior, pinned against a simulator that never heard of tiers.
#[test]
fn exact_tier_is_default_and_byte_identical() {
    assert_eq!(NumericsTier::default(), NumericsTier::Exact);
    assert_eq!(ContactSolve::for_tier(NumericsTier::Exact), ContactSolve::Exact);
    assert_eq!(ContactSolve::for_tier(NumericsTier::Fast), ContactSolve::SortedPrefix);
    let layout = DesignSpec::new(DesignKind::CmpTest, 12, 12, 3).generate();
    let plain = CmpSimulator::new(ProcessParams::fast()).unwrap();
    let tiered = plain.clone().with_numerics(NumericsTier::Exact);
    assert_eq!(plain.numerics(), NumericsTier::Exact);
    assert_eq!(plain.simulate(&layout), tiered.simulate(&layout));
}

/// Fast-tier full simulation tracks the exact tier within `TOL_HEIGHTS`
/// on designs A/B/C at an FFT-engaging radius.
#[test]
fn fast_tier_simulation_tracks_exact_on_designs_abc() {
    let params = ProcessParams {
        kernel_radius: FFT_MIN_RADIUS,
        character_length: 3.0,
        steps: 8,
        ..ProcessParams::default()
    };
    for (kind, seed) in [(DesignKind::CmpTest, 1u64), (DesignKind::Fpga, 2), (DesignKind::RiscV, 3)] {
        let layout = DesignSpec::new(kind, 24, 24, seed).generate();
        let exact = CmpSimulator::new(params.clone()).unwrap().simulate(&layout);
        let fast = CmpSimulator::new(params.clone())
            .unwrap()
            .with_numerics(NumericsTier::Fast)
            .simulate(&layout);
        assert_eq!(exact.num_layers(), fast.num_layers());
        for l in 0..exact.num_layers() {
            for (i, (a, b)) in exact.layer(l).heights().iter().zip(fast.layer(l).heights()).enumerate() {
                assert!(
                    (a - b).abs() <= TOL_HEIGHTS,
                    "{kind:?} layer {l} window {i}: exact={a} fast={b}"
                );
            }
        }
        // ΔH (the planarity figure of merit) agrees to the same tolerance.
        assert!((exact.max_height_range() - fast.max_height_range()).abs() <= 2.0 * TOL_HEIGHTS);
    }
}
