//! The pad-deformation weighting kernel.
//!
//! The rough polishing pad averages topography and pattern density over a
//! neighbourhood set by its character length (paper §III-B: 20–100 µm),
//! which is what makes the CMP model *local* and therefore learnable by a
//! convolutional network. The kernel is an exponentially decaying radial
//! weight, truncated at a configurable radius and renormalized at chip
//! edges.

/// A truncated radial exponential kernel over window grids.
#[derive(Debug, Clone, PartialEq)]
pub struct PadKernel {
    radius: usize,
    weights: Vec<f64>, // (2r+1)² window of weights
}

impl PadKernel {
    /// Builds a kernel `w(d) = exp(−d / character_length)` truncated at
    /// `radius` windows.
    ///
    /// # Panics
    ///
    /// Panics when `character_length` is not positive.
    #[must_use]
    pub fn exponential(character_length: f64, radius: usize) -> Self {
        assert!(character_length > 0.0, "character length must be positive");
        let size = 2 * radius + 1;
        let mut weights = vec![0.0; size * size];
        for dy in 0..size {
            for dx in 0..size {
                let y = dy as f64 - radius as f64;
                let x = dx as f64 - radius as f64;
                let d = (x * x + y * y).sqrt();
                weights[dy * size + dx] = (-d / character_length).exp();
            }
        }
        Self { radius, weights }
    }

    /// Kernel truncation radius in windows.
    #[must_use]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Applies the kernel to a row-major `rows × cols` field with
    /// edge renormalization (weights falling outside the chip are dropped
    /// and the remainder rescaled, so a constant field stays constant).
    ///
    /// # Panics
    ///
    /// Panics when `field.len() != rows * cols`.
    #[must_use]
    pub fn apply(&self, field: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        assert_eq!(field.len(), rows * cols, "field length mismatch");
        let r = self.radius as isize;
        let size = 2 * self.radius + 1;
        let mut out = vec![0.0; rows * cols];
        for i in 0..rows as isize {
            for j in 0..cols as isize {
                let mut acc = 0.0;
                let mut wsum = 0.0;
                for dy in -r..=r {
                    let y = i + dy;
                    if y < 0 || y >= rows as isize {
                        continue;
                    }
                    let wrow = ((dy + r) as usize) * size;
                    let frow = y as usize * cols;
                    for dx in -r..=r {
                        let x = j + dx;
                        if x < 0 || x >= cols as isize {
                            continue;
                        }
                        let w = self.weights[wrow + (dx + r) as usize];
                        acc += w * field[frow + x as usize];
                        wsum += w;
                    }
                }
                out[(i as usize) * cols + j as usize] = acc / wsum;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_is_preserved() {
        let k = PadKernel::exponential(1.5, 3);
        let field = vec![0.42; 8 * 8];
        let out = k.apply(&field, 8, 8);
        assert!(out.iter().all(|v| (v - 0.42).abs() < 1e-12));
    }

    #[test]
    fn smoothing_reduces_contrast() {
        let k = PadKernel::exponential(1.5, 3);
        let mut field = vec![0.0; 9 * 9];
        field[4 * 9 + 4] = 1.0;
        let out = k.apply(&field, 9, 9);
        let peak = out[4 * 9 + 4];
        assert!(peak < 1.0 && peak > 0.0);
        // Neighbours received some of the mass.
        assert!(out[4 * 9 + 5] > 0.0);
        // Monotone decay away from the impulse.
        assert!(out[4 * 9 + 5] > out[4 * 9 + 7]);
    }

    #[test]
    fn kernel_is_isotropic() {
        let k = PadKernel::exponential(2.0, 3);
        let mut field = vec![0.0; 11 * 11];
        field[5 * 11 + 5] = 1.0;
        let out = k.apply(&field, 11, 11);
        assert!((out[5 * 11 + 7] - out[7 * 11 + 5]).abs() < 1e-12);
        assert!((out[5 * 11 + 3] - out[5 * 11 + 7]).abs() < 1e-12);
    }

    #[test]
    fn edge_renormalization_keeps_mean_sane() {
        // A constant field must stay constant even at corners.
        let k = PadKernel::exponential(1.0, 2);
        let field = vec![1.0; 4 * 4];
        let out = k.apply(&field, 4, 4);
        assert!((out[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn longer_character_length_smooths_more() {
        let short = PadKernel::exponential(0.5, 4);
        let long = PadKernel::exponential(3.0, 4);
        let mut field = vec![0.0; 9 * 9];
        field[4 * 9 + 4] = 1.0;
        let ps = short.apply(&field, 9, 9)[4 * 9 + 4];
        let pl = long.apply(&field, 9, 9)[4 * 9 + 4];
        assert!(ps > pl, "short {ps} vs long {pl}");
    }
}
