//! The pad-deformation weighting kernel.
//!
//! The rough polishing pad averages topography and pattern density over a
//! neighbourhood set by its character length (paper §III-B: 20–100 µm),
//! which is what makes the CMP model *local* and therefore learnable by a
//! convolutional network. The kernel is an exponentially decaying radial
//! weight, truncated at a configurable radius and renormalized at chip
//! edges.
//!
//! [`PadKernel::apply`] is split into two paths that together reproduce
//! the straightforward bounds-checked loop (kept as
//! [`PadKernel::apply_reference`]) bit for bit:
//!
//! * an **interior fast path** for pixels at least `radius` away from
//!   every edge — no bounds checks, contiguous weight·field row dots,
//!   and one precomputed full-kernel renormalization sum shared by all
//!   interior pixels;
//! * a **border path** whose renormalization sums are looked up from a
//!   small per-clip-class table (at most `(radius+1)⁴` entries, each
//!   computed once in the reference accumulation order) instead of being
//!   re-summed per pixel.
//!
//! Both paths accumulate weight·field products in the exact dy-major,
//! dx-ascending order of the reference loop, so the split changes no
//! output bit — only the per-pixel bounds checks and the O(r²) `wsum`
//! recomputation are gone.

/// A truncated radial exponential kernel over window grids.
#[derive(Debug, Clone, PartialEq)]
pub struct PadKernel {
    radius: usize,
    weights: Vec<f64>, // (2r+1)² window of weights
    full_wsum: f64,    // row-major sum of all weights (interior renormalizer)
}

impl PadKernel {
    /// Builds a kernel `w(d) = exp(−d / character_length)` truncated at
    /// `radius` windows.
    ///
    /// # Panics
    ///
    /// Panics when `character_length` is not positive.
    #[must_use]
    pub fn exponential(character_length: f64, radius: usize) -> Self {
        assert!(character_length > 0.0, "character length must be positive");
        let size = 2 * radius + 1;
        let mut weights = vec![0.0; size * size];
        for dy in 0..size {
            for dx in 0..size {
                let y = dy as f64 - radius as f64;
                let x = dx as f64 - radius as f64;
                let d = (x * x + y * y).sqrt();
                weights[dy * size + dx] = (-d / character_length).exp();
            }
        }
        // Row-major order: the same addition sequence the reference loop
        // uses for an unclipped window, so the shared interior
        // renormalizer is bit-identical to the per-pixel recomputation.
        let full_wsum = weights.iter().sum();
        Self { radius, weights, full_wsum }
    }

    /// Kernel truncation radius in windows.
    #[must_use]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Applies the kernel to a row-major `rows × cols` field with
    /// edge renormalization (weights falling outside the chip are dropped
    /// and the remainder rescaled, so a constant field stays constant).
    ///
    /// Bit-identical to [`PadKernel::apply_reference`] (see module docs).
    ///
    /// # Panics
    ///
    /// Panics when `field.len() != rows * cols`.
    #[must_use]
    pub fn apply(&self, field: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        let mut out = vec![0.0; rows * cols];
        self.apply_into(field, rows, cols, &mut out);
        out
    }

    /// [`PadKernel::apply`] into a caller-provided buffer (every element
    /// is overwritten) — lets per-step simulator loops reuse scratch
    /// space instead of allocating per application.
    ///
    /// # Panics
    ///
    /// Panics when `field` or `out` do not have `rows * cols` elements.
    pub fn apply_into(&self, field: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        assert_eq!(field.len(), rows * cols, "field length mismatch");
        assert_eq!(out.len(), rows * cols, "output length mismatch");
        if rows == 0 || cols == 0 {
            return;
        }
        let r = self.radius;
        let size = 2 * r + 1;

        // Interior fast path: the kernel window never clips, so no
        // bounds checks and one shared renormalizer.
        if rows > 2 * r && cols > 2 * r {
            for i in r..rows - r {
                for j in r..cols - r {
                    let mut acc = 0.0;
                    for dy in 0..size {
                        let wrow = &self.weights[dy * size..(dy + 1) * size];
                        let f0 = (i + dy - r) * cols + (j - r);
                        let frow = &field[f0..f0 + size];
                        for t in 0..size {
                            acc += wrow[t] * frow[t];
                        }
                    }
                    out[i * cols + j] = acc / self.full_wsum;
                }
            }
        }

        // Border path: pixels within `r` of an edge. The renormalization
        // sum depends only on how many kernel rows/columns are clipped on
        // each side — a (top, bottom, left, right) clip class — so it is
        // computed once per class (in reference order) and looked up.
        let cls = r + 1;
        // Weights are strictly positive, so a negative entry means "not
        // yet computed".
        let mut wsum_tbl = vec![-1.0f64; cls * cls * cls * cls];
        for i in 0..rows {
            let interior_row = i >= r && i + r < rows;
            let ty = r - i.min(r);
            let by = r - (rows - 1 - i).min(r);
            let mut j = 0;
            while j < cols {
                if interior_row && j == r && cols > 2 * r {
                    // Interior pixels of this row were handled above.
                    j = cols - r;
                    continue;
                }
                let tx = r - j.min(r);
                let bx = r - (cols - 1 - j).min(r);
                let slot = ((ty * cls + by) * cls + tx) * cls + bx;
                let mut wsum = wsum_tbl[slot];
                if wsum < 0.0 {
                    wsum = 0.0;
                    for dy in ty..size - by {
                        let wrow = &self.weights[dy * size..(dy + 1) * size];
                        for &w in &wrow[tx..size - bx] {
                            wsum += w;
                        }
                    }
                    wsum_tbl[slot] = wsum;
                }
                let mut acc = 0.0;
                let width = size - bx - tx;
                for dy in ty..size - by {
                    let wrow = &self.weights[dy * size + tx..dy * size + tx + width];
                    let f0 = (i + dy - r) * cols + (j + tx - r);
                    let frow = &field[f0..f0 + width];
                    for t in 0..width {
                        acc += wrow[t] * frow[t];
                    }
                }
                out[i * cols + j] = acc / wsum;
                j += 1;
            }
        }
    }

    /// The pre-optimization bounds-checked loop, kept verbatim as the
    /// bit-exactness oracle for [`PadKernel::apply`] (and as the
    /// before-side of the kernels bench).
    ///
    /// # Panics
    ///
    /// Panics when `field.len() != rows * cols`.
    #[must_use]
    pub fn apply_reference(&self, field: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        assert_eq!(field.len(), rows * cols, "field length mismatch");
        let r = self.radius as isize;
        let size = 2 * self.radius + 1;
        let mut out = vec![0.0; rows * cols];
        for i in 0..rows as isize {
            for j in 0..cols as isize {
                let mut acc = 0.0;
                let mut wsum = 0.0;
                for dy in -r..=r {
                    let y = i + dy;
                    if y < 0 || y >= rows as isize {
                        continue;
                    }
                    let wrow = ((dy + r) as usize) * size;
                    let frow = y as usize * cols;
                    for dx in -r..=r {
                        let x = j + dx;
                        if x < 0 || x >= cols as isize {
                            continue;
                        }
                        let w = self.weights[wrow + (dx + r) as usize];
                        acc += w * field[frow + x as usize];
                        wsum += w;
                    }
                }
                out[(i as usize) * cols + j as usize] = acc / wsum;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_is_preserved() {
        let k = PadKernel::exponential(1.5, 3);
        let field = vec![0.42; 8 * 8];
        let out = k.apply(&field, 8, 8);
        assert!(out.iter().all(|v| (v - 0.42).abs() < 1e-12));
    }

    #[test]
    fn smoothing_reduces_contrast() {
        let k = PadKernel::exponential(1.5, 3);
        let mut field = vec![0.0; 9 * 9];
        field[4 * 9 + 4] = 1.0;
        let out = k.apply(&field, 9, 9);
        let peak = out[4 * 9 + 4];
        assert!(peak < 1.0 && peak > 0.0);
        // Neighbours received some of the mass.
        assert!(out[4 * 9 + 5] > 0.0);
        // Monotone decay away from the impulse.
        assert!(out[4 * 9 + 5] > out[4 * 9 + 7]);
    }

    #[test]
    fn kernel_is_isotropic() {
        let k = PadKernel::exponential(2.0, 3);
        let mut field = vec![0.0; 11 * 11];
        field[5 * 11 + 5] = 1.0;
        let out = k.apply(&field, 11, 11);
        assert!((out[5 * 11 + 7] - out[7 * 11 + 5]).abs() < 1e-12);
        assert!((out[5 * 11 + 3] - out[5 * 11 + 7]).abs() < 1e-12);
    }

    #[test]
    fn edge_renormalization_keeps_mean_sane() {
        // A constant field must stay constant even at corners.
        let k = PadKernel::exponential(1.0, 2);
        let field = vec![1.0; 4 * 4];
        let out = k.apply(&field, 4, 4);
        assert!((out[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn longer_character_length_smooths_more() {
        let short = PadKernel::exponential(0.5, 4);
        let long = PadKernel::exponential(3.0, 4);
        let mut field = vec![0.0; 9 * 9];
        field[4 * 9 + 4] = 1.0;
        let ps = short.apply(&field, 9, 9)[4 * 9 + 4];
        let pl = long.apply(&field, 9, 9)[4 * 9 + 4];
        assert!(ps > pl, "short {ps} vs long {pl}");
    }

    #[test]
    fn split_paths_match_reference_bitwise_on_a_smoke_grid() {
        let k = PadKernel::exponential(1.7, 3);
        let field: Vec<f64> = (0..12 * 10).map(|v| ((v * 37) % 101) as f64 / 13.0).collect();
        let fast = k.apply(&field, 12, 10);
        let slow = k.apply_reference(&field, 12, 10);
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
