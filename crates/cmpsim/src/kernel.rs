//! The pad-deformation weighting kernel.
//!
//! The rough polishing pad averages topography and pattern density over a
//! neighbourhood set by its character length (paper §III-B: 20–100 µm),
//! which is what makes the CMP model *local* and therefore learnable by a
//! convolutional network. The kernel is an exponentially decaying radial
//! weight, truncated at a configurable radius and renormalized at chip
//! edges.
//!
//! [`PadKernel::apply`] is split into two paths that together reproduce
//! the straightforward bounds-checked loop (kept as
//! [`PadKernel::apply_reference`]) bit for bit:
//!
//! * an **interior fast path** for pixels at least `radius` away from
//!   every edge — no bounds checks, contiguous weight·field row dots,
//!   and one precomputed full-kernel renormalization sum shared by all
//!   interior pixels;
//! * a **border path** whose renormalization sums are looked up from a
//!   small per-clip-class table (at most `(radius+1)⁴` entries, each
//!   computed once in the reference accumulation order) instead of being
//!   re-summed per pixel.
//!
//! Both paths accumulate weight·field products in the exact dy-major,
//! dx-ascending order of the reference loop, so the split changes no
//! output bit — only the per-pixel bounds checks and the O(r²) `wsum`
//! recomputation are gone.
//!
//! # Numerics tiers
//!
//! Under the default [`NumericsTier::Exact`] every application takes the
//! bit-identical split paths above. A kernel switched to
//! [`NumericsTier::Fast`] (via [`PadKernel::with_tier`]) routes
//! sufficiently large radii (≥ [`FFT_MIN_RADIUS`]) through the
//! real-to-complex radix-2 FFT in [`crate::fft`] — O(n·log n) instead of
//! O(n·r²) — with transform plans cached per board shape. Only the
//! correlation numerator goes through the transform; the per-pixel
//! edge-renormalization denominators are the same clipped-window weight
//! sums as the spatial path, evaluated once per cached plan from a 2-D
//! prefix table over the (strictly positive) weights — O(1) per pixel
//! instead of O(r²), with only summation-order rounding (≤ a few ulps:
//! every clipped quadrant contains the kernel peak, so the prefix
//! differences never cancel catastrophically) relative to the reference
//! accumulation order. The FFT path therefore differs from the spatial
//! one by FFT + denominator rounding alone
//! (`|fft − spatial| ≤ 1e-9 · (|spatial| + max|field|)` per pixel, pinned
//! by the `tier_equivalence` suite).

use neurfill_tensor::NumericsTier;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Smallest radius the Fast tier routes through the FFT: below this the
/// spatial interior path's O(r²) window is cheap enough that transform
/// overhead loses (see `BENCH_kernels.json` for the measured crossover).
pub const FFT_MIN_RADIUS: usize = 8;

/// FFT plan cache: one entry per board shape, shared across clones.
type PlanCache = Arc<Mutex<HashMap<(usize, usize), Arc<FftEntry>>>>;

/// A cached FFT plan plus the per-pixel renormalization plane for one
/// board shape (both pure functions of the kernel and the shape).
#[derive(Debug)]
struct FftEntry {
    plan: crate::fft::ConvPlan,
    /// Clipped-window weight sum per pixel (the edge renormalizer).
    wsum: Vec<f64>,
}

/// A truncated radial exponential kernel over window grids.
#[derive(Debug, Clone)]
pub struct PadKernel {
    radius: usize,
    weights: Vec<f64>, // (2r+1)² window of weights
    full_wsum: f64,    // row-major sum of all weights (interior renormalizer)
    tier: NumericsTier,
    /// FFT plans keyed by board shape; shared (not deep-copied) across
    /// clones so every shard of a chip reuses one plan per tile shape.
    plans: PlanCache,
}

// The plan cache is derived state (rebuildable from `weights` and the
// board shape) — kernel equality is about the math, not the cache.
impl PartialEq for PadKernel {
    fn eq(&self, other: &Self) -> bool {
        self.radius == other.radius
            && self.weights == other.weights
            && self.full_wsum == other.full_wsum
            && self.tier == other.tier
    }
}

impl PadKernel {
    /// Builds a kernel `w(d) = exp(−d / character_length)` truncated at
    /// `radius` windows.
    ///
    /// # Panics
    ///
    /// Panics when `character_length` is not positive.
    #[must_use]
    pub fn exponential(character_length: f64, radius: usize) -> Self {
        assert!(character_length > 0.0, "character length must be positive");
        let size = 2 * radius + 1;
        let mut weights = vec![0.0; size * size];
        for dy in 0..size {
            for dx in 0..size {
                let y = dy as f64 - radius as f64;
                let x = dx as f64 - radius as f64;
                let d = (x * x + y * y).sqrt();
                weights[dy * size + dx] = (-d / character_length).exp();
            }
        }
        // Row-major order: the same addition sequence the reference loop
        // uses for an unclipped window, so the shared interior
        // renormalizer is bit-identical to the per-pixel recomputation.
        let full_wsum = weights.iter().sum();
        Self {
            radius,
            weights,
            full_wsum,
            tier: NumericsTier::Exact,
            plans: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Kernel truncation radius in windows.
    #[must_use]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Switches the kernel's numerics tier (see the module docs). The
    /// default-constructed tier is [`NumericsTier::Exact`], which keeps
    /// every existing byte-identical contract; `Fast` routes radii
    /// ≥ [`FFT_MIN_RADIUS`] through the FFT path.
    #[must_use]
    pub fn with_tier(mut self, tier: NumericsTier) -> Self {
        self.tier = tier;
        self
    }

    /// The kernel's numerics tier.
    #[must_use]
    pub fn tier(&self) -> NumericsTier {
        self.tier
    }

    /// Applies the kernel to a row-major `rows × cols` field with
    /// edge renormalization (weights falling outside the chip are dropped
    /// and the remainder rescaled, so a constant field stays constant).
    ///
    /// Bit-identical to [`PadKernel::apply_reference`] (see module docs).
    ///
    /// # Panics
    ///
    /// Panics when `field.len() != rows * cols`.
    #[must_use]
    pub fn apply(&self, field: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        let mut out = vec![0.0; rows * cols];
        self.apply_into(field, rows, cols, &mut out);
        out
    }

    /// [`PadKernel::apply`] into a caller-provided buffer (every element
    /// is overwritten) — lets per-step simulator loops reuse scratch
    /// space instead of allocating per application.
    ///
    /// # Panics
    ///
    /// Panics when `field` or `out` do not have `rows * cols` elements.
    pub fn apply_into(&self, field: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        assert_eq!(field.len(), rows * cols, "field length mismatch");
        assert_eq!(out.len(), rows * cols, "output length mismatch");
        if rows == 0 || cols == 0 {
            return;
        }
        // Fast tier: large radii go through the FFT (certified-tolerance)
        // path; small radii keep the spatial loop, which beats transform
        // overhead there and stays bit-identical across tiers.
        if self.tier.is_fast() && self.radius >= FFT_MIN_RADIUS {
            self.apply_fft_into(field, rows, cols, out);
            return;
        }
        let r = self.radius;
        let size = 2 * r + 1;

        // Interior fast path: the kernel window never clips, so no
        // bounds checks and one shared renormalizer.
        if rows > 2 * r && cols > 2 * r {
            for i in r..rows - r {
                for j in r..cols - r {
                    let mut acc = 0.0;
                    for dy in 0..size {
                        let wrow = &self.weights[dy * size..(dy + 1) * size];
                        let f0 = (i + dy - r) * cols + (j - r);
                        let frow = &field[f0..f0 + size];
                        for t in 0..size {
                            acc += wrow[t] * frow[t];
                        }
                    }
                    out[i * cols + j] = acc / self.full_wsum;
                }
            }
        }

        // Border path: pixels within `r` of an edge. The renormalization
        // sum depends only on how many kernel rows/columns are clipped on
        // each side — a (top, bottom, left, right) clip class — so it is
        // computed once per class (in reference order) and looked up.
        let cls = r + 1;
        // Weights are strictly positive, so a negative entry means "not
        // yet computed".
        let mut wsum_tbl = vec![-1.0f64; cls * cls * cls * cls];
        for i in 0..rows {
            let interior_row = i >= r && i + r < rows;
            let ty = r - i.min(r);
            let by = r - (rows - 1 - i).min(r);
            let mut j = 0;
            while j < cols {
                if interior_row && j == r && cols > 2 * r {
                    // Interior pixels of this row were handled above.
                    j = cols - r;
                    continue;
                }
                let tx = r - j.min(r);
                let bx = r - (cols - 1 - j).min(r);
                let slot = ((ty * cls + by) * cls + tx) * cls + bx;
                let mut wsum = wsum_tbl[slot];
                if wsum < 0.0 {
                    wsum = 0.0;
                    for dy in ty..size - by {
                        let wrow = &self.weights[dy * size..(dy + 1) * size];
                        for &w in &wrow[tx..size - bx] {
                            wsum += w;
                        }
                    }
                    wsum_tbl[slot] = wsum;
                }
                let mut acc = 0.0;
                let width = size - bx - tx;
                for dy in ty..size - by {
                    let wrow = &self.weights[dy * size + tx..dy * size + tx + width];
                    let f0 = (i + dy - r) * cols + (j + tx - r);
                    let frow = &field[f0..f0 + width];
                    for t in 0..width {
                        acc += wrow[t] * frow[t];
                    }
                }
                out[i * cols + j] = acc / wsum;
                j += 1;
            }
        }
    }

    /// The pre-optimization bounds-checked loop, kept verbatim as the
    /// bit-exactness oracle for [`PadKernel::apply`] (and as the
    /// before-side of the kernels bench).
    ///
    /// # Panics
    ///
    /// Panics when `field.len() != rows * cols`.
    #[must_use]
    pub fn apply_reference(&self, field: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        assert_eq!(field.len(), rows * cols, "field length mismatch");
        let r = self.radius as isize;
        let size = 2 * self.radius + 1;
        let mut out = vec![0.0; rows * cols];
        for i in 0..rows as isize {
            for j in 0..cols as isize {
                let mut acc = 0.0;
                let mut wsum = 0.0;
                for dy in -r..=r {
                    let y = i + dy;
                    if y < 0 || y >= rows as isize {
                        continue;
                    }
                    let wrow = ((dy + r) as usize) * size;
                    let frow = y as usize * cols;
                    for dx in -r..=r {
                        let x = j + dx;
                        if x < 0 || x >= cols as isize {
                            continue;
                        }
                        let w = self.weights[wrow + (dx + r) as usize];
                        acc += w * field[frow + x as usize];
                        wsum += w;
                    }
                }
                out[(i as usize) * cols + j as usize] = acc / wsum;
            }
        }
        out
    }

    /// [`PadKernel::apply`] evaluated by FFT convolution regardless of
    /// tier or radius — the Fast-tier engine, public so the equivalence
    /// suites and benches can exercise it at every radius.
    ///
    /// # Panics
    ///
    /// Panics when `field.len() != rows * cols`.
    #[must_use]
    pub fn apply_fft(&self, field: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        let mut out = vec![0.0; rows * cols];
        if rows > 0 && cols > 0 {
            assert_eq!(field.len(), rows * cols, "field length mismatch");
            self.apply_fft_into(field, rows, cols, &mut out);
        }
        out
    }

    /// FFT pad convolution into a caller buffer (see [`crate::fft`]):
    /// the correlation numerator is a pointwise spectral product under a
    /// cached per-board-shape plan; the edge-renormalization denominator
    /// reuses the exact clip-class sums of the spatial path.
    fn apply_fft_into(&self, field: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        let entry = {
            let mut cache = self.plans.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(cache.entry((rows, cols)).or_insert_with(|| {
                Arc::new(FftEntry {
                    plan: crate::fft::ConvPlan::new(rows, cols, self.radius, &self.weights),
                    wsum: self.wsum_plane(rows, cols),
                })
            }))
        };
        debug_assert_eq!(entry.plan.shape(), (rows, cols));
        entry.plan.convolve_into(field, out);
        for (o, w) in out.iter_mut().zip(&entry.wsum) {
            *o /= w;
        }
    }

    /// The clipped-window weight sum for every pixel of a `rows × cols`
    /// board, from a 2-D inclusive prefix table over the weights: each
    /// pixel's sum is one four-corner prefix difference, O(1) instead of
    /// the O(r²) re-summation of the spatial clip-class path. Computed
    /// once per cached FFT plan. The weights are strictly positive and
    /// every clipped window contains the kernel peak (the board always
    /// holds the center tap), so the differences lose at most a few ulps
    /// to the reference accumulation order.
    fn wsum_plane(&self, rows: usize, cols: usize) -> Vec<f64> {
        let r = self.radius;
        let size = 2 * r + 1;
        // prefix[a][b] = Σ weights[dy < a][dx < b], laid out (size+1)².
        let mut prefix = vec![0.0f64; (size + 1) * (size + 1)];
        for dy in 0..size {
            let mut row_acc = 0.0;
            for dx in 0..size {
                row_acc += self.weights[dy * size + dx];
                prefix[(dy + 1) * (size + 1) + dx + 1] = prefix[dy * (size + 1) + dx + 1] + row_acc;
            }
        }
        let sum_rect = |ty: usize, by: usize, tx: usize, bx: usize| -> f64 {
            // Window rows ty..size-by, cols tx..size-bx.
            let (y0, y1, x0, x1) = (ty, size - by, tx, size - bx);
            prefix[y1 * (size + 1) + x1] - prefix[y0 * (size + 1) + x1] - prefix[y1 * (size + 1) + x0]
                + prefix[y0 * (size + 1) + x0]
        };
        let mut plane = vec![0.0f64; rows * cols];
        for i in 0..rows {
            let ty = r - i.min(r);
            let by = r - (rows - 1 - i).min(r);
            for j in 0..cols {
                let tx = r - j.min(r);
                let bx = r - (cols - 1 - j).min(r);
                plane[i * cols + j] = sum_rect(ty, by, tx, bx);
            }
        }
        plane
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_is_preserved() {
        let k = PadKernel::exponential(1.5, 3);
        let field = vec![0.42; 8 * 8];
        let out = k.apply(&field, 8, 8);
        assert!(out.iter().all(|v| (v - 0.42).abs() < 1e-12));
    }

    #[test]
    fn smoothing_reduces_contrast() {
        let k = PadKernel::exponential(1.5, 3);
        let mut field = vec![0.0; 9 * 9];
        field[4 * 9 + 4] = 1.0;
        let out = k.apply(&field, 9, 9);
        let peak = out[4 * 9 + 4];
        assert!(peak < 1.0 && peak > 0.0);
        // Neighbours received some of the mass.
        assert!(out[4 * 9 + 5] > 0.0);
        // Monotone decay away from the impulse.
        assert!(out[4 * 9 + 5] > out[4 * 9 + 7]);
    }

    #[test]
    fn kernel_is_isotropic() {
        let k = PadKernel::exponential(2.0, 3);
        let mut field = vec![0.0; 11 * 11];
        field[5 * 11 + 5] = 1.0;
        let out = k.apply(&field, 11, 11);
        assert!((out[5 * 11 + 7] - out[7 * 11 + 5]).abs() < 1e-12);
        assert!((out[5 * 11 + 3] - out[5 * 11 + 7]).abs() < 1e-12);
    }

    #[test]
    fn edge_renormalization_keeps_mean_sane() {
        // A constant field must stay constant even at corners.
        let k = PadKernel::exponential(1.0, 2);
        let field = vec![1.0; 4 * 4];
        let out = k.apply(&field, 4, 4);
        assert!((out[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn longer_character_length_smooths_more() {
        let short = PadKernel::exponential(0.5, 4);
        let long = PadKernel::exponential(3.0, 4);
        let mut field = vec![0.0; 9 * 9];
        field[4 * 9 + 4] = 1.0;
        let ps = short.apply(&field, 9, 9)[4 * 9 + 4];
        let pl = long.apply(&field, 9, 9)[4 * 9 + 4];
        assert!(ps > pl, "short {ps} vs long {pl}");
    }

    #[test]
    fn split_paths_match_reference_bitwise_on_a_smoke_grid() {
        let k = PadKernel::exponential(1.7, 3);
        let field: Vec<f64> = (0..12 * 10).map(|v| ((v * 37) % 101) as f64 / 13.0).collect();
        let fast = k.apply(&field, 12, 10);
        let slow = k.apply_reference(&field, 12, 10);
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
