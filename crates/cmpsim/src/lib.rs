//! # neurfill-cmpsim
//!
//! A physics-based full-chip CMP simulator — the "golden model" the
//! NeurFill paper migrates onto a neural network. It implements the
//! four-step iterative loop of the paper's §II-A / Fig. 2:
//!
//! 1. window envelope heights (smoothed by the pad-deformation
//!    [`kernel::PadKernel`]),
//! 2. contact-mechanics pressure solve by global force balance
//!    ([`contact`]),
//! 3. density-step-height removal-rate split ([`dsh`]),
//! 4. Preston-equation material removal, iterated over polish time
//!    ([`CmpSimulator`]).
//!
//! The crate also provides the finite-difference gradient machinery
//! ([`FiniteDifference`]) that conventional model-based filling uses —
//! thousands of simulator invocations per gradient — which is precisely
//! the bottleneck NeurFill's backward propagation removes (Table I).
//!
//! # Example
//!
//! ```
//! use neurfill_cmpsim::{CmpSimulator, ProcessParams};
//! use neurfill_layout::{DesignKind, DesignSpec};
//!
//! let layout = DesignSpec::new(DesignKind::RiscV, 16, 16, 0).generate();
//! let sim = CmpSimulator::new(ProcessParams::fast())?;
//! let profile = sim.simulate(&layout);
//! println!("ΔH = {:.1} nm", profile.max_height_range());
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod calibrate;
pub mod contact;
pub mod dsh;
mod fft;
pub mod kernel;
mod numgrad;
mod params;
pub mod preston;
mod profile;
pub mod shard;
mod simulator;

pub use contact::{ContactSolve, ContactSolveStats};
pub use kernel::{PadKernel, FFT_MIN_RADIUS};
/// Re-exported from `neurfill-tensor`: the workspace-wide numerics tier.
pub use neurfill_tensor::NumericsTier;
pub use numgrad::FiniteDifference;
pub use params::{ParamsDisplay, ProcessParams};
pub use profile::{ChipProfile, LayerProfile};
pub use shard::{map_sequential, simulate_layer_sharded, ShardMap, ShardStats, TileShard};
pub use simulator::{CmpSimulator, LayerInput, TraceStep};
