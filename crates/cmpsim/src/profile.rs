//! Post-CMP surface profiles: average height, dishing and erosion maps.

/// Post-CMP result of one layer: per-window average surface height plus the
/// dishing and erosion maps a full-chip CMP simulator reports (paper
/// §II-A).
///
/// All values are in nm; heights are absolute surface heights.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    rows: usize,
    cols: usize,
    avg_height: Vec<f64>,
    dishing: Vec<f64>,
    erosion: Vec<f64>,
}

impl LayerProfile {
    /// Creates a profile from row-major maps.
    ///
    /// # Panics
    ///
    /// Panics when map lengths disagree with `rows · cols`.
    #[must_use]
    pub fn new(
        rows: usize,
        cols: usize,
        avg_height: Vec<f64>,
        dishing: Vec<f64>,
        erosion: Vec<f64>,
    ) -> Self {
        assert_eq!(avg_height.len(), rows * cols);
        assert_eq!(dishing.len(), rows * cols);
        assert_eq!(erosion.len(), rows * cols);
        Self { rows, cols, avg_height, dishing, erosion }
    }

    /// Number of window rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of window columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major average-height map (nm).
    #[must_use]
    pub fn heights(&self) -> &[f64] {
        &self.avg_height
    }

    /// Row-major dishing map (final step height, nm).
    #[must_use]
    pub fn dishing(&self) -> &[f64] {
        &self.dishing
    }

    /// Row-major erosion map (up-area recess vs the highest window, nm).
    #[must_use]
    pub fn erosion(&self) -> &[f64] {
        &self.erosion
    }

    /// Height of window `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn height(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols);
        self.avg_height[row * self.cols + col]
    }

    /// Mean height.
    #[must_use]
    pub fn mean_height(&self) -> f64 {
        self.avg_height.iter().sum::<f64>() / self.avg_height.len().max(1) as f64
    }

    /// Peak-to-valley height range `ΔH` (nm).
    #[must_use]
    pub fn height_range(&self) -> f64 {
        let max = self.avg_height.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = self.avg_height.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Population variance of heights (nm²).
    #[must_use]
    pub fn height_variance(&self) -> f64 {
        let m = self.mean_height();
        self.avg_height.iter().map(|h| (h - m) * (h - m)).sum::<f64>()
            / self.avg_height.len().max(1) as f64
    }
}

/// Post-CMP result of a whole chip: one [`LayerProfile`] per layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipProfile {
    layers: Vec<LayerProfile>,
}

impl ChipProfile {
    /// Creates a chip profile.
    ///
    /// # Panics
    ///
    /// Panics when `layers` is empty.
    #[must_use]
    pub fn new(layers: Vec<LayerProfile>) -> Self {
        assert!(!layers.is_empty());
        Self { layers }
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// One layer's profile.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    #[must_use]
    pub fn layer(&self, layer: usize) -> &LayerProfile {
        &self.layers[layer]
    }

    /// Iterator over layer profiles.
    pub fn iter(&self) -> std::slice::Iter<'_, LayerProfile> {
        self.layers.iter()
    }

    /// Worst peak-to-valley range across layers — the `ΔH` column of the
    /// paper's Table III (reported there in Å).
    #[must_use]
    pub fn max_height_range(&self) -> f64 {
        self.layers.iter().map(LayerProfile::height_range).fold(0.0, f64::max)
    }
}

impl<'a> IntoIterator for &'a ChipProfile {
    type Item = &'a LayerProfile;
    type IntoIter = std::slice::Iter<'a, LayerProfile>;
    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> LayerProfile {
        LayerProfile::new(2, 2, vec![10.0, 12.0, 14.0, 12.0], vec![1.0; 4], vec![0.5; 4])
    }

    #[test]
    fn stats_are_correct() {
        let p = profile();
        assert_eq!(p.mean_height(), 12.0);
        assert_eq!(p.height_range(), 4.0);
        assert!((p.height_variance() - 2.0).abs() < 1e-12);
        assert_eq!(p.height(1, 0), 14.0);
    }

    #[test]
    fn chip_profile_max_range() {
        let a = profile();
        let b = LayerProfile::new(2, 2, vec![0.0, 10.0, 0.0, 0.0], vec![0.0; 4], vec![0.0; 4]);
        let chip = ChipProfile::new(vec![a, b]);
        assert_eq!(chip.max_height_range(), 10.0);
        assert_eq!(chip.num_layers(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_chip_profile_panics() {
        let _ = ChipProfile::new(vec![]);
    }
}
