//! Finite-difference gradients of black-box objectives — the conventional
//! gradient path of model-based filling (paper §III) whose cost NeurFill's
//! backward propagation eliminates.
//!
//! A forward difference needs `dim + 1` objective evaluations, each of
//! which invokes the full-chip simulator; this is exactly the bottleneck
//! quantified in the paper's Table I.

use crossbeam::thread;

/// Finite-difference gradient estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiniteDifference {
    /// Perturbation size.
    pub epsilon: f64,
    /// Worker threads (1 = sequential; the paper's baseline used 64 cores).
    pub threads: usize,
}

impl Default for FiniteDifference {
    fn default() -> Self {
        Self { epsilon: 1e-3, threads: 1 }
    }
}

impl FiniteDifference {
    /// Creates an estimator with the given perturbation and thread count.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is not positive or `threads` is zero.
    #[must_use]
    pub fn new(epsilon: f64, threads: usize) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(threads > 0, "need at least one thread");
        Self { epsilon, threads }
    }

    /// Number of objective evaluations a forward-difference gradient of the
    /// given dimension costs (the Table I accounting).
    #[must_use]
    pub fn forward_evaluations(dim: usize) -> usize {
        dim + 1
    }

    /// Forward-difference gradient `(f(x + ε·e_i) − f(x)) / ε`.
    ///
    /// `f` is evaluated `dim + 1` times; with `threads > 1` the per-element
    /// evaluations run on a crossbeam scoped thread pool.
    #[must_use]
    pub fn gradient(&self, x: &[f64], f: &(dyn Fn(&[f64]) -> f64 + Sync)) -> Vec<f64> {
        let f0 = f(x);
        self.map_indices(x.len(), &|i| {
            let mut xp = x.to_vec();
            xp[i] += self.epsilon;
            (f(&xp) - f0) / self.epsilon
        })
    }

    /// Central-difference gradient `(f(x+ε·e_i) − f(x−ε·e_i)) / 2ε`
    /// (2·dim evaluations; more accurate, used for verification).
    #[must_use]
    pub fn gradient_central(&self, x: &[f64], f: &(dyn Fn(&[f64]) -> f64 + Sync)) -> Vec<f64> {
        self.map_indices(x.len(), &|i| {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += self.epsilon;
            xm[i] -= self.epsilon;
            (f(&xp) - f(&xm)) / (2.0 * self.epsilon)
        })
    }

    /// Single-threaded forward-difference gradient for objectives that are
    /// not `Sync` (e.g. graph-building neural-network evaluations).
    #[must_use]
    pub fn gradient_seq(&self, x: &[f64], mut f: impl FnMut(&[f64]) -> f64) -> Vec<f64> {
        let f0 = f(x);
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                xp[i] += self.epsilon;
                (f(&xp) - f0) / self.epsilon
            })
            .collect()
    }

    /// Single-threaded central-difference gradient (see
    /// [`FiniteDifference::gradient_seq`]).
    #[must_use]
    pub fn gradient_central_seq(&self, x: &[f64], mut f: impl FnMut(&[f64]) -> f64) -> Vec<f64> {
        (0..x.len())
            .map(|i| {
                let mut xp = x.to_vec();
                let mut xm = x.to_vec();
                xp[i] += self.epsilon;
                xm[i] -= self.epsilon;
                (f(&xp) - f(&xm)) / (2.0 * self.epsilon)
            })
            .collect()
    }

    #[allow(clippy::expect_used)] // a panicked worker is unrecoverable; propagate the panic
    fn map_indices(&self, n: usize, work: &(dyn Fn(usize) -> f64 + Sync)) -> Vec<f64> {
        if self.threads <= 1 || n < 2 {
            return (0..n).map(work).collect();
        }
        let threads = self.threads.min(n);
        let chunk = n.div_ceil(threads);
        let mut out = vec![0.0; n];
        thread::scope(|s| {
            for (t, slot) in out.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                s.spawn(move |_| {
                    for (k, v) in slot.iter_mut().enumerate() {
                        *v = work(start + k);
                    }
                });
            }
        })
        .expect("worker panicked");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64]) -> f64 {
        x.iter().enumerate().map(|(i, v)| (i + 1) as f64 * v * v).sum()
    }

    #[test]
    fn forward_gradient_of_quadratic() {
        let fd = FiniteDifference::new(1e-5, 1);
        let x = [1.0, 2.0, -1.0];
        let g = fd.gradient(&x, &quadratic);
        // ∇ = [2x₁, 4x₂, 6x₃]
        assert!((g[0] - 2.0).abs() < 1e-3);
        assert!((g[1] - 8.0).abs() < 1e-3);
        assert!((g[2] + 6.0).abs() < 1e-3);
    }

    #[test]
    fn central_gradient_is_more_accurate() {
        let fd = FiniteDifference::new(1e-3, 1);
        let x = [0.7];
        let f = |x: &[f64]| x[0].powi(3);
        let fwd = fd.gradient(&x, &f)[0];
        let ctr = fd.gradient_central(&x, &f)[0];
        let exact = 3.0 * 0.7f64 * 0.7;
        assert!((ctr - exact).abs() < (fwd - exact).abs());
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = FiniteDifference::new(1e-5, 1);
        let par = FiniteDifference::new(1e-5, 4);
        let x: Vec<f64> = (0..37).map(|i| (i as f64) * 0.1 - 1.5).collect();
        let gs = seq.gradient(&x, &quadratic);
        let gp = par.gradient(&x, &quadratic);
        for (a, b) in gs.iter().zip(&gp) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn evaluation_count_accounting() {
        assert_eq!(FiniteDifference::forward_evaluations(10_000), 10_001);
    }

    #[test]
    fn empty_input_gives_empty_gradient() {
        let fd = FiniteDifference::default();
        assert!(fd.gradient(&[], &quadratic).is_empty());
    }
}
