//! Post-CMP profile analysis: summaries, histograms and hotspot
//! extraction — the reporting layer a full-chip CMP signoff tool provides
//! on top of the raw dishing/erosion/height maps.

use crate::profile::{ChipProfile, LayerProfile};

/// Summary statistics of one layer's post-CMP surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSummary {
    /// Mean height (nm).
    pub mean_height: f64,
    /// Height standard deviation (nm).
    pub height_std: f64,
    /// Peak-to-valley range (nm).
    pub height_range: f64,
    /// Mean dishing (nm).
    pub mean_dishing: f64,
    /// Maximum dishing (nm).
    pub max_dishing: f64,
    /// Mean erosion (nm).
    pub mean_erosion: f64,
    /// Maximum erosion (nm).
    pub max_erosion: f64,
}

/// Summarizes one layer.
#[must_use]
pub fn summarize_layer(layer: &LayerProfile) -> LayerSummary {
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    LayerSummary {
        mean_height: layer.mean_height(),
        height_std: layer.height_variance().sqrt(),
        height_range: layer.height_range(),
        mean_dishing: mean(layer.dishing()),
        max_dishing: max(layer.dishing()),
        mean_erosion: mean(layer.erosion()),
        max_erosion: max(layer.erosion()),
    }
}

/// Summarizes every layer of a chip profile.
#[must_use]
pub fn summarize(profile: &ChipProfile) -> Vec<LayerSummary> {
    profile.iter().map(summarize_layer).collect()
}

/// One hotspot: a window whose height deviates most from the layer mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// Layer index.
    pub layer: usize,
    /// Window row.
    pub row: usize,
    /// Window column.
    pub col: usize,
    /// Signed deviation from the layer mean height (nm).
    pub deviation: f64,
}

/// Extracts the `count` windows with the largest |height − layer mean|
/// across the whole chip, sorted by decreasing magnitude — the windows a
/// signoff flow would flag for review.
#[must_use]
pub fn hotspots(profile: &ChipProfile, count: usize) -> Vec<Hotspot> {
    let mut all = Vec::new();
    for (l, layer) in profile.iter().enumerate() {
        let mean = layer.mean_height();
        for r in 0..layer.rows() {
            for c in 0..layer.cols() {
                all.push(Hotspot { layer: l, row: r, col: c, deviation: layer.height(r, c) - mean });
            }
        }
    }
    all.sort_by(|a, b| {
        b.deviation.abs().partial_cmp(&a.deviation.abs()).unwrap_or(std::cmp::Ordering::Equal)
    });
    all.truncate(count);
    all
}

/// Height histogram over all layers: `bins` equal-width bins spanning the
/// observed range. Returns `(bin upper edge in nm, count)`.
///
/// # Panics
///
/// Panics when `bins` is zero.
#[must_use]
pub fn height_histogram(profile: &ChipProfile, bins: usize) -> Vec<(f64, usize)> {
    assert!(bins > 0, "need at least one bin");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for layer in profile {
        for &h in layer.heights() {
            lo = lo.min(h);
            hi = hi.max(h);
        }
    }
    let width = ((hi - lo) / bins as f64).max(1e-12);
    let mut counts = vec![0usize; bins];
    for layer in profile {
        for &h in layer.heights() {
            let b = (((h - lo) / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
    }
    counts.into_iter().enumerate().map(|(i, c)| (lo + (i + 1) as f64 * width, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LayerProfile;

    fn profile() -> ChipProfile {
        let heights = vec![10.0, 12.0, 14.0, 20.0];
        let dishing = vec![1.0, 2.0, 3.0, 4.0];
        let erosion = vec![0.0, 0.5, 1.0, 1.5];
        ChipProfile::new(vec![LayerProfile::new(2, 2, heights, dishing, erosion)])
    }

    #[test]
    fn layer_summary_values() {
        let s = summarize(&profile());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].mean_height, 14.0);
        assert_eq!(s[0].height_range, 10.0);
        assert_eq!(s[0].mean_dishing, 2.5);
        assert_eq!(s[0].max_dishing, 4.0);
        assert_eq!(s[0].max_erosion, 1.5);
    }

    #[test]
    fn hotspots_sorted_by_magnitude() {
        let h = hotspots(&profile(), 2);
        assert_eq!(h.len(), 2);
        // The 20.0 window deviates +6 from mean 14; the 10.0 window −4.
        assert_eq!((h[0].row, h[0].col), (1, 1));
        assert!((h[0].deviation - 6.0).abs() < 1e-12);
        assert!((h[1].deviation + 4.0).abs() < 1e-12);
        // Requesting more hotspots than windows returns all of them.
        assert_eq!(hotspots(&profile(), 100).len(), 4);
    }

    #[test]
    fn histogram_covers_all_windows() {
        let hist = height_histogram(&profile(), 5);
        assert_eq!(hist.len(), 5);
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4);
        // Upper edge of the last bin reaches the max height.
        assert!((hist.last().unwrap().0 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn flat_profile_has_single_occupied_bin() {
        let flat =
            ChipProfile::new(vec![LayerProfile::new(2, 2, vec![5.0; 4], vec![0.0; 4], vec![0.0; 4])]);
        let hist = height_histogram(&flat, 3);
        let occupied: usize = hist.iter().filter(|(_, c)| *c > 0).count();
        assert_eq!(occupied, 1);
    }
}
