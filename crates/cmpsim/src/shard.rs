//! Halo-aware tile sharding of the polish loop — the simulator-side
//! half of the full-chip decomposition in `neurfill-chip`.
//!
//! The per-step physics splits into a *local* part (pad-kernel
//! smoothing, whose support is the kernel radius, plus the pointwise
//! DSH/Preston update) and one irreducibly *global* part (the
//! contact-mechanics reference-plane solve, a force balance over every
//! window). A [`TileShard`] owns the core region of one tile and
//! exchanges halos through chip-sized boards:
//!
//! 1. every shard scatters its core envelope into the shared board,
//! 2. every shard gathers its halo-extended region back (this is the
//!    halo exchange; the non-core cells are the bytes a distributed
//!    deployment would ship between neighbors) and smooths it,
//! 3. the smoothed cores are scattered back in chip order and the
//!    reference plane is solved on the assembled chip board — exactly
//!    the monolithic force sum, in the same row-major order,
//! 4. every shard updates its core pointwise from `z_ref`.
//!
//! Because the pad kernel's clip handling depends only on each cell's
//! distance to the field boundary per side, and a halo of at least the
//! kernel radius makes those distances identical between the extended
//! field and the full chip for every core cell (each side is either the
//! chip boundary itself or at least `radius` away), the smoothed core
//! of a tile is *bitwise* equal to the corresponding region of a
//! monolithic smooth. All remaining arithmetic is pointwise or runs in
//! chip order, so the sharded layer result is byte-identical to
//! [`CmpSimulator::simulate_layer`](crate::CmpSimulator) at any tile
//! size — the property `crates/chip` pins across worker counts.

use crate::contact::{
    solve_reference_plane_sorted_stats, solve_reference_plane_stats, window_pressures, ContactSolve,
};
use crate::dsh::split_pressure;
use crate::kernel::PadKernel;
use crate::params::ProcessParams;
use crate::profile::LayerProfile;
use crate::simulator::LayerInput;
use neurfill_layout::tiling::Tile;

/// Width/perimeter pressure modifiers of the DSH stage, shared between
/// the monolithic and the sharded path.
#[must_use]
pub fn dish_erosion_factors(
    avg_width: &[f64],
    perimeter: &[f64],
    p: &ProcessParams,
) -> (Vec<f64>, Vec<f64>) {
    let dish = avg_width
        .iter()
        .map(|&w| 1.0 + p.dishing_coefficient * w / (w + p.dishing_reference_width))
        .collect();
    let erosion =
        perimeter.iter().map(|&per| 1.0 + p.erosion_coefficient * per / p.perimeter_scale).collect();
    (dish, erosion)
}

/// One DSH-split + Preston-removal update (paper steps 3–4), pointwise
/// over whatever region the slices cover.
///
/// # Panics
///
/// Panics when the slices disagree in length.
pub fn polish_pointwise(
    z_up: &mut [f64],
    z_down: &mut [f64],
    pressures: &[f64],
    rho_eff: &[f64],
    dish_factor: &[f64],
    erosion_factor: &[f64],
    p: &ProcessParams,
) {
    let n = z_up.len();
    assert!(
        [z_down.len(), pressures.len(), rho_eff.len(), dish_factor.len(), erosion_factor.len()]
            .iter()
            .all(|&l| l == n),
        "polish slice lengths disagree"
    );
    for i in 0..n {
        let step = (z_up[i] - z_down[i]).max(0.0);
        let split = split_pressure(pressures[i], rho_eff[i], step, p);
        let up_rate = split.up * erosion_factor[i];
        let down_rate = split.down * dish_factor[i];
        z_up[i] -= p.removal_per_step * up_rate;
        z_down[i] -= p.removal_per_step * down_rate;
        if z_down[i] > z_up[i] {
            z_down[i] = z_up[i];
        }
    }
}

/// Builds the layer profile from final heights. The erosion reference
/// (`max z_up`) is folded in row-major input order — the fold the
/// sharded path must reproduce on the merged chip board, since float
/// `max` with NaN-free inputs is order-independent but the simulator
/// pins the exact monolithic traversal anyway.
///
/// # Panics
///
/// Panics when slice lengths disagree with `rows * cols`.
#[must_use]
pub fn finalize_layer(
    rows: usize,
    cols: usize,
    density: &[f64],
    z_up: &[f64],
    z_down: &[f64],
) -> LayerProfile {
    let n = rows * cols;
    assert!(
        density.len() == n && z_up.len() == n && z_down.len() == n,
        "finalize slice lengths disagree"
    );
    let z_up_max = z_up.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut avg_height = vec![0.0; n];
    let mut dishing = vec![0.0; n];
    let mut erosion = vec![0.0; n];
    for i in 0..n {
        let rho = density[i];
        avg_height[i] = rho * z_up[i] + (1.0 - rho) * z_down[i];
        dishing[i] = (z_up[i] - z_down[i]).max(0.0);
        erosion[i] = z_up_max - z_up[i];
    }
    LayerProfile::new(rows, cols, avg_height, dishing, erosion)
}

/// Copies the core region out of a halo-extended row-major field.
fn core_of_ext(tile: &Tile, ext_field: &[f64]) -> Vec<f64> {
    let (dr, dc) = tile.core_in_ext();
    let mut out = Vec::with_capacity(tile.core.len());
    for r in 0..tile.core.rows {
        let start = (dr + r) * tile.ext.cols + dc;
        out.extend_from_slice(&ext_field[start..start + tile.core.cols]);
    }
    out
}

/// Per-tile polish state: core-region heights plus the scratch needed
/// to smooth over the halo-extended region each step.
#[derive(Debug, Clone)]
pub struct TileShard {
    tile: Tile,
    density: Vec<f64>,
    rho_eff: Vec<f64>,
    dish_factor: Vec<f64>,
    erosion_factor: Vec<f64>,
    z_up: Vec<f64>,
    z_down: Vec<f64>,
    smoothed_core: Vec<f64>,
    ext_buf: Vec<f64>,
    smooth_buf: Vec<f64>,
    halo_cells_exchanged: u64,
}

impl TileShard {
    /// Builds the shard from the tile's halo-extended layer input. The
    /// effective density is smoothed over the extension once (it does
    /// not change during the polish), everything else lives on the
    /// core.
    ///
    /// # Errors
    ///
    /// Returns a message when the input fails validation or does not
    /// match the tile's extended region.
    pub fn new(
        tile: Tile,
        ext_input: &LayerInput,
        kernel: &PadKernel,
        params: &ProcessParams,
    ) -> Result<Self, String> {
        ext_input.validate()?;
        if ext_input.rows != tile.ext.rows || ext_input.cols != tile.ext.cols {
            return Err(format!(
                "tile input is {}x{}, extended region is {}x{}",
                ext_input.rows, ext_input.cols, tile.ext.rows, tile.ext.cols
            ));
        }
        let rho_eff_ext = kernel.apply(&ext_input.density, tile.ext.rows, tile.ext.cols);
        let (dish_ext, erosion_ext) =
            dish_erosion_factors(&ext_input.avg_width, &ext_input.perimeter, params);
        let core_len = tile.core.len();
        let z_up = vec![params.initial_height; core_len];
        let z_down: Vec<f64> = z_up.iter().map(|z| z - params.initial_step).collect();
        Ok(Self {
            tile,
            density: core_of_ext(&tile, &ext_input.density),
            rho_eff: core_of_ext(&tile, &rho_eff_ext),
            dish_factor: core_of_ext(&tile, &dish_ext),
            erosion_factor: core_of_ext(&tile, &erosion_ext),
            z_up,
            z_down,
            smoothed_core: vec![0.0; core_len],
            ext_buf: vec![0.0; tile.ext.len()],
            smooth_buf: vec![0.0; tile.ext.len()],
            halo_cells_exchanged: 0,
        })
    }

    /// The tile this shard owns.
    #[must_use]
    pub fn tile(&self) -> &Tile {
        &self.tile
    }

    /// Halo cells gathered over the shard's lifetime (the exchange
    /// volume; multiply by 8 for bytes).
    #[must_use]
    pub fn halo_cells_exchanged(&self) -> u64 {
        self.halo_cells_exchanged
    }

    /// Writes the core envelope (`z_up`) into the chip board.
    pub fn scatter_envelope(&self, board: &mut [f64], chip_cols: usize) {
        self.scatter_core(&self.z_up, board, chip_cols);
    }

    /// Writes the smoothed core into the chip board (for the global
    /// contact solve).
    pub fn scatter_smoothed(&self, board: &mut [f64], chip_cols: usize) {
        self.scatter_core(&self.smoothed_core, board, chip_cols);
    }

    fn scatter_core(&self, field: &[f64], board: &mut [f64], chip_cols: usize) {
        let core = &self.tile.core;
        for r in 0..core.rows {
            let src = r * core.cols;
            let dst = (core.row0 + r) * chip_cols + core.col0;
            board[dst..dst + core.cols].copy_from_slice(&field[src..src + core.cols]);
        }
    }

    /// Gathers the halo-extended envelope from the chip board and
    /// smooths it; the core of the result becomes this step's smoothed
    /// heights. Counts the halo (non-core) cells gathered.
    pub fn smooth_from(&mut self, kernel: &PadKernel, board: &[f64], chip_cols: usize) {
        let ext = self.tile.ext;
        for r in 0..ext.rows {
            let src = (ext.row0 + r) * chip_cols + ext.col0;
            let dst = r * ext.cols;
            self.ext_buf[dst..dst + ext.cols].copy_from_slice(&board[src..src + ext.cols]);
        }
        self.halo_cells_exchanged += self.tile.halo_cells() as u64;
        kernel.apply_into(&self.ext_buf, ext.rows, ext.cols, &mut self.smooth_buf);
        let (dr, dc) = self.tile.core_in_ext();
        let core = self.tile.core;
        for r in 0..core.rows {
            let src = (dr + r) * ext.cols + dc;
            self.smoothed_core[r * core.cols..(r + 1) * core.cols]
                .copy_from_slice(&self.smooth_buf[src..src + core.cols]);
        }
    }

    /// Pointwise DSH/Preston update of the core from the global
    /// reference plane.
    pub fn update(&mut self, z_ref: f64, params: &ProcessParams) {
        let pressures = window_pressures(&self.smoothed_core, z_ref, params);
        polish_pointwise(
            &mut self.z_up,
            &mut self.z_down,
            &pressures,
            &self.rho_eff,
            &self.dish_factor,
            &self.erosion_factor,
            params,
        );
    }

    /// Scatters the final core state into the chip-level result boards.
    pub fn finalize_into(
        &self,
        z_up: &mut [f64],
        z_down: &mut [f64],
        density: &mut [f64],
        chip_cols: usize,
    ) {
        self.scatter_core(&self.z_up, z_up, chip_cols);
        self.scatter_core(&self.z_down, z_down, chip_cols);
        self.scatter_core(&self.density, density, chip_cols);
    }
}

/// Exchange statistics of one sharded layer simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Number of tiles.
    pub tiles: usize,
    /// Polish steps run.
    pub steps: usize,
    /// Halo cells gathered across all tiles and steps (×8 for bytes).
    pub halo_cells_exchanged: u64,
    /// Contact-solve force evaluations (matches the monolithic run).
    pub force_evals: u64,
}

/// A shard-mapping strategy: applies `f` to every shard, returning them
/// in the same order. The sequential reference is
/// [`map_sequential`]; `neurfill-chip` supplies a pool-backed parallel
/// mapper. `f` only touches one shard's state, so any execution order
/// (or interleaving) yields the same result.
pub type ShardMap<'a> =
    &'a (dyn Fn(Vec<TileShard>, &(dyn Fn(TileShard) -> TileShard + Sync)) -> Vec<TileShard> + 'a);

/// The trivial in-order shard mapper.
#[must_use]
pub fn map_sequential(
    shards: Vec<TileShard>,
    f: &(dyn Fn(TileShard) -> TileShard + Sync),
) -> Vec<TileShard> {
    shards.into_iter().map(f).collect()
}

/// Runs the full polish loop over tile shards, exchanging halos through
/// chip-sized boards each step and solving the reference plane globally
/// on the assembled chip — byte-identical to the monolithic
/// [`CmpSimulator::simulate_layer`](crate::CmpSimulator) when every
/// shard's halo is at least the kernel radius.
///
/// # Panics
///
/// Panics when shard cores do not tile the `chip_rows × chip_cols`
/// board (mismatched construction).
#[must_use]
pub fn simulate_layer_sharded(
    mut shards: Vec<TileShard>,
    chip_rows: usize,
    chip_cols: usize,
    params: &ProcessParams,
    kernel: &PadKernel,
    contact_solve: ContactSolve,
    map: ShardMap<'_>,
) -> (LayerProfile, ShardStats, Vec<TileShard>) {
    let n = chip_rows * chip_cols;
    assert_eq!(
        shards.iter().map(|s| s.tile.core.len()).sum::<usize>(),
        n,
        "shard cores must tile the chip"
    );
    let mut envelope = vec![0.0; n];
    let mut smoothed = vec![0.0; n];
    let mut force_evals = 0u64;
    for _ in 0..params.steps {
        for s in &shards {
            s.scatter_envelope(&mut envelope, chip_cols);
        }
        {
            let board = &envelope;
            shards = map(shards, &move |mut s: TileShard| {
                s.smooth_from(kernel, board, chip_cols);
                s
            });
        }
        for s in &shards {
            s.scatter_smoothed(&mut smoothed, chip_cols);
        }
        let (z_ref, solve_stats) = match contact_solve {
            ContactSolve::Exact => solve_reference_plane_stats(&smoothed, params),
            ContactSolve::SortedPrefix => solve_reference_plane_sorted_stats(&smoothed, params),
        };
        force_evals += solve_stats.force_evals;
        shards = map(shards, &move |mut s: TileShard| {
            s.update(z_ref, params);
            s
        });
    }
    let mut z_up = vec![0.0; n];
    let mut z_down = vec![0.0; n];
    let mut density = vec![0.0; n];
    for s in &shards {
        s.finalize_into(&mut z_up, &mut z_down, &mut density, chip_cols);
    }
    let profile = finalize_layer(chip_rows, chip_cols, &density, &z_up, &z_down);
    let stats = ShardStats {
        tiles: shards.len(),
        steps: params.steps,
        halo_cells_exchanged: shards.iter().map(TileShard::halo_cells_exchanged).sum(),
        force_evals,
    };
    (profile, stats, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::CmpSimulator;
    use neurfill_layout::{DesignKind, DesignSpec, Tiling};

    fn sharded_layer(
        layout: &neurfill_layout::Layout,
        layer: usize,
        tiling: &Tiling,
        params: &ProcessParams,
    ) -> (LayerProfile, ShardStats) {
        let kernel = PadKernel::exponential(params.character_length, params.kernel_radius);
        let shards: Vec<TileShard> = tiling
            .tiles()
            .map(|t| {
                let sub = layout.crop(t.ext);
                TileShard::new(t, &LayerInput::from_layout(&sub, layer), &kernel, params).unwrap()
            })
            .collect();
        let (profile, stats, _) = simulate_layer_sharded(
            shards,
            layout.rows(),
            layout.cols(),
            params,
            &kernel,
            ContactSolve::Exact,
            &map_sequential,
        );
        (profile, stats)
    }

    #[test]
    fn sharded_layer_is_bit_identical_to_monolithic() {
        let params = ProcessParams::fast();
        let sim = CmpSimulator::new(params.clone()).unwrap();
        for kind in [DesignKind::CmpTest, DesignKind::Fpga, DesignKind::RiscV] {
            let layout = DesignSpec::new(kind, 12, 18, 5).generate();
            let mono = sim.simulate_layer(&LayerInput::from_layout(&layout, 0));
            for tile in [1, 3, 5, 18] {
                let tiling = Tiling::square(layout.rows(), layout.cols(), tile, params.kernel_radius);
                let (sharded, stats) = sharded_layer(&layout, 0, &tiling, &params);
                assert_eq!(sharded, mono, "{kind:?} tile={tile}");
                assert_eq!(stats.tiles, tiling.num_tiles());
                assert_eq!(stats.steps, params.steps);
            }
        }
    }

    #[test]
    fn oversized_halo_is_also_bit_identical() {
        let params = ProcessParams::fast();
        let sim = CmpSimulator::new(params.clone()).unwrap();
        let layout = DesignSpec::new(DesignKind::RiscV, 10, 10, 3).generate();
        let mono = sim.simulate_layer(&LayerInput::from_layout(&layout, 1));
        let tiling = Tiling::square(10, 10, 4, params.kernel_radius + 3);
        let (sharded, _) = sharded_layer(&layout, 1, &tiling, &params);
        assert_eq!(sharded, mono);
    }

    #[test]
    fn halo_exchange_volume_is_counted() {
        let params = ProcessParams::fast();
        let layout = DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate();
        let tiling = Tiling::square(8, 8, 4, params.kernel_radius);
        let (_, stats) = sharded_layer(&layout, 0, &tiling, &params);
        let per_step: u64 = tiling.tiles().map(|t| t.halo_cells() as u64).sum();
        assert_eq!(stats.halo_cells_exchanged, per_step * params.steps as u64);
        assert!(stats.halo_cells_exchanged > 0);
        // Single-tile runs exchange nothing.
        let whole = Tiling::square(8, 8, 8, params.kernel_radius);
        let (_, stats1) = sharded_layer(&layout, 0, &whole, &params);
        assert_eq!(stats1.halo_cells_exchanged, 0);
    }

    #[test]
    fn undersized_halo_diverges_from_monolithic() {
        // With halo < kernel radius the smoothing support is clipped at
        // tile boundaries — the decomposition soundness argument needs
        // halo >= radius, and this pins that the test above is not
        // vacuous.
        let params = ProcessParams::fast();
        assert!(params.kernel_radius >= 1);
        let sim = CmpSimulator::new(params.clone()).unwrap();
        let layout = DesignSpec::new(DesignKind::CmpTest, 12, 12, 2).generate();
        let mono = sim.simulate_layer(&LayerInput::from_layout(&layout, 0));
        let tiling = Tiling::square(12, 12, 4, 0);
        let (sharded, _) = sharded_layer(&layout, 0, &tiling, &params);
        assert_ne!(sharded, mono);
    }

    #[test]
    fn shard_rejects_mismatched_input() {
        let params = ProcessParams::fast();
        let kernel = PadKernel::exponential(params.character_length, params.kernel_radius);
        let layout = DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate();
        let tiling = Tiling::square(8, 8, 4, params.kernel_radius);
        let tile = tiling.tile(0, 0);
        // Core-sized input where the extended region is expected.
        let sub = layout.crop(tile.core);
        let err = TileShard::new(tile, &LayerInput::from_layout(&sub, 0), &kernel, &params);
        assert!(err.is_err());
    }
}
