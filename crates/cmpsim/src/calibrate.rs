//! Process calibration: fitting simulator parameters to reference
//! measurements.
//!
//! The paper's simulator is "calibrated under a 45 nm process of a
//! foundry, and the accuracy is matched with the CMP Predictor" — i.e.
//! its parameters were fit against measured post-CMP profiles. This module
//! provides that fitting step for this reproduction's simulator: given
//! `(pattern, measured heights)` pairs, it tunes selected process
//! parameters by cyclic coordinate descent with golden-section line
//! searches (derivative-free, robust for a handful of parameters).

use crate::params::ProcessParams;
use crate::simulator::{CmpSimulator, LayerInput};

/// One reference measurement: a layer pattern and its measured post-CMP
/// average-height map (nm, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The extracted layer pattern.
    pub input: LayerInput,
    /// Measured heights (nm), `rows × cols` row-major.
    pub heights: Vec<f64>,
}

/// Which parameters the fit may adjust, with their search ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSpec {
    /// Range for `removal_per_step` (nm).
    pub removal_per_step: Option<(f64, f64)>,
    /// Range for `dishing_coefficient`.
    pub dishing_coefficient: Option<(f64, f64)>,
    /// Range for `character_length` (windows).
    pub character_length: Option<(f64, f64)>,
    /// Range for `critical_step` (nm).
    pub critical_step: Option<(f64, f64)>,
    /// Coordinate-descent sweeps over the enabled parameters.
    pub sweeps: usize,
    /// Golden-section iterations per line search.
    pub line_search_iterations: usize,
}

impl Default for CalibrationSpec {
    fn default() -> Self {
        Self {
            removal_per_step: Some((2.0, 20.0)),
            dishing_coefficient: Some((0.0, 1.5)),
            character_length: Some((0.5, 4.0)),
            critical_step: None,
            sweeps: 3,
            line_search_iterations: 18,
        }
    }
}

/// Result of a calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationResult {
    /// The fitted parameters.
    pub params: ProcessParams,
    /// Final root-mean-square height error (nm).
    pub rmse_nm: f64,
    /// Simulator invocations spent.
    pub simulations: usize,
}

fn rmse(params: &ProcessParams, data: &[Measurement]) -> Option<f64> {
    let sim = CmpSimulator::new(params.clone()).ok()?;
    let mut acc = 0.0;
    let mut n = 0usize;
    for m in data {
        let profile = sim.simulate_layer(&m.input);
        for (p, t) in profile.heights().iter().zip(&m.heights) {
            acc += (p - t) * (p - t);
            n += 1;
        }
    }
    Some((acc / n.max(1) as f64).sqrt())
}

/// Golden-section minimization of `f` over `[lo, hi]`.
fn golden_section(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, iterations: usize) -> (f64, f64) {
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..iterations {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
    }
    if fc < fd {
        (c, fc)
    } else {
        (d, fd)
    }
}

/// Fits the enabled parameters of `start` against `data`.
///
/// # Panics
///
/// Panics when `data` is empty, a measurement's height map disagrees with
/// its pattern dimensions, or `start` is invalid.
#[must_use]
#[allow(clippy::expect_used)] // invalid starting params are a documented panic
pub fn calibrate(
    start: &ProcessParams,
    data: &[Measurement],
    spec: &CalibrationSpec,
) -> CalibrationResult {
    assert!(!data.is_empty(), "need at least one measurement");
    for m in data {
        assert_eq!(m.heights.len(), m.input.rows * m.input.cols, "measurement size mismatch");
    }
    start.validate().expect("valid starting parameters");

    let mut params = start.clone();
    let mut simulations = 0usize;
    let mut best = rmse(&params, data).expect("valid start");
    simulations += data.len();

    type Field = (fn(&ProcessParams) -> f64, fn(&mut ProcessParams, f64), Option<(f64, f64)>);
    let fields: [Field; 4] = [
        (|p| p.removal_per_step, |p, v| p.removal_per_step = v, spec.removal_per_step),
        (|p| p.dishing_coefficient, |p, v| p.dishing_coefficient = v, spec.dishing_coefficient),
        (|p| p.character_length, |p, v| p.character_length = v, spec.character_length),
        (|p| p.critical_step, |p, v| p.critical_step = v, spec.critical_step),
    ];

    for _ in 0..spec.sweeps {
        for (_get, set, range) in &fields {
            let Some((lo, hi)) = range else { continue };
            let mut evals = 0usize;
            let (v, f) = golden_section(
                |x| {
                    let mut trial = params.clone();
                    set(&mut trial, x);
                    evals += 1;
                    rmse(&trial, data).unwrap_or(f64::INFINITY)
                },
                *lo,
                *hi,
                spec.line_search_iterations,
            );
            simulations += evals * data.len();
            if f < best {
                best = f;
                set(&mut params, v);
            }
        }
    }

    CalibrationResult { params, rmse_nm: best, simulations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_data(true_params: &ProcessParams) -> Vec<Measurement> {
        let sim = CmpSimulator::new(true_params.clone()).unwrap();
        let mut data = Vec::new();
        for seed in 0..3u64 {
            let rows = 8;
            let cols = 8;
            let density: Vec<f64> = (0..rows * cols)
                .map(|i| 0.2 + 0.6 * (((i as u64).wrapping_mul(2654435761 + seed) % 100) as f64 / 100.0))
                .collect();
            let input = LayerInput {
                rows,
                cols,
                perimeter: density.iter().map(|d| 2.0 * 10_000.0 * d / 0.2).collect(),
                avg_width: (0..rows * cols).map(|i| 0.1 + 0.05 * (i % 7) as f64).collect(),
                density,
            };
            let heights = sim.simulate_layer(&input).heights().to_vec();
            data.push(Measurement { input, heights });
        }
        data
    }

    #[test]
    fn self_calibration_recovers_removal_rate() {
        let truth = ProcessParams { steps: 20, kernel_radius: 2, ..ProcessParams::default() };
        let data = reference_data(&truth);
        // Start with a wrong removal rate and let the fit recover it.
        let start = ProcessParams { removal_per_step: 12.0, ..truth.clone() };
        let spec = CalibrationSpec {
            removal_per_step: Some((2.0, 20.0)),
            dishing_coefficient: None,
            character_length: None,
            critical_step: None,
            sweeps: 1,
            line_search_iterations: 25,
        };
        let result = calibrate(&start, &data, &spec);
        assert!(
            (result.params.removal_per_step - truth.removal_per_step).abs() < 0.1,
            "fitted {} vs true {}",
            result.params.removal_per_step,
            truth.removal_per_step
        );
        assert!(result.rmse_nm < 0.5, "rmse {}", result.rmse_nm);
    }

    #[test]
    fn calibration_never_worsens_rmse() {
        let truth = ProcessParams { steps: 15, kernel_radius: 2, ..ProcessParams::default() };
        let data = reference_data(&truth);
        let start = ProcessParams { removal_per_step: 5.0, dishing_coefficient: 1.0, ..truth.clone() };
        let before = rmse(&start, &data).unwrap();
        let spec = CalibrationSpec {
            sweeps: 1,
            line_search_iterations: 10,
            character_length: None,
            ..CalibrationSpec::default()
        };
        let result = calibrate(&start, &data, &spec);
        assert!(result.rmse_nm <= before + 1e-12, "{} > {before}", result.rmse_nm);
        assert!(result.simulations > 0);
    }

    #[test]
    #[should_panic(expected = "at least one measurement")]
    fn empty_data_panics() {
        let _ = calibrate(&ProcessParams::default(), &[], &CalibrationSpec::default());
    }

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let (x, f) = golden_section(|v| (v - 3.0) * (v - 3.0) + 1.0, 0.0, 10.0, 40);
        assert!((x - 3.0).abs() < 1e-4);
        assert!((f - 1.0).abs() < 1e-8);
    }
}
