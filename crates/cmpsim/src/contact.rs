//! Contact-mechanics pressure solve (paper §II-A step 2).
//!
//! The rough pad is modelled as a bed of asperities: the contact pressure
//! on a window whose (smoothed) envelope height is `z` is
//! `p(z) = k · max(0, z − z_ref)^e`, and the pad reference plane `z_ref`
//! floats so that the mean window pressure balances the applied pressure.
//! `z_ref` is found by bisection (the force balance is strictly monotone).

use crate::params::ProcessParams;

/// Solves for the pad reference plane `z_ref` so that
/// `mean_i k·⟨z_i − z_ref⟩^e = applied_pressure`.
///
/// Returns `z_ref`. The heights are the *smoothed* envelope heights.
///
/// # Panics
///
/// Panics when `heights` is empty.
#[must_use]
pub fn solve_reference_plane(heights: &[f64], params: &ProcessParams) -> f64 {
    assert!(!heights.is_empty(), "need at least one window");
    let k = params.contact_stiffness();
    let e = params.contact_exponent;
    let target = params.applied_pressure;
    let zmax = heights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let zmin = heights.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean_force = |z_ref: f64| -> f64 {
        heights.iter().map(|&z| k * (z - z_ref).max(0.0).powf(e)).sum::<f64>() / heights.len() as f64
    };
    // Bracket: at z_ref = zmax force is 0 < target; lower bound far enough
    // below zmin that force exceeds target.
    let mut hi = zmax;
    let mut lo = zmin - params.reference_penetration;
    while mean_force(lo) < target {
        lo -= params.reference_penetration.max(1.0);
        if zmax - lo > 1e7 {
            break; // degenerate inputs; bisection below still converges
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mean_force(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Per-window contact pressures for the given (smoothed) envelope heights
/// and solved reference plane.
#[must_use]
pub fn window_pressures(heights: &[f64], z_ref: f64, params: &ProcessParams) -> Vec<f64> {
    let k = params.contact_stiffness();
    let e = params.contact_exponent;
    heights.iter().map(|&z| k * (z - z_ref).max(0.0).powf(e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_chip_carries_applied_pressure_uniformly() {
        let p = ProcessParams::default();
        let heights = vec![500.0; 64];
        let z_ref = solve_reference_plane(&heights, &p);
        let pressures = window_pressures(&heights, z_ref, &p);
        for q in &pressures {
            assert!((q - p.applied_pressure).abs() < 1e-6, "{q}");
        }
        // Penetration equals the reference penetration by construction.
        assert!((500.0 - z_ref - p.reference_penetration).abs() < 1e-6);
    }

    #[test]
    fn high_windows_carry_more_pressure() {
        let p = ProcessParams::default();
        let mut heights = vec![500.0; 64];
        heights[0] = 520.0;
        let z_ref = solve_reference_plane(&heights, &p);
        let q = window_pressures(&heights, z_ref, &p);
        assert!(q[0] > q[1]);
        // Force balance holds.
        let mean: f64 = q.iter().sum::<f64>() / q.len() as f64;
        assert!((mean - p.applied_pressure).abs() < 1e-6);
    }

    #[test]
    fn very_low_windows_lose_contact() {
        let p = ProcessParams::default();
        let mut heights = vec![500.0; 16];
        heights[3] = 300.0; // far below everything
        let z_ref = solve_reference_plane(&heights, &p);
        let q = window_pressures(&heights, z_ref, &p);
        assert_eq!(q[3], 0.0);
    }

    #[test]
    fn mean_pressure_is_conserved_for_rough_chips() {
        let p = ProcessParams::default();
        let heights: Vec<f64> = (0..100).map(|i| 480.0 + (i % 13) as f64 * 3.0).collect();
        let z_ref = solve_reference_plane(&heights, &p);
        let q = window_pressures(&heights, z_ref, &p);
        let mean: f64 = q.iter().sum::<f64>() / q.len() as f64;
        assert!((mean - p.applied_pressure).abs() < 1e-6);
    }
}
