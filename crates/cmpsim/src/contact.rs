//! Contact-mechanics pressure solve (paper §II-A step 2).
//!
//! The rough pad is modelled as a bed of asperities: the contact pressure
//! on a window whose (smoothed) envelope height is `z` is
//! `p(z) = k · max(0, z − z_ref)^e`, and the pad reference plane `z_ref`
//! floats so that the mean window pressure balances the applied pressure.
//! `z_ref` is found by bisection (the force balance is strictly monotone).
//!
//! Two solvers are provided:
//!
//! * [`solve_reference_plane`] — the default, **bit-identical** to the
//!   pre-optimization solver (kept as [`solve_reference_plane_reference`])
//!   on every input where that solver terminates. It hoists the min/max
//!   scans into a single pass, skips non-contacting windows inside the
//!   force sum (an exact no-op: their reference contribution is `+0.0`
//!   added to a non-negative sum), and replaces the unbounded one-step
//!   bracket walk with a galloping + binary search over the *same*
//!   sequential-subtraction grid — O(log) force evaluations instead of
//!   O(steps), landing on the identical grid point bit for bit.
//! * [`solve_reference_plane_sorted`] — an opt-in fast solver that sorts
//!   the heights once and evaluates the force from prefix sums of the
//!   sorted heights via binary search. At `contact_exponent == 1.0` each
//!   bisection iteration is O(log windows); at other exponents the sum
//!   does not decompose into prefix sums, so it falls back to summing the
//!   contacting prefix only (still skipping the non-contacting tail
//!   without scanning it). Its force sum runs in sorted rather than
//!   input order, so results agree with the default solver to bisection
//!   tolerance (~1e-9 on `z_ref`), not to the bit — which is why it is
//!   opt-in (`CmpSimulator::with_contact_solve`) and the default path
//!   keeps byte-reproducibility.

use crate::params::ProcessParams;
use std::cell::Cell;

/// Instrumentation from one reference-plane solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContactSolveStats {
    /// Number of mean-force evaluations (each O(windows) for the exact
    /// solver; O(log windows) for the sorted solver at exponent 1).
    pub force_evals: u64,
    /// Grid steps taken while bracketing the root from below.
    pub bracket_steps: u64,
}

/// Which reference-plane solver the simulator uses per polish step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContactSolve {
    /// Bit-identical optimized solver (the default path).
    #[default]
    Exact,
    /// Sorted prefix-sum solver: faster force evaluations, agrees to
    /// bisection tolerance instead of to the bit.
    SortedPrefix,
}

impl ContactSolve {
    /// The solver each numerics tier uses by default: `Exact` keeps the
    /// bit-identical solver, `Fast` takes the sorted prefix solver.
    #[must_use]
    pub fn for_tier(tier: neurfill_tensor::NumericsTier) -> Self {
        if tier.is_fast() {
            Self::SortedPrefix
        } else {
            Self::Exact
        }
    }
}

/// Solves for the pad reference plane `z_ref` so that
/// `mean_i k·⟨z_i − z_ref⟩^e = applied_pressure`.
///
/// Returns `z_ref`. The heights are the *smoothed* envelope heights.
/// Bit-identical to [`solve_reference_plane_reference`] wherever the
/// latter terminates (see the module docs).
///
/// # Panics
///
/// Panics when `heights` is empty.
#[must_use]
pub fn solve_reference_plane(heights: &[f64], params: &ProcessParams) -> f64 {
    solve_reference_plane_stats(heights, params).0
}

/// [`solve_reference_plane`] plus solve instrumentation.
///
/// # Panics
///
/// Panics when `heights` is empty.
#[must_use]
pub fn solve_reference_plane_stats(heights: &[f64], params: &ProcessParams) -> (f64, ContactSolveStats) {
    assert!(!heights.is_empty(), "need at least one window");
    let k = params.contact_stiffness();
    let e = params.contact_exponent;
    let target = params.applied_pressure;
    if !(k.is_finite() && k != 0.0) {
        // Degenerate stiffness (overflowed/underflowed `pen^e`): the
        // zero-skip below is no longer an exact no-op (`k · 0` may be
        // NaN), so take the reference loop verbatim.
        return (solve_reference_plane_reference(heights, params), ContactSolveStats::default());
    }
    // Single pass over the heights for both extrema (the reference
    // solver folded twice); `f64::max`/`min` keep its exact NaN and
    // signed-zero semantics.
    let mut zmax = f64::NEG_INFINITY;
    let mut zmin = f64::INFINITY;
    for &z in heights {
        zmax = f64::max(zmax, z);
        zmin = f64::min(zmin, z);
    }
    let evals = Cell::new(0u64);
    // Windows at or below the plane contribute `k · max(0, ·)^e = +0.0`
    // in the reference sum; adding `+0.0` to a non-negative partial sum
    // is an exact no-op, so they are skipped without changing a bit.
    // (NaN heights also match: the reference maps them to `+0.0` via
    // `max(0.0)`, and `NaN > z` is false here.)
    let mean_force = |z_ref: f64| -> f64 {
        evals.set(evals.get() + 1);
        let mut sum = 0.0;
        for &z in heights {
            if z > z_ref {
                sum += k * (z - z_ref).powf(e);
            }
        }
        sum / heights.len() as f64
    };
    let hi = zmax;
    let (lo, bracket_steps) = bracket_lo(
        zmin - params.reference_penetration,
        params.reference_penetration.max(1.0),
        zmax,
        target,
        mean_force,
    );
    let z_ref = bisect(lo, hi, target, mean_force);
    (z_ref, ContactSolveStats { force_evals: evals.get(), bracket_steps })
}

/// The 200-iteration bisection shared by all solvers (verbatim from the
/// reference implementation — same probes, same exit test).
fn bisect(mut lo: f64, mut hi: f64, target: f64, mean_force: impl Fn(f64) -> f64) -> f64 {
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mean_force(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Brackets the root from below: returns the same grid point the
/// reference walk
///
/// ```text
/// while mean_force(lo) < target { lo -= step; if zmax - lo > 1e7 { break } }
/// ```
///
/// would return, using O(log steps) force evaluations instead of one per
/// step. The walk's grid is the *sequential* subtraction sequence
/// `lo_{j+1} = lo_j − step` (not `lo_0 − j·step`, which rounds
/// differently), so grid points are recomputed by replaying
/// subtractions. Mathematically `mean_force(lo_0) ≥ target` always holds
/// (every window penetrates by at least the reference penetration at
/// `lo_0`), so the fast path — one evaluation, zero steps — is the norm
/// and the walk only triggers on ulp-level rounding ties.
///
/// Termination is strictly better than the reference: where the walk
/// cannot make progress (`lo − step == lo` at large magnitudes, or the
/// NaN-guard cases where the reference loops forever), this returns the
/// stall point instead of hanging.
///
/// The `!(force < target)` comparisons are deliberate (and exempted from
/// `clippy::neg_cmp_op_on_partial_ord`): a NaN force must exit the walk
/// exactly like the reference `while` condition does, which `>=` or
/// `partial_cmp` would not reproduce.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn bracket_lo(l0: f64, step: f64, zmax: f64, target: f64, force: impl Fn(f64) -> f64) -> (f64, u64) {
    if !(force(l0) < target) {
        return (l0, 0);
    }
    // Replays j sequential subtractions from `l0` (the walk's exact FP grid).
    let grid = |j: u64| -> f64 {
        let mut v = l0;
        for _ in 0..j {
            v -= step;
        }
        v
    };
    // First crossing in (a, b] given force(grid(a)) < target ≤ force(grid(b)).
    let first_crossing = |mut a: u64, mut b: u64| -> u64 {
        while b - a > 1 {
            let m = a + (b - a) / 2;
            if !(force(grid(m)) < target) {
                b = m;
            } else {
                a = m;
            }
        }
        b
    };
    // The reference walk evaluates force at j = 0, 1, 2, … and checks the
    // guard at j = 1, 2, … (after each subtraction, before the next force
    // check); it stops at the first j where either fires. Gallop the
    // force checks (1, 2, 4, …) while stepping the grid one subtraction
    // at a time so every guard check still happens in order.
    let mut below = 0u64; // largest j with force(grid(j)) < target confirmed
    let mut j = 0u64;
    let mut lo = l0;
    let mut next_probe = 1u64;
    loop {
        let next = lo - step;
        j += 1;
        let stalled = next == lo;
        if !stalled {
            lo = next;
        }
        if stalled || zmax - lo > 1e7 {
            // Guard fires at j (or the walk stalls there). The reference
            // would still have evaluated force at below+1 ..= j−1 first.
            if j >= below + 2 && !(force(grid(j - 1)) < target) {
                let jf = first_crossing(below, j - 1);
                return (grid(jf), jf);
            }
            return (lo, j);
        }
        if j == next_probe {
            if !(force(lo) < target) {
                let jf = first_crossing(below, j);
                return (grid(jf), jf);
            }
            below = j;
            next_probe = next_probe.saturating_mul(2);
        }
    }
}

/// The pre-optimization solver, kept verbatim: the bit-exactness oracle
/// for [`solve_reference_plane`] and the fallback for degenerate
/// stiffness.
///
/// # Panics
///
/// Panics when `heights` is empty.
#[must_use]
pub fn solve_reference_plane_reference(heights: &[f64], params: &ProcessParams) -> f64 {
    assert!(!heights.is_empty(), "need at least one window");
    let k = params.contact_stiffness();
    let e = params.contact_exponent;
    let target = params.applied_pressure;
    let zmax = heights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let zmin = heights.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean_force = |z_ref: f64| -> f64 {
        heights.iter().map(|&z| k * (z - z_ref).max(0.0).powf(e)).sum::<f64>() / heights.len() as f64
    };
    // Bracket: at z_ref = zmax force is 0 < target; lower bound far enough
    // below zmin that force exceeds target.
    let mut hi = zmax;
    let mut lo = zmin - params.reference_penetration;
    while mean_force(lo) < target {
        lo -= params.reference_penetration.max(1.0);
        if zmax - lo > 1e7 {
            break; // degenerate inputs; bisection below still converges
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mean_force(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Opt-in sorted prefix-sum solver (see the module docs): sorts once,
/// then each force evaluation finds the contacting prefix by binary
/// search — O(log windows) per evaluation at `contact_exponent == 1.0`,
/// O(contacting windows) otherwise. Agrees with
/// [`solve_reference_plane`] to bisection tolerance.
///
/// # Panics
///
/// Panics when `heights` is empty.
#[must_use]
pub fn solve_reference_plane_sorted(heights: &[f64], params: &ProcessParams) -> f64 {
    solve_reference_plane_sorted_stats(heights, params).0
}

/// [`solve_reference_plane_sorted`] plus solve instrumentation.
///
/// # Panics
///
/// Panics when `heights` is empty.
#[must_use]
pub fn solve_reference_plane_sorted_stats(
    heights: &[f64],
    params: &ProcessParams,
) -> (f64, ContactSolveStats) {
    assert!(!heights.is_empty(), "need at least one window");
    let k = params.contact_stiffness();
    let e = params.contact_exponent;
    let target = params.applied_pressure;
    // NaN heights contribute zero force in the reference model
    // (`(NaN).max(0.0) == 0.0`); drop them from the sorted view but keep
    // the original count as the mean's denominator.
    //
    // The sort key is (height descending, original index ascending): the
    // index tie-break pins one canonical summation order by construction,
    // so the solver's result cannot depend on how `sort_unstable_by`
    // happens to arrange equal keys — the prefix sums, and through them
    // `z_ref`, are bit-identical however the caller assembled `heights`
    // (monolithic, or merged from any worker count).
    let mut indexed: Vec<(f64, usize)> =
        heights.iter().copied().enumerate().filter(|(_, z)| !z.is_nan()).map(|(i, z)| (z, i)).collect();
    indexed.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let sorted: Vec<f64> = indexed.into_iter().map(|(z, _)| z).collect();
    let n = heights.len() as f64;
    if sorted.is_empty() {
        return (f64::NAN, ContactSolveStats::default());
    }
    let mut prefix = Vec::with_capacity(sorted.len() + 1);
    prefix.push(0.0f64);
    for &z in &sorted {
        let last = *prefix.last().unwrap_or(&0.0);
        prefix.push(last + z);
    }
    let evals = Cell::new(0u64);
    let mean_force = |z_ref: f64| -> f64 {
        evals.set(evals.get() + 1);
        // Contacting windows are exactly the first `c` of the descending
        // sort.
        let c = sorted.partition_point(|&z| z > z_ref);
        if c == 0 {
            return 0.0;
        }
        if e == 1.0 {
            // Σ k·(z_i − z) over the prefix collapses onto the prefix sum.
            k * (prefix[c] - c as f64 * z_ref) / n
        } else {
            let mut sum = 0.0;
            for &z in &sorted[..c] {
                sum += k * (z - z_ref).powf(e);
            }
            sum / n
        }
    };
    let zmax = sorted[0];
    let zmin = sorted[sorted.len() - 1];
    let hi = zmax;
    let mut lo = zmin - params.reference_penetration;
    let mut steps = 0u64;
    // Geometric bracket expansion (the math guarantees the first probe
    // already exceeds the target; the loop is ulp-tie insurance).
    let mut span = params.reference_penetration.max(1.0);
    while mean_force(lo) < target {
        let next = lo - span;
        steps += 1;
        span *= 2.0;
        if next == lo || zmax - next > 1e7 {
            lo = next;
            break;
        }
        lo = next;
    }
    let z_ref = bisect(lo, hi, target, mean_force);
    (z_ref, ContactSolveStats { force_evals: evals.get(), bracket_steps: steps })
}

/// Per-window contact pressures for the given (smoothed) envelope heights
/// and solved reference plane.
#[must_use]
pub fn window_pressures(heights: &[f64], z_ref: f64, params: &ProcessParams) -> Vec<f64> {
    let k = params.contact_stiffness();
    let e = params.contact_exponent;
    heights.iter().map(|&z| k * (z - z_ref).max(0.0).powf(e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_chip_carries_applied_pressure_uniformly() {
        let p = ProcessParams::default();
        let heights = vec![500.0; 64];
        let z_ref = solve_reference_plane(&heights, &p);
        let pressures = window_pressures(&heights, z_ref, &p);
        for q in &pressures {
            assert!((q - p.applied_pressure).abs() < 1e-6, "{q}");
        }
        // Penetration equals the reference penetration by construction.
        assert!((500.0 - z_ref - p.reference_penetration).abs() < 1e-6);
    }

    #[test]
    fn high_windows_carry_more_pressure() {
        let p = ProcessParams::default();
        let mut heights = vec![500.0; 64];
        heights[0] = 520.0;
        let z_ref = solve_reference_plane(&heights, &p);
        let q = window_pressures(&heights, z_ref, &p);
        assert!(q[0] > q[1]);
        // Force balance holds.
        let mean: f64 = q.iter().sum::<f64>() / q.len() as f64;
        assert!((mean - p.applied_pressure).abs() < 1e-6);
    }

    #[test]
    fn very_low_windows_lose_contact() {
        let p = ProcessParams::default();
        let mut heights = vec![500.0; 16];
        heights[3] = 300.0; // far below everything
        let z_ref = solve_reference_plane(&heights, &p);
        let q = window_pressures(&heights, z_ref, &p);
        assert_eq!(q[3], 0.0);
    }

    #[test]
    fn mean_pressure_is_conserved_for_rough_chips() {
        let p = ProcessParams::default();
        let heights: Vec<f64> = (0..100).map(|i| 480.0 + (i % 13) as f64 * 3.0).collect();
        let z_ref = solve_reference_plane(&heights, &p);
        let q = window_pressures(&heights, z_ref, &p);
        let mean: f64 = q.iter().sum::<f64>() / q.len() as f64;
        assert!((mean - p.applied_pressure).abs() < 1e-6);
    }

    #[test]
    fn optimized_solver_is_bitwise_equal_to_reference() {
        let p = ProcessParams::default();
        for heights in [
            vec![500.0; 7],
            vec![480.0, 520.0, 500.0, 499.5],
            (0..257).map(|i| 450.0 + (i % 29) as f64 * 2.5).collect::<Vec<_>>(),
            vec![0.0, -20.0, 35.0],
        ] {
            let want = solve_reference_plane_reference(&heights, &p);
            let got = solve_reference_plane(&heights, &p);
            assert_eq!(want.to_bits(), got.to_bits(), "heights = {heights:?}");
        }
    }

    #[test]
    fn bracket_walk_matches_a_linear_scan_on_synthetic_forces() {
        // A synthetic monotone force whose crossing sits dozens of grid
        // steps below the start, so the galloped bracket actually
        // searches (unlike production inputs where the first probe wins).
        let scan = |l0: f64, step: f64, zmax: f64, target: f64, force: &dyn Fn(f64) -> f64| {
            let mut lo = l0;
            while force(lo) < target {
                lo -= step;
                if zmax - lo > 1e7 {
                    break;
                }
            }
            lo
        };
        for crossing in [0.5f64, 3.0, 17.0, 64.5, 1000.25] {
            let force = move |z: f64| -> f64 { (-z) - crossing }; // ≥ 0 ⇔ z ≤ −crossing
            let (got, _) = bracket_lo(0.0, 1.0, 0.0, 0.0, force);
            let want = scan(0.0, 1.0, 0.0, 0.0, &force);
            assert_eq!(want.to_bits(), got.to_bits(), "crossing at {crossing}");
        }
    }

    #[test]
    fn degenerate_guard_still_caps_the_bracket() {
        // A force that never reaches the target: the reference walk runs
        // until the zmax − lo > 1e7 guard fires; the galloped bracket
        // must land on the same guarded grid point.
        let force = |_z: f64| -> f64 { 0.0 };
        let step = 1e6;
        let (lo, steps) = bracket_lo(0.0, step, 0.0, 1.0, force);
        let mut want = 0.0;
        loop {
            want -= step;
            if 0.0 - want > 1e7 {
                break;
            }
        }
        assert_eq!(want.to_bits(), lo.to_bits());
        assert!(steps >= 10, "guard fires after ~11 steps, saw {steps}");
        // Stalled grids (|lo| so large the step vanishes) terminate
        // instead of hanging like the reference loop would.
        let (lo, _) = bracket_lo(-1e300, 1.0, -1e300 + 1.0, 1.0, force);
        assert!(lo.is_finite());
    }

    #[test]
    fn sorted_solver_agrees_with_exact_solver_to_tolerance() {
        let mut p = ProcessParams::default();
        let heights: Vec<f64> = (0..512).map(|i| 490.0 + ((i * 31) % 57) as f64 * 0.7).collect();
        for exponent in [1.0, 1.5] {
            p.contact_exponent = exponent;
            let exact = solve_reference_plane(&heights, &p);
            let (sorted, stats) = solve_reference_plane_sorted_stats(&heights, &p);
            assert!((exact - sorted).abs() < 1e-6, "e={exponent}: exact {exact} vs sorted {sorted}");
            assert!(stats.force_evals > 0);
        }
    }

    #[test]
    fn exact_solver_reports_bounded_force_evals() {
        let p = ProcessParams::default();
        let heights: Vec<f64> = (0..4096).map(|i| 500.0 + (i % 97) as f64).collect();
        let (_, stats) = solve_reference_plane_stats(&heights, &p);
        // 1 bracket evaluation + ≤200 bisection evaluations.
        assert!(stats.force_evals <= 201, "{}", stats.force_evals);
        assert_eq!(stats.bracket_steps, 0, "production inputs never walk");
    }
}
