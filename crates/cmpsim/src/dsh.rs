//! The density-step-height (DSH) removal-rate model (paper §II-A step 3,
//! after Cai's MIT pattern-dependency model [17]).
//!
//! While the local step height `s` exceeds the critical contact height
//! `h_c`, the pad only touches up areas, which therefore carry the whole
//! window pressure amplified by the inverse effective density. Once
//! `s < h_c`, the pad progressively contacts down areas and the pressure is
//! shared linearly in `s/h_c`.

use crate::params::ProcessParams;

/// Up/down-area pressures of one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureSplit {
    /// Pressure carried by up areas (over metal).
    pub up: f64,
    /// Pressure carried by down areas (over trenches/spaces).
    pub down: f64,
}

/// Splits a window pressure between up and down areas according to the DSH
/// model.
///
/// `effective_density` is the kernel-averaged density at the window; the
/// split clamps it to `params.min_effective_density` to keep `P/ρ_eff`
/// bounded.
#[must_use]
pub fn split_pressure(
    pressure: f64,
    effective_density: f64,
    step: f64,
    params: &ProcessParams,
) -> PressureSplit {
    let rho = effective_density.clamp(params.min_effective_density, 1.0);
    if step >= params.critical_step {
        // Pad rides on up areas only.
        PressureSplit { up: pressure / rho, down: 0.0 }
    } else {
        // Linear contact sharing: φ = s/h_c fraction still up-area-only.
        let phi = (step / params.critical_step).clamp(0.0, 1.0);
        let denom = rho + (1.0 - rho) * (1.0 - phi);
        let up = pressure / denom;
        PressureSplit { up, down: up * (1.0 - phi) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ProcessParams {
        ProcessParams::default()
    }

    #[test]
    fn large_step_concentrates_pressure_on_up_areas() {
        let p = params();
        let s = split_pressure(1.0, 0.5, 100.0, &p);
        assert!((s.up - 2.0).abs() < 1e-12);
        assert_eq!(s.down, 0.0);
    }

    #[test]
    fn zero_step_equalizes_pressures() {
        let p = params();
        let s = split_pressure(1.0, 0.5, 0.0, &p);
        assert!((s.up - 1.0).abs() < 1e-12);
        assert!((s.down - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_is_continuous_at_critical_step() {
        let p = params();
        let just_below = split_pressure(1.0, 0.4, p.critical_step - 1e-9, &p);
        let at = split_pressure(1.0, 0.4, p.critical_step, &p);
        assert!((just_below.up - at.up).abs() < 1e-6);
        assert!(just_below.down < 1e-6);
    }

    #[test]
    fn lower_density_amplifies_up_pressure() {
        let p = params();
        let lo = split_pressure(1.0, 0.2, 100.0, &p);
        let hi = split_pressure(1.0, 0.8, 100.0, &p);
        assert!(lo.up > hi.up);
    }

    #[test]
    fn density_is_clamped() {
        let p = params();
        let s = split_pressure(1.0, 0.0, 100.0, &p);
        assert!(s.up.is_finite());
        assert!((s.up - 1.0 / p.min_effective_density).abs() < 1e-9);
    }

    #[test]
    fn step_convergence_property() {
        // With pressure shared, up areas always erode at least as fast as
        // down areas, so steps shrink monotonically.
        let p = params();
        for &step in &[0.0, 5.0, 15.0, 29.0, 30.0, 60.0] {
            for &rho in &[0.1, 0.4, 0.9] {
                let s = split_pressure(1.0, rho, step, &p);
                assert!(s.up >= s.down, "step {step} rho {rho}: {s:?}");
                assert!(s.down >= 0.0);
            }
        }
    }
}
