//! The Preston equation (paper §II-A step 4, after Cook [18]): material
//! removal per unit time is proportional to pressure × relative velocity,
//! `dH/dt = −K_p · P · V`.
//!
//! The simulator folds `K_p·V·Δt` into one `removal_per_step` constant;
//! this module exposes the law explicitly for calibration and analysis
//! code that works in physical units.

/// Preston-law constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrestonLaw {
    /// Preston coefficient `K_p` (nm per (pressure·µm) of sliding).
    pub coefficient: f64,
    /// Relative pad velocity `V` (µm per time step).
    pub velocity: f64,
}

impl PrestonLaw {
    /// Creates a law from its two constants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when either constant is negative.
    #[must_use]
    pub fn new(coefficient: f64, velocity: f64) -> Self {
        debug_assert!(coefficient >= 0.0 && velocity >= 0.0);
        Self { coefficient, velocity }
    }

    /// The law whose per-step removal at unit pressure equals
    /// `removal_per_step` — the form the simulator uses internally.
    #[must_use]
    pub fn from_removal_per_step(removal_per_step: f64) -> Self {
        Self { coefficient: removal_per_step, velocity: 1.0 }
    }

    /// Removal (nm) over `dt` time steps at `pressure`.
    #[must_use]
    pub fn removal(&self, pressure: f64, dt: f64) -> f64 {
        self.coefficient * self.velocity * pressure * dt
    }

    /// Time steps needed to remove `amount` nm at `pressure`.
    ///
    /// Returns infinity when the pressure (or the law) is zero.
    #[must_use]
    pub fn time_to_remove(&self, amount: f64, pressure: f64) -> f64 {
        let rate = self.coefficient * self.velocity * pressure;
        if rate > 0.0 {
            amount / rate
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn removal_is_linear_in_each_factor() {
        let law = PrestonLaw::new(2.0, 3.0);
        assert_eq!(law.removal(1.0, 1.0), 6.0);
        assert_eq!(law.removal(2.0, 1.0), 12.0);
        assert_eq!(law.removal(1.0, 2.0), 12.0);
    }

    #[test]
    fn time_inverts_removal() {
        let law = PrestonLaw::from_removal_per_step(8.0);
        let t = law.time_to_remove(400.0, 1.0);
        assert_eq!(t, 50.0);
        assert_eq!(law.removal(1.0, t), 400.0);
        assert_eq!(law.time_to_remove(1.0, 0.0), f64::INFINITY);
    }

    proptest! {
        #[test]
        fn removal_time_roundtrip(
            k in 0.1f64..20.0,
            v in 0.1f64..5.0,
            p in 0.1f64..4.0,
            amount in 0.1f64..1000.0,
        ) {
            let law = PrestonLaw::new(k, v);
            let t = law.time_to_remove(amount, p);
            prop_assert!((law.removal(p, t) - amount).abs() < 1e-9 * amount.max(1.0));
        }
    }
}
