//! The full-chip CMP simulator: the four-step iterative loop of paper
//! §II-A / Fig. 2.
//!
//! Per unit polish time: (1) window envelope heights are smoothed by the
//! pad kernel; (2) the contact-mechanics force balance yields per-window
//! pressures; (3) the DSH model splits each window pressure between up and
//! down areas (with width-dependent dishing and perimeter-dependent erosion
//! modifiers); (4) the Preston equation removes material. The loop runs
//! until the configured total polish time.

use crate::contact::{
    solve_reference_plane_sorted_stats, solve_reference_plane_stats, window_pressures, ContactSolve,
};
use crate::kernel::PadKernel;
use crate::params::ProcessParams;
use crate::profile::{ChipProfile, LayerProfile};
use neurfill_layout::Layout;
use neurfill_obs::Telemetry;
use neurfill_tensor::NumericsTier;

/// Extracted per-layer simulator input: the pattern maps of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerInput {
    /// Number of window rows.
    pub rows: usize,
    /// Number of window columns.
    pub cols: usize,
    /// Row-major metal density map.
    pub density: Vec<f64>,
    /// Row-major copper perimeter map (µm per window).
    pub perimeter: Vec<f64>,
    /// Row-major average feature width map (µm).
    pub avg_width: Vec<f64>,
}

impl LayerInput {
    /// Extracts one layer of a layout.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    #[must_use]
    pub fn from_layout(layout: &Layout, layer: usize) -> Self {
        let g = layout.layer(layer);
        Self {
            rows: g.rows(),
            cols: g.cols(),
            density: g.iter().map(|w| w.density).collect(),
            perimeter: g.iter().map(|w| w.perimeter).collect(),
            avg_width: g.iter().map(|w| w.avg_width).collect(),
        }
    }

    /// Validates map lengths and value ranges.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.rows * self.cols;
        if n == 0 {
            return Err("empty layer".into());
        }
        if self.density.len() != n || self.perimeter.len() != n || self.avg_width.len() != n {
            return Err("map length mismatch".into());
        }
        if self.density.iter().any(|d| !(0.0..=1.0).contains(d)) {
            return Err("density out of [0,1]".into());
        }
        if self.avg_width.iter().any(|w| *w <= 0.0) {
            return Err("non-positive feature width".into());
        }
        Ok(())
    }
}

/// One recorded step of a simulation trace (all values in nm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStep {
    /// Mean up-area height after this step.
    pub mean_height: f64,
    /// Mean step height (up − down) after this step.
    pub mean_step: f64,
    /// Up-area peak-to-valley range after this step.
    pub height_range: f64,
}

/// The full-chip CMP simulator (golden model).
///
/// # Examples
///
/// ```
/// use neurfill_cmpsim::{CmpSimulator, ProcessParams};
/// use neurfill_layout::{DesignKind, DesignSpec};
///
/// let layout = DesignSpec::new(DesignKind::CmpTest, 16, 16, 1).generate();
/// let sim = CmpSimulator::new(ProcessParams::fast())?;
/// let profile = sim.simulate(&layout);
/// assert_eq!(profile.num_layers(), 3);
/// assert!(profile.max_height_range() > 0.0); // unfilled layouts are rough
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct CmpSimulator {
    params: ProcessParams,
    kernel: PadKernel,
    telemetry: Telemetry,
    contact_solve: ContactSolve,
}

impl CmpSimulator {
    /// Creates a simulator after validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns the parameter-validation message on invalid input.
    pub fn new(params: ProcessParams) -> Result<Self, String> {
        params.validate()?;
        let kernel = PadKernel::exponential(params.character_length, params.kernel_radius);
        Ok(Self {
            params,
            kernel,
            telemetry: Telemetry::disabled(),
            contact_solve: ContactSolve::default(),
        })
    }

    /// Selects the reference-plane solver. The default
    /// ([`ContactSolve::Exact`]) is bit-identical to the pre-optimization
    /// simulator; [`ContactSolve::SortedPrefix`] trades that for faster
    /// force evaluations (agreement to bisection tolerance).
    #[must_use]
    pub fn with_contact_solve(mut self, solve: ContactSolve) -> Self {
        self.contact_solve = solve;
        self
    }

    /// Switches the simulator's numerics tier as one knob:
    /// [`NumericsTier::Exact`] (the construction default) keeps the
    /// bit-identical kernel and contact paths; [`NumericsTier::Fast`]
    /// puts the pad kernel on the FFT path (at radii ≥
    /// [`crate::FFT_MIN_RADIUS`]) and takes [`ContactSolve::SortedPrefix`]
    /// as the solver. Apply [`CmpSimulator::with_contact_solve`] *after*
    /// this to override the solver choice while keeping the tiered kernel.
    #[must_use]
    pub fn with_numerics(mut self, tier: NumericsTier) -> Self {
        self.kernel = self.kernel.with_tier(tier);
        self.contact_solve = ContactSolve::for_tier(tier);
        self
    }

    /// The numerics tier the simulator's pad kernel runs in.
    #[must_use]
    pub fn numerics(&self) -> NumericsTier {
        self.kernel.tier()
    }

    /// Attaches a telemetry handle; per-stage timings (`sim.*` histograms)
    /// and per-layer spans are recorded into it when it is enabled.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The parameters this simulator runs with.
    #[must_use]
    pub fn params(&self) -> &ProcessParams {
        &self.params
    }

    /// Simulates one layer, recording the mean height, mean step height
    /// and height range after every unit polish step — the time-evolution
    /// view used to study step clearing and planarization dynamics.
    ///
    /// # Panics
    ///
    /// Panics when `input` fails validation.
    #[must_use]
    pub fn simulate_layer_trace(&self, input: &LayerInput) -> (LayerProfile, Vec<TraceStep>) {
        self.simulate_layer_impl(input, true)
    }

    /// Simulates one layer.
    ///
    /// # Panics
    ///
    /// Panics when `input` fails validation (programmer error — inputs
    /// extracted from a valid [`Layout`] always validate).
    #[must_use]
    pub fn simulate_layer(&self, input: &LayerInput) -> LayerProfile {
        self.simulate_layer_impl(input, false).0
    }

    #[allow(clippy::expect_used)] // validation failure is a documented panic (programmer error)
    fn simulate_layer_impl(&self, input: &LayerInput, record: bool) -> (LayerProfile, Vec<TraceStep>) {
        input.validate().expect("valid layer input");
        let _layer_span = self.telemetry.span("sim.layer_ns");
        // Pre-registered per-stage histograms and kernel counters: inside
        // the polish loop the only telemetry cost is clock reads + atomics
        // (none when disabled).
        let stage_timers = self.telemetry.is_enabled().then(|| {
            self.telemetry.inc("sim.layers");
            (
                self.telemetry.histogram("sim.envelope_ns"),
                self.telemetry.histogram("sim.contact_ns"),
                self.telemetry.histogram("sim.dsh_preston_ns"),
                self.telemetry.histogram("sim.polish_step_ns"),
            )
        });
        let kernel_meters = self.telemetry.is_enabled().then(|| {
            (
                self.telemetry.histogram("sim.kernel_ns"),
                self.telemetry.counter("sim.kernel.applies"),
                self.telemetry.counter("sim.kernel.windows"),
                self.telemetry.counter("sim.contact.force_evals"),
            )
        });
        let p = &self.params;
        let n = input.rows * input.cols;

        // Effective (kernel-averaged) pattern density is constant over the
        // polish since the pattern does not change.
        let rho_eff = self.kernel.apply(&input.density, input.rows, input.cols);
        if let Some((_, applies, windows, _)) = &kernel_meters {
            applies.inc();
            windows.add(n as u64);
        }

        // Pressure modifiers from micro-scale pattern parameters.
        let (dish_factor, erosion_factor) =
            crate::shard::dish_erosion_factors(&input.avg_width, &input.perimeter, p);

        let mut z_up = vec![p.initial_height; n];
        let mut z_down: Vec<f64> = z_up.iter().map(|z| z - p.initial_step).collect();

        let mut trace = Vec::new();
        let mut envelope = vec![0.0; n];
        let mut smoothed = vec![0.0; n];
        for _ in 0..p.steps {
            let t0 = self.telemetry.now_ns();
            // (1) Envelope heights, smoothed by the pad (scratch buffers
            // reused across steps).
            envelope.copy_from_slice(&z_up);
            self.kernel.apply_into(&envelope, input.rows, input.cols, &mut smoothed);
            let t1 = self.telemetry.now_ns();
            // (2) Contact-mechanics pressure solve.
            let (z_ref, solve_stats) = match self.contact_solve {
                ContactSolve::Exact => solve_reference_plane_stats(&smoothed, p),
                ContactSolve::SortedPrefix => solve_reference_plane_sorted_stats(&smoothed, p),
            };
            let pressures = window_pressures(&smoothed, z_ref, p);
            let t2 = self.telemetry.now_ns();
            if let Some((kernel_h, applies, windows, force_evals)) = &kernel_meters {
                kernel_h.record(t1.saturating_sub(t0));
                applies.inc();
                windows.add(n as u64);
                force_evals.add(solve_stats.force_evals);
            }
            // (3) DSH split + (4) Preston removal.
            crate::shard::polish_pointwise(
                &mut z_up,
                &mut z_down,
                &pressures,
                &rho_eff,
                &dish_factor,
                &erosion_factor,
                p,
            );
            if let Some((envelope_h, contact_h, dsh_h, step_h)) = &stage_timers {
                let t3 = self.telemetry.now_ns();
                envelope_h.record(t1.saturating_sub(t0));
                contact_h.record(t2.saturating_sub(t1));
                dsh_h.record(t3.saturating_sub(t2));
                step_h.record(t3.saturating_sub(t0));
            }
            if record {
                let mean_up = z_up.iter().sum::<f64>() / n as f64;
                let mean_step = z_up.iter().zip(&z_down).map(|(u, d)| u - d).sum::<f64>() / n as f64;
                let max = z_up.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let min = z_up.iter().cloned().fold(f64::INFINITY, f64::min);
                trace.push(TraceStep { mean_height: mean_up, mean_step, height_range: max - min });
            }
        }

        let profile =
            crate::shard::finalize_layer(input.rows, input.cols, &input.density, &z_up, &z_down);
        (profile, trace)
    }

    /// Simulates every layer of a layout.
    #[must_use]
    pub fn simulate(&self, layout: &Layout) -> ChipProfile {
        let layers = (0..layout.num_layers())
            .map(|l| self.simulate_layer(&LayerInput::from_layout(layout, l)))
            .collect();
        ChipProfile::new(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurfill_layout::{DesignKind, DesignSpec, Grid, Layout, WindowPattern};

    fn uniform_layer(rows: usize, cols: usize, density: f64) -> LayerInput {
        LayerInput {
            rows,
            cols,
            density: vec![density; rows * cols],
            perimeter: vec![2.0 * 10_000.0 * density / 0.2; rows * cols],
            avg_width: vec![0.2; rows * cols],
        }
    }

    #[test]
    fn uniform_layer_polishes_flat() {
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let out = sim.simulate_layer(&uniform_layer(8, 8, 0.5));
        assert!(out.height_range() < 1e-9, "range {}", out.height_range());
    }

    #[test]
    fn denser_regions_end_up_higher() {
        // Dense half removes slower (pressure spread over more metal).
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let rows = 8;
        let cols = 16;
        let mut input = uniform_layer(rows, cols, 0.3);
        for r in 0..rows {
            for c in 8..cols {
                input.density[r * cols + c] = 0.8;
                input.perimeter[r * cols + c] = 2.0 * 10_000.0 * 0.8 / 0.2;
            }
        }
        let out = sim.simulate_layer(&input);
        let sparse = out.height(4, 2);
        let dense = out.height(4, 13);
        assert!(dense > sparse, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    fn density_contrast_creates_roughness() {
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let uniform = sim.simulate_layer(&uniform_layer(8, 8, 0.5));
        let mut contrast = uniform_layer(8, 8, 0.5);
        for i in 0..32 {
            contrast.density[i] = 0.15;
        }
        let rough = sim.simulate_layer(&contrast);
        assert!(rough.height_variance() > uniform.height_variance());
    }

    #[test]
    fn steps_shrink_dishing_over_time() {
        let mut fast = ProcessParams::fast();
        fast.steps = 5;
        let short = CmpSimulator::new(fast.clone()).unwrap();
        fast.steps = 60;
        let long = CmpSimulator::new(fast).unwrap();
        let input = uniform_layer(6, 6, 0.5);
        let d_short = short.simulate_layer(&input).dishing()[0];
        let d_long = long.simulate_layer(&input).dishing()[0];
        assert!(d_long <= d_short + 1e-9, "dishing should not grow: {d_short} -> {d_long}");
    }

    #[test]
    fn wider_features_dish_more() {
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let mut narrow = uniform_layer(6, 6, 0.5);
        narrow.avg_width = vec![0.1; 36];
        let mut wide = uniform_layer(6, 6, 0.5);
        wide.avg_width = vec![5.0; 36];
        let dn = sim.simulate_layer(&narrow).dishing()[18];
        let dw = sim.simulate_layer(&wide).dishing()[18];
        assert!(dw > dn, "wide {dw} vs narrow {dn}");
    }

    #[test]
    fn trace_records_monotone_removal_and_step_clearing() {
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let input = uniform_layer(6, 6, 0.5);
        let (profile, trace) = sim.simulate_layer_trace(&input);
        assert_eq!(trace.len(), sim.params().steps);
        // Heights fall monotonically; the step height never grows.
        for w in trace.windows(2) {
            assert!(w[1].mean_height < w[0].mean_height);
            assert!(w[1].mean_step <= w[0].mean_step + 1e-9);
        }
        // The trace endpoint agrees with the plain simulation.
        let plain = sim.simulate_layer(&input);
        assert_eq!(profile, plain);
        // The initial step eventually falls below the critical height.
        assert!(trace.last().unwrap().mean_step < sim.params().critical_step);
    }

    #[test]
    fn simulation_is_deterministic() {
        let layout = DesignSpec::new(DesignKind::Fpga, 10, 10, 2).generate();
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        assert_eq!(sim.simulate(&layout), sim.simulate(&layout));
    }

    #[test]
    fn filling_improves_planarity() {
        use neurfill_layout::{apply_fill, DummySpec, FillPlan};
        let layout = DesignSpec::new(DesignKind::CmpTest, 12, 12, 7).generate();
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let before = sim.simulate(&layout);

        // Fill every window toward the max density uniformly.
        let mut plan = FillPlan::zeros(&layout);
        let area = layout.window_area();
        for id in layout.window_ids() {
            let w = layout.window(id);
            let target = 0.85f64;
            let need = ((target - w.density) * area).clamp(0.0, w.slack);
            plan.as_mut_slice()[layout.flat_index(id)] = need;
        }
        let filled = apply_fill(&layout, &plan, &DummySpec::default());
        let after = sim.simulate(&filled);
        assert!(
            after.max_height_range() < before.max_height_range(),
            "fill should flatten: {} -> {}",
            before.max_height_range(),
            after.max_height_range()
        );
    }

    #[test]
    fn telemetry_records_stages_without_changing_output() {
        use neurfill_obs::{FakeClock, Telemetry};
        let layout = DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate();
        let plain = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let t = Telemetry::with_clock(std::sync::Arc::new(FakeClock::at(0)));
        let instrumented = plain.clone().with_telemetry(t.clone());
        assert_eq!(plain.simulate(&layout), instrumented.simulate(&layout));
        let snap = t.snapshot();
        let layers = layout.num_layers() as u64;
        let steps = plain.params().steps as u64;
        assert_eq!(snap.counter("sim.layers"), layers);
        for h in ["sim.envelope_ns", "sim.contact_ns", "sim.dsh_preston_ns", "sim.polish_step_ns"] {
            assert_eq!(snap.histogram(h).unwrap().count, layers * steps, "{h}");
        }
        assert_eq!(snap.histogram("sim.layer_ns").unwrap().count, layers);
        assert_eq!(snap.events_of_kind("span").len(), layers as usize);
    }

    #[test]
    fn rejects_invalid_params() {
        let bad = ProcessParams { steps: 0, ..ProcessParams::default() };
        assert!(CmpSimulator::new(bad).is_err());
    }

    #[test]
    fn layer_input_validation() {
        let mut input = uniform_layer(4, 4, 0.5);
        assert!(input.validate().is_ok());
        input.density[0] = 1.5;
        assert!(input.validate().is_err());
        let mut input2 = uniform_layer(4, 4, 0.5);
        input2.avg_width[3] = 0.0;
        assert!(input2.validate().is_err());
        let mut input3 = uniform_layer(4, 4, 0.5);
        input3.perimeter.pop();
        assert!(input3.validate().is_err());
    }

    #[test]
    fn from_layout_extracts_matching_maps() {
        let g = Grid::filled(3, 3, WindowPattern::from_line_model(0.4, 0.2, 10_000.0, 0.8));
        let layout = Layout::new("x", 100.0, vec![g], 1.0);
        let input = LayerInput::from_layout(&layout, 0);
        assert_eq!(input.density, layout.density_map(0));
        assert!(input.validate().is_ok());
    }
}
