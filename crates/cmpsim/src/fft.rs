//! Real-to-complex radix-2 FFT convolution for the pad kernel (Fast tier).
//!
//! The spatial pad-kernel pass costs O(rows·cols·r²); at the paper's
//! 20–100 µm character lengths (`r` in the tens of windows) the r² factor
//! dominates the whole simulator. This module evaluates the same truncated
//! radial convolution as a pointwise product in the frequency domain:
//!
//! 1. zero-pad the board into a `P × Q` scratch plane, `P`/`Q` the next
//!    powers of two ≥ `rows + 2r` / `cols + 2r` (large enough that the
//!    circular convolution cannot wrap back onto the output region);
//! 2. forward transform: a real-to-complex FFT along each row (a
//!    half-length complex FFT plus the standard even/odd untangling keeps
//!    only the `Q/2 + 1` non-redundant bins), then a complex FFT down each
//!    retained bin column;
//! 3. multiply pointwise with the kernel's precomputed spectrum (the
//!    weights embedded at the origin with negative offsets wrapped, so the
//!    product realizes the reference *correlation* indexing);
//! 4. inverse transform and read the `rows × cols` numerator back out.
//!
//! Only the numerator goes through the FFT. The per-pixel renormalization
//! denominator (dropped-weight rescaling at chip edges) is evaluated by
//! the exact clip-class machinery in [`crate::kernel`], so edge handling
//! is *identical* to the spatial path and the only tier difference is
//! FFT rounding in the numerator — a few ULPs relative to the field scale
//! (the `tier_equivalence` suite asserts
//! `|fft − spatial| ≤ 1e-9 · (|spatial| + max|field|)` per pixel).
//!
//! A [`ConvPlan`] caches everything shape-dependent (twiddle tables,
//! bit-reversal permutations, the kernel spectrum) and is itself cached
//! per board shape inside [`crate::kernel::PadKernel`], so steady-state
//! applications only pay the transforms.

/// One complex value (`f64` re/im). Minimal arithmetic, no dependency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Complex {
    re: f64,
    im: f64,
}

impl Complex {
    const ZERO: Self = Self { re: 0.0, im: 0.0 };

    fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: Self) -> Self {
        Self::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }

    fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

/// Precomputed machinery for complex FFTs of one power-of-two length:
/// bit-reversal permutation plus the forward twiddle table
/// `w[j] = exp(−2πi·j/n)` for `j < n/2` (the inverse conjugates it).
#[derive(Debug)]
struct Radix2 {
    n: usize,
    rev: Vec<u32>,
    twiddles: Vec<Complex>,
}

impl Radix2 {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two());
        let bits = n.trailing_zeros();
        let rev = (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits.max(1))).collect();
        let rev = if n == 1 { vec![0] } else { rev };
        let twiddles = (0..n / 2)
            .map(|j| {
                let ang = -2.0 * std::f64::consts::PI * j as f64 / n as f64;
                Complex::new(ang.cos(), ang.sin())
            })
            .collect();
        Self { n, rev, twiddles }
    }

    /// In-place forward (`INVERSE = false`) or unscaled inverse
    /// (`INVERSE = true`) transform of `buf` at stride 1.
    fn transform<const INVERSE: bool>(&self, buf: &mut [Complex]) {
        let n = self.n;
        debug_assert_eq!(buf.len(), n);
        if n <= 1 {
            return;
        }
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            let mut base = 0;
            while base < n {
                for j in 0..half {
                    let w = self.twiddles[j * step];
                    let w = if INVERSE { w.conj() } else { w };
                    let u = buf[base + j];
                    let v = buf[base + j + half].mul(w);
                    buf[base + j] = u.add(v);
                    buf[base + j + half] = u.sub(v);
                }
                base += len;
            }
            len *= 2;
        }
    }
}

/// A cached convolution plan for one `(rows, cols)` board shape under one
/// kernel: padded extents, per-axis transform tables, the row-FFT
/// untangling twiddles, and the kernel spectrum.
#[derive(Debug)]
pub(crate) struct ConvPlan {
    rows: usize,
    cols: usize,
    /// Padded row count (power of two ≥ `rows + 2r`).
    p: usize,
    /// Padded column count (power of two ≥ `cols + 2r`).
    q: usize,
    /// Retained spectrum width: `q/2 + 1` non-redundant bins per row.
    qh: usize,
    /// Half-length complex FFT backing the real row transform.
    row_fft: Radix2,
    /// Full complex FFT down each retained spectrum column.
    col_fft: Radix2,
    /// `exp(−2πi·k/q)` for `k ≤ q/2`: the row-FFT untangling twiddles.
    row_tw: Vec<Complex>,
    /// Kernel spectrum, `p` rows × `qh` bins, row-major.
    kspec: Vec<Complex>,
}

impl ConvPlan {
    /// Builds the plan for a `rows × cols` board and the `(2r+1)²` weight
    /// window (row-major, correlation indexing as in the spatial path).
    pub(crate) fn new(rows: usize, cols: usize, radius: usize, weights: &[f64]) -> Self {
        let size = 2 * radius + 1;
        debug_assert_eq!(weights.len(), size * size);
        let p = (rows + 2 * radius).max(2).next_power_of_two();
        let q = (cols + 2 * radius).max(2).next_power_of_two();
        let qh = q / 2 + 1;
        let row_fft = Radix2::new(q / 2);
        let col_fft = Radix2::new(p);
        let row_tw = (0..=q / 2)
            .map(|k| {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / q as f64;
                Complex::new(ang.cos(), ang.sin())
            })
            .collect();
        let mut plan = Self { rows, cols, p, q, qh, row_fft, col_fft, row_tw, kspec: Vec::new() };
        // Embed the window with the center tap at (0, 0): offset
        // (dy − r, dx − r) lands at ((r − dy) mod p, (r − dx) mod q), so
        // the circular product reproduces the reference correlation
        // `Σ w[dy][dx] · f[i + dy − r][j + dx − r]`.
        let mut kpad = vec![0.0f64; p * q];
        for dy in 0..size {
            let row = (p + radius - dy) % p;
            for dx in 0..size {
                let col = (q + radius - dx) % q;
                kpad[row * q + col] = weights[dy * size + dx];
            }
        }
        plan.kspec = plan.forward(&kpad);
        plan
    }

    /// Board shape this plan serves.
    pub(crate) fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Real-to-complex FFT of one padded row already packed as `q/2`
    /// complex values (`z[j] = x[2j] + i·x[2j+1]`), untangled into the
    /// `qh` non-redundant bins.
    fn rfft_row(&self, packed: &mut [Complex], out: &mut [Complex]) {
        let m = self.q / 2;
        self.row_fft.transform::<false>(packed);
        for k in 0..=m {
            let zk = packed[k % m];
            let zmk = packed[(m - k) % m].conj();
            let even = zk.add(zmk).scale(0.5);
            let odd = zk.sub(zmk).scale(0.5);
            let odd = Complex::new(odd.im, -odd.re); // −i · odd
            out[k] = even.add(self.row_tw[k].mul(odd));
        }
    }

    /// Inverse of [`ConvPlan::rfft_row`]: spectrum bins back to `q` real
    /// samples (written as `q/2` packed complex values, fully scaled).
    fn irfft_row(&self, spec: &[Complex], packed: &mut [Complex]) {
        let m = self.q / 2;
        for k in 0..m {
            let xk = spec[k];
            let xmk = spec[m - k].conj();
            let even = xk.add(xmk).scale(0.5);
            let odd = xk.sub(xmk).scale(0.5).mul(self.row_tw[k].conj());
            let odd = Complex::new(-odd.im, odd.re); // i · odd
            packed[k] = even.add(odd);
        }
        self.row_fft.transform::<true>(packed);
        let s = 1.0 / m as f64;
        for v in packed.iter_mut() {
            *v = v.scale(s);
        }
    }

    /// Forward 2-D real FFT of a `p × q` real plane into `p × qh` bins.
    fn forward(&self, plane: &[f64]) -> Vec<Complex> {
        let (p, q, qh) = (self.p, self.q, self.qh);
        let mut spec = vec![Complex::ZERO; p * qh];
        let mut packed = vec![Complex::ZERO; q / 2];
        for r in 0..p {
            let row = &plane[r * q..(r + 1) * q];
            for (j, v) in packed.iter_mut().enumerate() {
                *v = Complex::new(row[2 * j], row[2 * j + 1]);
            }
            self.rfft_row(&mut packed, &mut spec[r * qh..(r + 1) * qh]);
        }
        let mut col = vec![Complex::ZERO; p];
        for c in 0..qh {
            for (r, v) in col.iter_mut().enumerate() {
                *v = spec[r * qh + c];
            }
            self.col_fft.transform::<false>(&mut col);
            for (r, v) in col.iter().enumerate() {
                spec[r * qh + c] = *v;
            }
        }
        spec
    }

    /// Convolution numerator: zero-pads `field`, transforms, multiplies
    /// with the kernel spectrum, inverse-transforms, and writes the
    /// un-renormalized `rows × cols` correlation sums into `out`.
    pub(crate) fn convolve_into(&self, field: &[f64], out: &mut [f64]) {
        let (p, q, qh) = (self.p, self.q, self.qh);
        debug_assert_eq!(field.len(), self.rows * self.cols);
        debug_assert_eq!(out.len(), self.rows * self.cols);
        let mut plane = vec![0.0f64; p * q];
        for r in 0..self.rows {
            plane[r * q..r * q + self.cols].copy_from_slice(&field[r * self.cols..(r + 1) * self.cols]);
        }
        let mut spec = self.forward(&plane);
        for (s, k) in spec.iter_mut().zip(&self.kspec) {
            *s = s.mul(*k);
        }
        // Inverse: columns first (undo the second forward pass), scaled by
        // 1/p; then each row back to real samples.
        let mut col = vec![Complex::ZERO; p];
        let sp = 1.0 / p as f64;
        for c in 0..qh {
            for (r, v) in col.iter_mut().enumerate() {
                *v = spec[r * qh + c];
            }
            self.col_fft.transform::<true>(&mut col);
            for (r, v) in col.iter().enumerate() {
                spec[r * qh + c] = v.scale(sp);
            }
        }
        let mut packed = vec![Complex::ZERO; q / 2];
        for r in 0..self.rows {
            self.irfft_row(&spec[r * qh..(r + 1) * qh], &mut packed);
            let orow = &mut out[r * self.cols..(r + 1) * self.cols];
            for (j, o) in orow.iter_mut().enumerate() {
                let z = packed[j / 2];
                *o = if j % 2 == 0 { z.re } else { z.im };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct O(n²) DFT oracle for the row transform.
    fn dft(x: &[f64]) -> Vec<Complex> {
        let n = x.len();
        (0..=n / 2)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc = acc.add(Complex::new(ang.cos(), ang.sin()).scale(v));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn rfft_matches_direct_dft() {
        for q in [4usize, 8, 16, 64] {
            let plan = ConvPlan::new(1, q - 2, 1, &[0.0; 9]);
            assert_eq!(plan.q, q);
            let x: Vec<f64> = (0..q).map(|i| ((i * 37 + 11) % 17) as f64 / 3.0 - 2.0).collect();
            let mut packed: Vec<Complex> =
                (0..q / 2).map(|j| Complex::new(x[2 * j], x[2 * j + 1])).collect();
            let mut got = vec![Complex::ZERO; q / 2 + 1];
            plan.rfft_row(&mut packed, &mut got);
            let want = dft(&x);
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g.re - w.re).abs() < 1e-9 && (g.im - w.im).abs() < 1e-9,
                    "bin {k}: got ({}, {}), want ({}, {})",
                    g.re,
                    g.im,
                    w.re,
                    w.im
                );
            }
        }
    }

    #[test]
    fn irfft_round_trips() {
        let q = 32usize;
        let plan = ConvPlan::new(1, q - 2, 1, &[0.0; 9]);
        let x: Vec<f64> = (0..q).map(|i| ((i * 53 + 7) % 23) as f64 / 5.0 - 2.0).collect();
        let mut packed: Vec<Complex> =
            (0..q / 2).map(|j| Complex::new(x[2 * j], x[2 * j + 1])).collect();
        let mut spec = vec![Complex::ZERO; q / 2 + 1];
        plan.rfft_row(&mut packed, &mut spec);
        let mut back = vec![Complex::ZERO; q / 2];
        plan.irfft_row(&spec, &mut back);
        for j in 0..q / 2 {
            assert!((back[j].re - x[2 * j]).abs() < 1e-12, "even {j}");
            assert!((back[j].im - x[2 * j + 1]).abs() < 1e-12, "odd {j}");
        }
    }

    #[test]
    fn convolution_matches_direct_correlation() {
        let (rows, cols, r) = (7usize, 9usize, 2usize);
        let size = 2 * r + 1;
        let weights: Vec<f64> =
            (0..size * size).map(|i| 1.0 + ((i * 31 + 3) % 11) as f64 / 7.0).collect();
        let field: Vec<f64> =
            (0..rows * cols).map(|i| ((i * 29 + 13) % 19) as f64 / 4.0 - 2.0).collect();
        let plan = ConvPlan::new(rows, cols, r, &weights);
        let mut got = vec![0.0f64; rows * cols];
        plan.convolve_into(&field, &mut got);
        for i in 0..rows as isize {
            for j in 0..cols as isize {
                let mut want = 0.0;
                for dy in -(r as isize)..=r as isize {
                    for dx in -(r as isize)..=r as isize {
                        let (y, x) = (i + dy, j + dx);
                        if y < 0 || y >= rows as isize || x < 0 || x >= cols as isize {
                            continue;
                        }
                        want += weights[((dy + r as isize) * size as isize + dx + r as isize) as usize]
                            * field[(y * cols as isize + x) as usize];
                    }
                }
                let got = got[(i * cols as isize + j) as usize];
                assert!((got - want).abs() < 1e-10, "pixel ({i},{j}): got {got}, want {want}");
            }
        }
    }
}
