//! Process parameters of the full-chip CMP simulator.

use std::fmt;

/// Physical/process parameters of the simulator (paper §II-A, Fig. 2).
///
/// Lengths are in nm unless noted; lateral window distances are in window
/// units. Defaults approximate a 45 nm oxide/copper CMP step and are the
/// values the reproduction's experiments are calibrated against.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessParams {
    /// Initial oxide height over metal (up areas), nm.
    pub initial_height: f64,
    /// Initial step height between up and down areas (trench replication),
    /// nm.
    pub initial_step: f64,
    /// Nominal applied pad pressure (normalized units; the contact solver
    /// balances window contact forces against this).
    pub applied_pressure: f64,
    /// Pad asperity contact exponent (Greenwood–Williamson-like, ~1.5).
    pub contact_exponent: f64,
    /// Penetration (nm) at which a flat chip carries exactly the applied
    /// pressure; sets the contact stiffness.
    pub reference_penetration: f64,
    /// Pad deformation character length in *window units* (paper §III-B:
    /// 20–100 µm character length; with 100 µm windows this is O(1)).
    pub character_length: f64,
    /// Kernel truncation radius in windows.
    pub kernel_radius: usize,
    /// Critical step height of the DSH model (nm): below this the pad
    /// touches down areas too.
    pub critical_step: f64,
    /// Blanket removal per time step at unit pressure (nm).
    pub removal_per_step: f64,
    /// Number of unit polish-time iterations (paper: iterate until the
    /// total polish time is reached).
    pub steps: usize,
    /// Minimum effective density used in the pressure split (guards the
    /// division in `P/ρ_eff`).
    pub min_effective_density: f64,
    /// Dishing enhancement vs feature width: down-area pressure is scaled
    /// by `1 + c·w/(w + w_ref)`.
    pub dishing_coefficient: f64,
    /// Reference feature width (µm) of the dishing law.
    pub dishing_reference_width: f64,
    /// Erosion enhancement vs copper perimeter: up-area pressure is scaled
    /// by `1 + c·perimeter/perimeter_scale`.
    pub erosion_coefficient: f64,
    /// Perimeter normalization (µm per window) of the erosion law.
    pub perimeter_scale: f64,
}

impl Default for ProcessParams {
    fn default() -> Self {
        Self {
            initial_height: 800.0,
            initial_step: 120.0,
            applied_pressure: 1.0,
            contact_exponent: 1.5,
            reference_penetration: 20.0,
            character_length: 1.5,
            kernel_radius: 4,
            critical_step: 60.0,
            removal_per_step: 8.0,
            steps: 50,
            min_effective_density: 0.05,
            dishing_coefficient: 0.5,
            dishing_reference_width: 1.0,
            erosion_coefficient: 0.015,
            perimeter_scale: 200_000.0,
        }
    }
}

impl ProcessParams {
    /// A faster, coarser parameter set for unit tests and CI-scale runs.
    #[must_use]
    pub fn fast() -> Self {
        Self { steps: 20, kernel_radius: 2, ..Self::default() }
    }

    /// Contact stiffness `k` such that penetration
    /// `reference_penetration` produces `applied_pressure`.
    #[must_use]
    pub fn contact_stiffness(&self) -> f64 {
        self.applied_pressure / self.reference_penetration.powf(self.contact_exponent)
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_height <= 0.0 {
            return Err("initial_height must be positive".into());
        }
        if self.initial_step < 0.0 {
            return Err("initial_step must be non-negative".into());
        }
        if self.initial_step >= self.initial_height {
            return Err("initial_step must be below initial_height".into());
        }
        if self.applied_pressure <= 0.0 {
            return Err("applied_pressure must be positive".into());
        }
        if self.contact_exponent <= 0.0 {
            return Err("contact_exponent must be positive".into());
        }
        if self.reference_penetration <= 0.0 {
            return Err("reference_penetration must be positive".into());
        }
        if self.character_length <= 0.0 {
            return Err("character_length must be positive".into());
        }
        if self.critical_step <= 0.0 {
            return Err("critical_step must be positive".into());
        }
        if self.removal_per_step <= 0.0 {
            return Err("removal_per_step must be positive".into());
        }
        if self.steps == 0 {
            return Err("steps must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.min_effective_density) || self.min_effective_density == 0.0 {
            return Err("min_effective_density must be in (0, 1)".into());
        }
        Ok(())
    }
}

/// Wrapper whose `Display` prints the parameters as a table (for
/// experiment logs).
#[derive(Debug)]
pub struct ParamsDisplay<'a>(pub &'a ProcessParams);

impl fmt::Display for ParamsDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.0;
        writeln!(f, "initial_height      {:>10.1} nm", p.initial_height)?;
        writeln!(f, "initial_step        {:>10.1} nm", p.initial_step)?;
        writeln!(f, "critical_step       {:>10.1} nm", p.critical_step)?;
        writeln!(f, "character_length    {:>10.2} windows", p.character_length)?;
        writeln!(f, "removal_per_step    {:>10.2} nm", p.removal_per_step)?;
        write!(f, "steps               {:>10}", p.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        assert!(ProcessParams::default().validate().is_ok());
        assert!(ProcessParams::fast().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let bad = ProcessParams { steps: 0, ..ProcessParams::default() };
        assert!(bad.validate().is_err());
        let bad = ProcessParams { initial_step: 900.0, ..ProcessParams::default() };
        assert!(bad.validate().is_err());
        let bad = ProcessParams { min_effective_density: 0.0, ..ProcessParams::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn contact_stiffness_reproduces_reference_point() {
        let p = ProcessParams::default();
        let k = p.contact_stiffness();
        let f = k * p.reference_penetration.powf(p.contact_exponent);
        assert!((f - p.applied_pressure).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let p = ProcessParams::default();
        let s = format!("{}", ParamsDisplay(&p));
        assert!(s.contains("initial_height"));
    }
}
