//! Deterministic fault-injection tests of the runtime's supervision
//! layer. Every scenario is driven by a seeded [`FaultPlan`] — no sleeps
//! as synchronization, no reliance on thread interleaving: the plan
//! decides exactly which invocation of which site faults.

use neurfill::extraction::NUM_CHANNELS;
use neurfill::pipeline::{FillingFlow, FlowConfig};
use neurfill::{CmpNeuralNetwork, CmpNnConfig, HeightNorm, NeurFillConfig};
use neurfill_cmpsim::ProcessParams;
use neurfill_layout::{DesignKind, DesignSpec, Layout};
use neurfill_nn::{UNet, UNetConfig};
use neurfill_optim::SqpConfig;
use neurfill_runtime::{
    BatchConfig, FaultPlan, JobSpec, JobStatus, ModelBundle, PoolOptions, RetryPolicy, RuntimePool,
};
use rand::SeedableRng;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

fn network(seed: u64) -> CmpNeuralNetwork {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let unet = UNet::new(
        UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
        &mut rng,
    );
    CmpNeuralNetwork::new(unet, HeightNorm::default(), Default::default(), CmpNnConfig::default())
}

fn flow_config() -> FlowConfig {
    FlowConfig {
        process: ProcessParams::fast(),
        neurfill: NeurFillConfig {
            sqp: SqpConfig { max_iterations: 8, ..SqpConfig::default() },
            ..NeurFillConfig::default()
        },
        beta_time_s: 60.0,
        ..FlowConfig::default()
    }
}

fn layout(seed: u64) -> Layout {
    DesignSpec::new(DesignKind::CmpTest, 8, 8, seed).generate()
}

fn pool_with(plan: &str, options: PoolOptions) -> RuntimePool {
    let bundle = Arc::new(ModelBundle::from_network(&network(42)).unwrap());
    let options = PoolOptions {
        fault: Arc::new(FaultPlan::parse(plan, 0).unwrap()),
        batch: BatchConfig { max_batch: 8, linger: Duration::ZERO },
        ..options
    };
    RuntimePool::new(bundle, flow_config(), options).unwrap()
}

fn done(status: Option<JobStatus>) -> Box<neurfill_runtime::JobReport> {
    match status {
        Some(JobStatus::Done(report)) => report,
        other => panic!("expected a completed job, got {other:?}"),
    }
}

fn failed(status: Option<JobStatus>) -> String {
    match status {
        Some(JobStatus::Failed(msg)) => msg,
        other => panic!("expected a failed job, got {other:?}"),
    }
}

#[test]
fn injected_panic_fails_only_its_job_and_spares_the_worker() {
    // The first synthesis panics; the worker must survive and run the
    // second job to completion on the same thread.
    let pool = pool_with("synthesis=panic@1", PoolOptions { workers: 1, ..PoolOptions::default() });
    let first = pool.submit(JobSpec::new("panics", layout(1))).unwrap();
    let second = pool.submit(JobSpec::new("survives", layout(2))).unwrap();

    let msg = failed(pool.wait(first));
    assert!(msg.contains("panicked") && msg.contains("fault injected"), "{msg}");
    let report = done(pool.wait(second));
    assert!(report.quality.is_finite());

    let stats = pool.shutdown();
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.retries, 0, "panics are permanent, never retried");
}

#[test]
fn transient_synthesis_fault_retries_and_succeeds() {
    let pool = pool_with(
        "synthesis=transient@1",
        PoolOptions {
            workers: 1,
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::ZERO,
                ..RetryPolicy::default()
            },
            ..PoolOptions::default()
        },
    );
    let id = pool.submit(JobSpec::new("flaky", layout(3))).unwrap();
    let report = done(pool.wait(id));
    assert!(report.degraded.is_none(), "retry path is not a degradation");
    let stats = pool.shutdown();
    assert_eq!(stats.retries, 1, "exactly the one injected transient");
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.jobs_failed, 0);
}

#[test]
fn transient_hydration_fault_is_retried_with_a_fresh_hydration() {
    let pool = pool_with(
        "hydrate=transient@2",
        PoolOptions {
            workers: 1,
            retry: RetryPolicy {
                max_retries: 1,
                base_backoff: Duration::ZERO,
                ..RetryPolicy::default()
            },
            ..PoolOptions::default()
        },
    );
    // Invocation 1 of `hydrate` is the batch server (clean); invocation 2
    // is the worker's first attempt, which fails transiently and re-runs.
    let id = pool.submit(JobSpec::new("hydrate-flaky", layout(4))).unwrap();
    let report = done(pool.wait(id));
    assert!(report.quality.is_finite());
    let stats = pool.shutdown();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.hydrations, 2, "server + the worker's successful second attempt");
}

#[test]
fn exhausted_retry_budget_fails_with_the_transient_error() {
    let pool = pool_with(
        "synthesis=transient",
        PoolOptions {
            workers: 1,
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::ZERO,
                ..RetryPolicy::default()
            },
            ..PoolOptions::default()
        },
    );
    let id = pool.submit(JobSpec::new("always-flaky", layout(5))).unwrap();
    let msg = failed(pool.wait(id));
    assert!(msg.contains("transient"), "{msg}");
    let stats = pool.shutdown();
    assert_eq!(stats.retries, 2, "full budget consumed");
    assert_eq!(stats.jobs_failed, 1);
}

#[test]
fn mid_job_deadline_aborts_synthesis_cooperatively() {
    // The injected delay holds the job at the synthesis site well past its
    // deadline; the cancel token then aborts inside the flow (not at
    // dequeue — the job had already started).
    let pool = pool_with("synthesis=delay1000@1", PoolOptions { workers: 1, ..PoolOptions::default() });
    let id = pool
        .submit(JobSpec {
            name: "deadline".into(),
            layout: layout(6),
            timeout: Some(Duration::from_millis(250)),
        })
        .unwrap();
    let msg = failed(pool.wait(id));
    assert!(msg.contains("deadline exceeded"), "cooperative mid-job abort, got: {msg}");
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.retries, 0, "deadline errors are not retryable");
}

#[test]
fn cancellation_hits_running_and_queued_jobs() {
    // One worker: job A sleeps 500ms at the synthesis site, job B queues
    // behind it. Cancelling both while A sleeps exercises the mid-job
    // cancellation point (A) and the at-dequeue check (B).
    let pool = pool_with("synthesis=delay500@1", PoolOptions { workers: 1, ..PoolOptions::default() });
    let a = pool.submit(JobSpec::new("running", layout(7))).unwrap();
    let b = pool.submit(JobSpec::new("queued", layout(8))).unwrap();
    assert!(pool.cancel(a), "running job is cancellable");
    assert!(pool.cancel(b), "queued job is cancellable");
    assert!(!pool.cancel(9_999), "unknown ids are not");

    let msg_a = failed(pool.wait(a));
    assert!(msg_a.contains("cancelled"), "{msg_a}");
    let msg_b = failed(pool.wait(b));
    assert!(msg_b.contains("cancelled"), "{msg_b}");
    assert!(!pool.cancel(a), "terminal jobs are no longer cancellable");

    assert!(pool.wait(9_999).is_none(), "unknown ids wait to None");
    assert!(pool.status(9_999).is_none());
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_failed, 2);
}

#[test]
fn dead_batch_server_is_restarted_within_budget() {
    // The first batched forward panics, killing the server thread. The
    // supervisor must restart it and replay the request; both jobs finish.
    let pool = pool_with(
        "batch_forward=panic@1",
        PoolOptions { workers: 1, restart_budget: 2, ..PoolOptions::default() },
    );
    let first = pool.submit(JobSpec::new("kills-server", layout(9))).unwrap();
    let second = pool.submit(JobSpec::new("after-restart", layout(10))).unwrap();
    assert!(done(pool.wait(first)).quality.is_finite());
    assert!(done(pool.wait(second)).quality.is_finite());
    let stats = pool.shutdown();
    assert_eq!(stats.server_restarts, 1);
    assert_eq!(stats.circuit_opened, 0);
    assert_eq!(stats.fallback_batches, 0);
    assert_eq!(stats.jobs_completed, 2);
}

#[test]
fn open_circuit_degrades_to_local_inference_bit_identically() {
    // Every batched forward panics, so the restart budget drains and the
    // circuit opens; workers must fall back to their own network — and
    // because the weights are identical, results match the sequential
    // flow bit for bit.
    let bundle = Arc::new(ModelBundle::from_network(&network(42)).unwrap());
    let config = flow_config();
    let pool = RuntimePool::new(
        Arc::clone(&bundle),
        config.clone(),
        PoolOptions {
            workers: 1,
            restart_budget: 1,
            batch: BatchConfig { max_batch: 8, linger: Duration::ZERO },
            fault: Arc::new(FaultPlan::parse("batch_forward=panic", 0).unwrap()),
            ..PoolOptions::default()
        },
    )
    .unwrap();
    let jobs: Vec<_> = (0..2)
        .map(|i| {
            let l = layout(20 + i);
            (l.clone(), pool.submit(JobSpec::new(format!("fallback-{i}"), l)).unwrap())
        })
        .collect();

    let sequential = FillingFlow::with_network(Rc::new(bundle.hydrate().unwrap()), config).unwrap();
    for (l, id) in jobs {
        let report = done(pool.wait(id));
        let expected = sequential.run(&l).unwrap();
        assert_eq!(report.plan.as_slice(), expected.plan.as_slice(), "{}", report.name);
        assert_eq!(report.quality, expected.scored.quality, "{}", report.name);
        assert!(report.degraded.is_none(), "local inference is a fallback, not a degradation");
        assert!(report.predicted.sigma.is_finite());
    }
    let stats = pool.shutdown();
    assert_eq!(stats.circuit_opened, 1);
    assert_eq!(stats.server_restarts, 1, "budget of 1 fully used before opening");
    assert_eq!(stats.fallback_batches, 2, "both jobs verified locally");
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.jobs_failed, 0);
}

#[test]
fn nan_poisoned_heights_degrade_verification_to_the_golden_simulator() {
    let pool = pool_with("batch_forward=nan", PoolOptions { workers: 1, ..PoolOptions::default() });
    let id = pool.submit(JobSpec::new("poisoned", layout(11))).unwrap();
    let report = done(pool.wait(id));
    let reason = report.degraded.as_deref().expect("health guard must trip on NaN heights");
    assert!(reason.contains("non-finite"), "{reason}");
    assert!(
        report.predicted.sigma.is_finite(),
        "golden-simulator verification still yields usable metrics"
    );
    assert!(report.to_text().contains("degraded"), "report text records the degradation");
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_degraded, 1);
    assert_eq!(stats.jobs_completed, 1, "a degraded job still completes");
    assert_eq!(stats.jobs_failed, 0);
}
