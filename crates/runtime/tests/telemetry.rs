//! Deterministic telemetry tests: every assertion is driven by a seeded
//! [`FaultPlan`] or a fixed-seed workload — no sleeps as synchronization,
//! no reliance on wall-clock values. Timing histograms are asserted on
//! *counts* (how many observations landed), never on durations.

use neurfill::extraction::NUM_CHANNELS;
use neurfill::pipeline::FlowConfig;
use neurfill::telemetry::{MetricsSnapshot, Telemetry};
use neurfill::{CmpNeuralNetwork, CmpNnConfig, HeightNorm, NeurFillConfig};
use neurfill_cmpsim::ProcessParams;
use neurfill_layout::{DesignKind, DesignSpec, Layout};
use neurfill_nn::{UNet, UNetConfig};
use neurfill_optim::SqpConfig;
use neurfill_runtime::{
    BatchConfig, FaultPlan, JobSpec, JobStatus, ModelBundle, PoolOptions, RetryPolicy, RuntimePool,
    RuntimeStats,
};
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn network(seed: u64) -> CmpNeuralNetwork {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let unet = UNet::new(
        UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
        &mut rng,
    );
    CmpNeuralNetwork::new(unet, HeightNorm::default(), Default::default(), CmpNnConfig::default())
}

fn flow_config() -> FlowConfig {
    FlowConfig {
        process: ProcessParams::fast(),
        neurfill: NeurFillConfig {
            sqp: SqpConfig { max_iterations: 8, ..SqpConfig::default() },
            ..NeurFillConfig::default()
        },
        beta_time_s: 60.0,
        ..FlowConfig::default()
    }
}

fn layout(seed: u64) -> Layout {
    DesignSpec::new(DesignKind::CmpTest, 8, 8, seed).generate()
}

/// A pool with telemetry attached and an optional fault plan.
fn pool_with(plan: &str, options: PoolOptions) -> (RuntimePool, Telemetry) {
    let bundle = Arc::new(ModelBundle::from_network(&network(42)).unwrap());
    let telemetry = Telemetry::new();
    let options = PoolOptions {
        fault: Arc::new(FaultPlan::parse(plan, 0).unwrap()),
        batch: BatchConfig { max_batch: 8, linger: Duration::ZERO },
        telemetry: telemetry.clone(),
        ..options
    };
    (RuntimePool::new(bundle, flow_config(), options).unwrap(), telemetry)
}

fn retry_once() -> RetryPolicy {
    RetryPolicy { max_retries: 2, base_backoff: Duration::ZERO, ..RetryPolicy::default() }
}

/// Run `jobs` fixed-seed layouts to completion and return the snapshot.
fn run_jobs(pool: &RuntimePool, jobs: u64) -> MetricsSnapshot {
    let ids: Vec<_> = (0..jobs)
        .map(|i| pool.submit(JobSpec::new(format!("job-{i}"), layout(100 + i))).unwrap())
        .collect();
    for id in ids {
        match pool.wait(id) {
            Some(JobStatus::Done(_)) => {}
            other => panic!("expected a completed job, got {other:?}"),
        }
    }
    pool.metrics_snapshot()
}

/// Fault events carry structured fields; find one by name or fail loudly.
fn fault_event_named<'s>(snap: &'s MetricsSnapshot, name: &str) -> &'s neurfill::telemetry::Event {
    let faults = snap.events_of_kind("fault");
    faults.iter().find(|e| e.name == name).copied().unwrap_or_else(|| {
        let seen: Vec<_> = faults.iter().map(|e| e.name.as_str()).collect();
        panic!("no fault event named {name:?}; saw {seen:?}")
    })
}

#[test]
fn one_snapshot_covers_sim_runtime_and_batch_activity() {
    // The acceptance bar for `--metrics-out`: a single registry, attached
    // at the pool, must see simulator stages, optimizer work, runtime job
    // lifecycle, and batch-server activity from one fixed-seed run.
    let (pool, _) = pool_with("", PoolOptions { workers: 1, ..PoolOptions::default() });
    let snap = run_jobs(&pool, 2);
    let _ = pool.shutdown();

    // Runtime job lifecycle.
    assert_eq!(snap.counter("runtime.jobs_submitted"), 2);
    assert_eq!(snap.counter("runtime.jobs_completed"), 2);
    assert_eq!(snap.counter("runtime.jobs_failed"), 0);
    // Batch-server activity: every inferred sample went through a batch.
    assert!(snap.counter("runtime.batches_formed") > 0);
    assert!(snap.counter("runtime.samples_inferred") > 0);
    // Golden-simulator stages ran during verification.
    assert!(snap.counter("sim.layers") > 0, "simulator stage metrics missing");
    assert!(snap.histogram("sim.layer_ns").is_some());
    // The synthesis optimizer reported its iteration counts.
    assert!(snap.counter("optim.sqp.solves") > 0, "SQP metrics missing");
    assert!(snap.counter("optim.sqp.iterations") >= snap.counter("optim.sqp.solves"));
    // Per-job latency histograms: one observation per job.
    assert_eq!(snap.histogram("job.total_ns").map(|h| h.count), Some(2));
    assert_eq!(snap.histogram("job.queue_wait_ns").map(|h| h.count), Some(2));
    assert!(snap.histogram("batch.occupancy").is_some());
    // Spans nest under a path; the job span is the root of its thread.
    assert!(snap.events_of_kind("span").iter().any(|e| e.name == "job.total_ns"));
}

#[test]
fn deterministic_counters_agree_between_one_and_many_workers() {
    // Scheduling-dependent counters (batches_formed, hydrations) may vary
    // with worker count, but the work itself is fixed by the seed: same
    // jobs, same samples, same simulator stages, same optimizer trajectory
    // (batched inference is bit-identical regardless of batch packing).
    let deterministic = [
        "runtime.jobs_submitted",
        "runtime.jobs_completed",
        "runtime.jobs_failed",
        "runtime.jobs_degraded",
        "runtime.retries",
        "runtime.samples_inferred",
        "sim.layers",
        "optim.sqp.solves",
        "optim.sqp.iterations",
        "optim.sqp.evaluations",
    ];
    let (solo_pool, _) = pool_with("", PoolOptions { workers: 1, ..PoolOptions::default() });
    let solo = run_jobs(&solo_pool, 3);
    let _ = solo_pool.shutdown();
    let (fleet_pool, _) = pool_with("", PoolOptions { workers: 3, ..PoolOptions::default() });
    let fleet = run_jobs(&fleet_pool, 3);
    let _ = fleet_pool.shutdown();

    for name in deterministic {
        assert_eq!(solo.counter(name), fleet.counter(name), "{name} diverged across schedules");
    }
    // Latency histogram *counts* are deterministic too (values are not).
    assert_eq!(
        solo.histogram("job.total_ns").map(|h| h.count),
        fleet.histogram("job.total_ns").map(|h| h.count)
    );
}

#[test]
fn retry_transition_emits_counter_and_fault_event() {
    let (pool, _) = pool_with(
        "synthesis=transient@1",
        PoolOptions { workers: 1, retry: retry_once(), ..PoolOptions::default() },
    );
    let snap = run_jobs(&pool, 1);
    let _ = pool.shutdown();

    assert_eq!(snap.counter("runtime.retries"), 1);
    let event = fault_event_named(&snap, "retry");
    assert_eq!(event.fields.iter().find(|(k, _)| k == "job").map(|(_, v)| v.as_str()), Some("job-0"));
    assert!(event.fields.iter().any(|(k, v)| k == "error" && v.contains("transient")));
}

#[test]
fn server_restart_transition_emits_counter_and_fault_event() {
    let (pool, _) = pool_with(
        "batch_forward=panic@1",
        PoolOptions { workers: 1, restart_budget: 2, ..PoolOptions::default() },
    );
    let snap = run_jobs(&pool, 2);
    let _ = pool.shutdown();

    assert_eq!(snap.counter("runtime.server_restarts"), 1);
    assert_eq!(snap.counter("runtime.circuit_opened"), 0);
    let event = fault_event_named(&snap, "server_restart");
    assert!(event.fields.iter().any(|(k, _)| k == "generation"));
}

#[test]
fn open_circuit_transition_emits_circuit_and_fallback_events() {
    let (pool, _) = pool_with(
        "batch_forward=panic",
        PoolOptions { workers: 1, restart_budget: 1, ..PoolOptions::default() },
    );
    let snap = run_jobs(&pool, 2);
    let _ = pool.shutdown();

    assert_eq!(snap.counter("runtime.server_restarts"), 1, "budget fully used before opening");
    assert_eq!(snap.counter("runtime.circuit_opened"), 1);
    assert!(snap.counter("runtime.fallback_batches") >= 2, "both jobs verified locally");
    fault_event_named(&snap, "circuit_open");
    let fallback = fault_event_named(&snap, "local_fallback");
    assert!(fallback.fields.iter().any(|(k, _)| k == "cause"));
}

#[test]
fn nan_degradation_emits_counter_and_fault_event() {
    let (pool, _) = pool_with("batch_forward=nan", PoolOptions { workers: 1, ..PoolOptions::default() });
    let snap = run_jobs(&pool, 1);
    let _ = pool.shutdown();

    assert_eq!(snap.counter("runtime.jobs_degraded"), 1);
    assert_eq!(snap.counter("runtime.jobs_completed"), 1, "a degraded job still completes");
    let event = fault_event_named(&snap, "golden_degraded");
    assert!(event.fields.iter().any(|(k, v)| k == "reason" && v.contains("non-finite")));
}

#[test]
fn disabled_telemetry_leaves_reports_and_stats_byte_identical() {
    // The zero-cost guarantee: running the identical fixed-seed workload
    // with telemetry disabled must change nothing the user can observe —
    // same fill plans, same report text, same stats line. Report lines
    // derived from the wall clock (`synthesis_s` and the time-weighted
    // `overall` score) vary between any two runs and are excluded.
    let deterministic_text = |report: &neurfill_runtime::JobReport| -> String {
        report
            .to_text()
            .lines()
            .filter(|l| !l.starts_with("synthesis_s") && !l.starts_with("overall"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let run = |telemetry: Telemetry| -> (Vec<String>, RuntimeStats) {
        let bundle = Arc::new(ModelBundle::from_network(&network(42)).unwrap());
        let options = PoolOptions {
            workers: 1,
            batch: BatchConfig { max_batch: 8, linger: Duration::ZERO },
            telemetry,
            ..PoolOptions::default()
        };
        let pool = RuntimePool::new(bundle, flow_config(), options).unwrap();
        let ids: Vec<_> = (0..2)
            .map(|i| pool.submit(JobSpec::new(format!("job-{i}"), layout(100 + i))).unwrap())
            .collect();
        let reports = ids
            .into_iter()
            .map(|id| match pool.wait(id) {
                Some(JobStatus::Done(report)) => deterministic_text(&report),
                other => panic!("expected a completed job, got {other:?}"),
            })
            .collect();
        (reports, pool.shutdown())
    };

    let (enabled_reports, enabled_stats) = run(Telemetry::new());
    let (disabled_reports, disabled_stats) = run(Telemetry::disabled());
    assert_eq!(enabled_reports, disabled_reports, "reports must not depend on telemetry");

    // The stats line mixes deterministic counters with stage timings and
    // batch packing (both timing-dependent); compare the former.
    let deterministic_lines = |stats: &RuntimeStats| -> Vec<String> {
        stats
            .to_string()
            .lines()
            .filter(|l| l.starts_with("jobs:") || l.starts_with("resilience:"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(deterministic_lines(&enabled_stats), deterministic_lines(&disabled_stats));
    assert_eq!(enabled_stats.samples_inferred, disabled_stats.samples_inferred);
    assert_eq!(enabled_stats.hydrations, disabled_stats.hydrations);
}

#[test]
fn real_run_snapshot_round_trips_through_jsonl() {
    // A snapshot from an actual faulted run (counters + histograms +
    // gauges + structured events) must survive serialization unchanged.
    let (pool, _) = pool_with(
        "synthesis=transient@1",
        PoolOptions { workers: 1, retry: retry_once(), ..PoolOptions::default() },
    );
    let snap = run_jobs(&pool, 2);
    let _ = pool.shutdown();

    let text = snap.to_jsonl();
    let back = MetricsSnapshot::from_jsonl(&text).unwrap();
    assert_eq!(back, snap, "JSONL round-trip must be lossless");

    // And every line is an object of a known record type.
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        assert!(
            ["\"counter\"", "\"gauge\"", "\"histogram\"", "\"event\"", "\"meta\""]
                .iter()
                .any(|t| line.contains(t)),
            "unknown record type: {line}"
        );
    }
}
