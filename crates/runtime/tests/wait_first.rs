//! `RuntimePool::wait_first` under cancellation and worker panic: the
//! selector must surface cancelled and panicked jobs as terminal
//! failures (never hang, never drop them), and the pool must stay
//! usable afterwards. Ordering is forced with deterministic fault-plan
//! delays, not sleeps.

use neurfill::extraction::NUM_CHANNELS;
use neurfill::pipeline::FlowConfig;
use neurfill::{CmpNeuralNetwork, CmpNnConfig, HeightNorm, NeurFillConfig};
use neurfill_cmpsim::ProcessParams;
use neurfill_layout::{DesignKind, DesignSpec, Layout};
use neurfill_nn::{UNet, UNetConfig};
use neurfill_optim::SqpConfig;
use neurfill_runtime::{FaultPlan, JobSpec, JobStatus, ModelBundle, PoolOptions, RuntimePool};
use rand::SeedableRng;
use std::sync::Arc;

fn bundle() -> Arc<ModelBundle> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let unet = UNet::new(
        UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
        &mut rng,
    );
    let net =
        CmpNeuralNetwork::new(unet, HeightNorm::default(), Default::default(), CmpNnConfig::default());
    Arc::new(ModelBundle::from_network(&net).unwrap())
}

fn flow_config() -> FlowConfig {
    FlowConfig {
        process: ProcessParams::fast(),
        neurfill: NeurFillConfig {
            sqp: SqpConfig { max_iterations: 2, ..SqpConfig::default() },
            ..NeurFillConfig::default()
        },
        beta_time_s: 60.0,
        ..FlowConfig::default()
    }
}

fn layout(seed: u64) -> Layout {
    DesignSpec::new(DesignKind::CmpTest, 8, 8, seed).generate()
}

fn pool_with(workers: usize, fault: &str) -> RuntimePool {
    RuntimePool::new(
        bundle(),
        flow_config(),
        PoolOptions {
            workers,
            fault: Arc::new(FaultPlan::parse(fault, 0).unwrap()),
            ..PoolOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn wait_first_surfaces_cancelled_queued_job() {
    // One worker, first synthesis delayed: job A deterministically pins
    // the worker while B sits queued and gets cancelled.
    let pool = pool_with(1, "synthesis=delay300@1");
    let a = pool.submit(JobSpec::new("pin", layout(1))).unwrap();
    let b = pool.submit(JobSpec::new("victim", layout(2))).unwrap();

    assert!(pool.cancel(b), "queued job must accept cancellation");

    // The selector must return B as terminal (failed with a
    // cancellation message), not hang on it or skip it.
    let (id, status) = pool.wait_first(&[b]).expect("job known to the pool");
    assert_eq!(id, b);
    match status {
        JobStatus::Failed(msg) => {
            assert!(msg.contains("cancelled"), "cancellation must be named: {msg}")
        }
        other => panic!("cancelled job must fail, got {other:?}"),
    }
    // Cancelling a terminal job is a no-op.
    assert!(!pool.cancel(b), "terminal job must refuse cancellation");

    // The pinned job is unaffected.
    let (id, status) = pool.wait_first(&[a, b]).expect("jobs known to the pool");
    // B is already terminal, so the selector may return either first;
    // both must be terminal and A must complete.
    assert!(id == a || id == b);
    assert!(status.is_terminal());
    assert!(matches!(pool.wait(a), Some(JobStatus::Done(_))), "pinned job must finish");
    let _ = pool.shutdown();
}

#[test]
fn wait_first_surfaces_worker_panic_and_pool_survives() {
    // First synthesis panics; the supervisor converts it to Failed.
    let pool = pool_with(2, "synthesis=panic@1");
    let p = pool.submit(JobSpec::new("panics", layout(3))).unwrap();

    let (id, status) = pool.wait_first(&[p]).expect("job known to the pool");
    assert_eq!(id, p);
    match status {
        JobStatus::Failed(msg) => {
            assert!(msg.contains("panic"), "panic must be named: {msg}")
        }
        other => panic!("panicked job must fail, got {other:?}"),
    }

    // The worker that caught the panic keeps serving jobs.
    let q = pool.submit(JobSpec::new("after", layout(4))).unwrap();
    let (id, status) = pool.wait_first(&[q]).expect("job known to the pool");
    assert_eq!(id, q);
    assert!(matches!(status, JobStatus::Done(_)), "pool must survive a worker panic");
    let _ = pool.shutdown();
}

#[test]
fn wait_first_returns_none_for_unknown_ids() {
    let pool = pool_with(1, "");
    assert!(pool.wait_first(&[]).is_none(), "empty id set has no first");
    assert!(pool.wait_first(&[9999]).is_none(), "unknown ids must not block");
    let _ = pool.shutdown();
}
