//! End-to-end smoke test of the concurrent runtime: a 2-worker pool over
//! several jobs must complete them all, reproduce the sequential pipeline
//! bit-for-bit, and contain failures without stalling other jobs.

use neurfill::extraction::NUM_CHANNELS;
use neurfill::pipeline::{FillingFlow, FlowConfig};
use neurfill::{CmpNeuralNetwork, CmpNnConfig, HeightNorm, NeurFillConfig};
use neurfill_cmpsim::ProcessParams;
use neurfill_layout::{DesignKind, DesignSpec, Layout};
use neurfill_nn::{UNet, UNetConfig};
use neurfill_optim::SqpConfig;
use neurfill_runtime::{BatchConfig, JobSpec, JobStatus, ModelBundle, PoolOptions, RuntimePool};
use rand::SeedableRng;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

fn network(seed: u64) -> CmpNeuralNetwork {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let unet = UNet::new(
        UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
        &mut rng,
    );
    CmpNeuralNetwork::new(unet, HeightNorm::default(), Default::default(), CmpNnConfig::default())
}

fn flow_config() -> FlowConfig {
    FlowConfig {
        process: ProcessParams::fast(),
        neurfill: NeurFillConfig {
            sqp: SqpConfig { max_iterations: 8, ..SqpConfig::default() },
            ..NeurFillConfig::default()
        },
        beta_time_s: 60.0,
        ..FlowConfig::default()
    }
}

fn layouts() -> Vec<Layout> {
    vec![
        DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate(),
        DesignSpec::new(DesignKind::Fpga, 8, 8, 2).generate(),
        DesignSpec::new(DesignKind::RiscV, 8, 8, 3).generate(),
        DesignSpec::new(DesignKind::CmpTest, 8, 8, 4).generate(),
    ]
}

#[test]
fn pool_matches_sequential_flow_and_contains_failures() {
    let bundle = Arc::new(ModelBundle::from_network(&network(42)).unwrap());
    let config = flow_config();

    let pool = RuntimePool::new(
        Arc::clone(&bundle),
        config.clone(),
        PoolOptions {
            workers: 2,
            batch: BatchConfig { max_batch: 8, linger: Duration::from_millis(2) },
            ..PoolOptions::default()
        },
    )
    .unwrap();

    let good: Vec<_> = layouts()
        .into_iter()
        .enumerate()
        .map(|(i, l)| (l.clone(), pool.submit(JobSpec::new(format!("job-{i}"), l)).unwrap()))
        .collect();
    // Deliberate failure: 6x6 is not divisible by the depth-2 UNet's
    // down-sampling factor, so synthesis errors out.
    let bad = pool
        .submit(JobSpec::new("bad-geometry", DesignSpec::new(DesignKind::CmpTest, 6, 6, 9).generate()))
        .unwrap();

    // The failing job reports Failed with its error...
    match pool.wait(bad) {
        Some(JobStatus::Failed(msg)) => assert!(msg.contains("not divisible"), "unexpected: {msg}"),
        other => panic!("bad job must fail, got {other:?}"),
    }

    // ...and every other job still completes, matching a sequential
    // FillingFlow over the same bundle bit-for-bit.
    let sequential = FillingFlow::with_network(Rc::new(bundle.hydrate().unwrap()), config).unwrap();
    for (layout, id) in good {
        let report = match pool.wait(id) {
            Some(JobStatus::Done(report)) => report,
            other => panic!("job must complete, got {other:?}"),
        };
        let expected = sequential.run(&layout).unwrap();
        assert_eq!(report.plan.as_slice(), expected.plan.as_slice(), "{}", report.name);
        assert_eq!(report.quality, expected.scored.quality, "{}", report.name);
        assert_eq!(report.objective_value, expected.synthesis.objective_value, "{}", report.name);
        // `overall` folds the measured wall-clock into the score, so it is
        // close but not bit-comparable across runs; every deterministic
        // output above is.
        assert!(report.overall.is_finite());
        assert!(report.predicted.sigma.is_finite());
    }

    let stats = pool.shutdown();
    assert_eq!(stats.jobs_submitted, 5);
    assert_eq!(stats.jobs_completed, 4);
    assert_eq!(stats.jobs_failed, 1);
    // Each job verifies its 3 layers through the batch server in one
    // submission, so occupancy must exceed 1 even without overlap.
    assert!(
        stats.mean_batch_occupancy > 1.0,
        "expected coalesced batches, got occupancy {}",
        stats.mean_batch_occupancy
    );
    // The server always hydrates; workers hydrate at startup (3 total
    // here, but a worker that never got scheduled before shutdown still
    // counts, so only assert the lower bound that matters).
    assert!(stats.hydrations >= 2, "server + at least one worker must hydrate");
}

#[test]
fn wait_first_streams_terminal_jobs_without_blocking_on_the_rest() {
    let bundle = Arc::new(ModelBundle::from_network(&network(11)).unwrap());
    let pool =
        RuntimePool::new(bundle, flow_config(), PoolOptions { workers: 2, ..PoolOptions::default() })
            .unwrap();

    let mut open: Vec<_> = (0..3)
        .map(|i| {
            let layout = DesignSpec::new(DesignKind::CmpTest, 8, 8, i).generate();
            pool.submit(JobSpec::new(format!("stream-{i}"), layout)).unwrap()
        })
        .collect();

    // Drain via wait_first: each call yields a terminal job from the
    // open set until the set is exhausted.
    let mut completed = 0;
    while !open.is_empty() {
        let (id, status) = pool.wait_first(&open).expect("open ids are known");
        assert!(open.contains(&id));
        assert!(status.is_terminal(), "{status:?}");
        assert!(matches!(status, JobStatus::Done(_)));
        open.retain(|&x| x != id);
        completed += 1;
    }
    assert_eq!(completed, 3);

    // Degenerate sets return None instead of blocking forever.
    assert!(pool.wait_first(&[]).is_none());
    assert!(pool.wait_first(&[9999]).is_none());
    let _ = pool.shutdown();
}

#[test]
fn zero_timeout_fails_in_queue_without_stalling_the_pool() {
    let bundle = Arc::new(ModelBundle::from_network(&network(7)).unwrap());
    let pool =
        RuntimePool::new(bundle, flow_config(), PoolOptions { workers: 1, ..PoolOptions::default() })
            .unwrap();

    let expired = pool
        .submit(JobSpec {
            name: "expired".into(),
            layout: DesignSpec::new(DesignKind::CmpTest, 8, 8, 1).generate(),
            timeout: Some(Duration::ZERO),
        })
        .unwrap();
    let normal = pool
        .submit(JobSpec::new("normal", DesignSpec::new(DesignKind::Fpga, 8, 8, 2).generate()))
        .unwrap();

    match pool.wait(expired) {
        Some(JobStatus::Failed(msg)) => assert!(msg.contains("timed out"), "unexpected: {msg}"),
        other => panic!("expired job must fail, got {other:?}"),
    }
    assert!(matches!(pool.wait(normal), Some(JobStatus::Done(_))));
    let stats = pool.shutdown();
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.jobs_failed, 1);
}
