//! # neurfill-runtime
//!
//! Concurrent batch fill-synthesis runtime for the NeurFill reproduction:
//! turn a directory of layouts plus one trained surrogate bundle into a
//! stream of per-layout fill reports, using every core without giving up
//! the sequential flow's bit-exact results.
//!
//! Three pieces cooperate:
//!
//! * [`ModelRegistry`] / [`ModelBundle`] — surrogate bundles cached and
//!   shared as serialized bytes (the autograd substrate is thread-local,
//!   so networks themselves never cross threads; every thread hydrates
//!   its own instance from the same bytes).
//! * [`BatchServer`] / [`BatchClient`] — a dedicated inference thread
//!   coalescing per-window UNet forwards from concurrent jobs into
//!   multi-sample `[B, C, H, W]` forwards.
//! * [`RuntimePool`] — the job queue and worker pool: per-job status,
//!   cooperative deadlines and cancellation, transient-failure retries,
//!   graceful shutdown, and failures that never poison the pool.
//! * [`FaultPlan`] — a deterministic fault-injection harness (panics,
//!   delays, transient errors, NaN-poisoned outputs at named sites) that
//!   drives the supervision layer's tests and stays inert in production.
//!
//! ```no_run
//! use neurfill::pipeline::FlowConfig;
//! use neurfill_runtime::{JobSpec, ModelRegistry, PoolOptions, RuntimePool};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = ModelRegistry::new();
//! let bundle = registry.load("surrogate.bundle")?;
//! let pool = RuntimePool::new(bundle, FlowConfig::default(), PoolOptions::default())?;
//! let layout = neurfill_layout::io::load_from_file("design_a.layout")?;
//! let id = pool.submit(JobSpec::new("design_a", layout))?;
//! println!("{:?}", pool.wait(id));
//! println!("{}", pool.shutdown());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// The supervision layer must never panic on a recoverable condition;
// unwrap/expect are banned outside tests (construction-time invariants
// carry local, justified `allow`s).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod error;
pub mod fault;
pub mod job;
pub mod pool;
pub mod registry;
mod stats;

pub use batch::{BatchClient, BatchConfig, BatchServer, BatchSupervisor};
pub use error::{classify, ErrorClass, InferError, RetryPolicy, RuntimeError};
pub use fault::{FaultKind, FaultPlan, FaultSpec, FaultTrigger, WriteFault};
pub use job::{JobId, JobReport, JobSpec, JobStatus};
pub use neurfill::CancelToken;
pub use pool::{default_workers, parallel_map_ordered, PoolOptions, RuntimePool};
pub use registry::{ModelBundle, ModelRegistry};
pub use stats::RuntimeStats;

#[cfg(test)]
pub(crate) mod test_util {
    use neurfill::extraction::NUM_CHANNELS;
    use neurfill::{CmpNeuralNetwork, CmpNnConfig, HeightNorm};
    use neurfill_layout::{DesignKind, DesignSpec, Layout};
    use neurfill_nn::{UNet, UNetConfig};
    use rand::SeedableRng;

    /// A small randomly-initialized (untrained) network — synthesis and
    /// inference paths behave identically to a trained one.
    pub fn tiny_network(seed: u64) -> CmpNeuralNetwork {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let unet = UNet::new(
            UNetConfig { in_channels: NUM_CHANNELS, out_channels: 1, base_channels: 4, depth: 2 },
            &mut rng,
        );
        CmpNeuralNetwork::new(unet, HeightNorm::default(), Default::default(), CmpNnConfig::default())
    }

    /// An 8×8, 3-layer layout (compatible with depth-2 UNets).
    pub fn tiny_layout(seed: u64) -> Layout {
        DesignSpec::new(DesignKind::CmpTest, 8, 8, seed).generate()
    }

    /// A 16×16 layout (a second geometry for mixed-shape batches).
    pub fn large_layout(seed: u64) -> Layout {
        DesignSpec::new(DesignKind::Fpga, 16, 16, seed).generate()
    }
}
