//! The concurrent fill-synthesis pool: a job queue fanned across worker
//! threads that share one model bundle and one supervised batch inference
//! server.
//!
//! Each worker hydrates its own network from the bundle (the autograd
//! substrate is thread-local), assembles a [`FillingFlow`] once, and then
//! processes jobs until the queue closes. Results are bit-identical to a
//! sequential `FillingFlow::run` over the same bundle and configuration —
//! workers run the same weights, and the batched verification forward is
//! per-sample identical to single forwards.
//!
//! # Failure model
//!
//! Jobs are isolated: a panic, error, timeout or cancellation fails that
//! job only, never its worker or the pool. Transient failures retry under
//! [`PoolOptions::retry`] with exponential backoff (status
//! [`JobStatus::Retrying`]); deadlines are enforced *cooperatively* — a
//! per-job [`CancelToken`] (deadline = submission + timeout) is threaded
//! into the synthesis optimizer's iteration loops, so an expired or
//! [`RuntimePool::cancel`]led job aborts mid-optimization instead of
//! running to completion. When batched inference is unavailable (server
//! dead and the supervisor's circuit open), workers degrade to per-worker
//! sequential inference on their own network; when surrogate heights fail
//! the numeric health guard, verification degrades to the golden
//! simulator and the job's report says so. All of it is exercised
//! deterministically through [`crate::fault::FaultPlan`].

use crate::batch::{BatchConfig, BatchSupervisor};
use crate::error::{InferError, RetryPolicy, RuntimeError};
use crate::fault::{sites, FaultPlan};
use crate::job::{JobId, JobReport, JobSpec, JobStatus};
use crate::registry::ModelBundle;
use crate::stats::{RuntimeStats, StatsInner};
use crossbeam::channel::{unbounded, Receiver, Sender};
use neurfill::pipeline::{FillingFlow, FlowConfig};
use neurfill::{CancelToken, HeightNorm, PlanarityMetrics};
use neurfill_cmpsim::ChipProfile;
use neurfill_cmpsim::LayerProfile;
use neurfill_layout::apply_fill;
use neurfill_obs::{MetricsSnapshot, Telemetry};
use neurfill_tensor::{BackendKind, NumericsTier};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pool construction options.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker threads; `0` uses [`default_workers`].
    pub workers: usize,
    /// Batch inference policy.
    pub batch: BatchConfig,
    /// Deadline applied to jobs that don't carry their own.
    pub default_timeout: Option<Duration>,
    /// Retry budget and backoff for transiently-failing jobs.
    pub retry: RetryPolicy,
    /// How many times a dead batch server is restarted before the
    /// circuit opens and workers fall back to local inference.
    pub restart_budget: u32,
    /// Fault-injection plan (disabled by default; see [`FaultPlan`]).
    /// With the disabled plan every code path is bit-identical to a
    /// fault-free runtime.
    pub fault: Arc<FaultPlan>,
    /// Telemetry handle. The default (disabled) handle changes nothing:
    /// the pool's `runtime.*` counters still count (in a private
    /// registry), but no spans, events or latency histograms are
    /// recorded. An enabled handle also propagates to each worker's flow
    /// (unless the [`FlowConfig`] carries its own), so one registry
    /// covers simulator, optimizer, flow and runtime metrics.
    pub telemetry: Telemetry,
    /// Numerics tier the pool runs at. `Exact` (the default) is
    /// bit-identical to the reference kernels; `Fast` opts into the
    /// certified FFT/FMA/sorted-contact kernels. The pool installs the
    /// tier process-wide (for the GEMM dispatch behind `NdArray::matmul`)
    /// and propagates it to each worker's flow unless the [`FlowConfig`]
    /// already selects `Fast` itself.
    pub numerics: NumericsTier,
    /// Tensor backend the pool's surrogate inference runs on. `Cpu` (the
    /// default) is bit-identical to the f32 reference kernels; `QuantCpu`
    /// opts into the certified int8 engine (the model bundle must carry
    /// calibration scales). Installed process-wide and propagated to each
    /// worker's flow, mirroring [`PoolOptions::numerics`].
    pub backend: BackendKind,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self {
            workers: 0,
            batch: BatchConfig::default(),
            default_timeout: None,
            retry: RetryPolicy::default(),
            restart_budget: 2,
            fault: Arc::new(FaultPlan::disabled()),
            telemetry: Telemetry::disabled(),
            numerics: NumericsTier::Exact,
            backend: BackendKind::Cpu,
        }
    }
}

/// The machine's available parallelism, clamped to at least one worker.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).max(1)
}

/// Applies `f` to every item on `workers` threads, returning results in
/// input order.
///
/// Work is pulled from a shared atomic cursor, so stragglers never idle a
/// thread, and the output position of each result is fixed by its input
/// index — the outcome is identical for any worker count (given a pure
/// `f`), which is what lets callers (e.g. the `neurfill-data` labeling
/// pipeline) promise byte-identical artifacts regardless of parallelism.
/// `workers == 0` uses [`default_workers`]; a single worker runs inline
/// without spawning.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all threads first).
// The two `expect`s assert scheduling invariants of the cursor (each index
// claimed exactly once, every slot filled after the scope joins).
#[allow(clippy::expect_used)]
pub fn parallel_map_ordered<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = if workers == 0 { default_workers() } else { workers };
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= n {
                    break;
                }
                let item = work[i].lock().take().expect("each index is claimed once");
                *slots[i].lock() = Some(f(item));
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().expect("all slots filled")).collect()
}

#[derive(Debug)]
struct Queued {
    id: JobId,
    spec: JobSpec,
    enqueued: Instant,
    cancel: CancelToken,
}

#[derive(Default)]
struct JobTable {
    jobs: Mutex<HashMap<JobId, JobStatus>>,
    tokens: Mutex<HashMap<JobId, CancelToken>>,
    changed: Condvar,
}

impl JobTable {
    fn set(&self, id: JobId, status: JobStatus) {
        self.jobs.lock().insert(id, status);
        self.changed.notify_all();
    }
}

/// The concurrent batch fill-synthesis runtime.
pub struct RuntimePool {
    tx: Option<Sender<Queued>>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Arc<BatchSupervisor>,
    table: Arc<JobTable>,
    stats: Arc<StatsInner>,
    next_id: AtomicU64,
    default_timeout: Option<Duration>,
    bundle_digest: u64,
}

impl std::fmt::Debug for RuntimePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RuntimePool({} workers)", self.workers.len())
    }
}

impl RuntimePool {
    /// Starts the pool: spawns the supervised batch server plus
    /// `options.workers` workers, each hydrating its own network from
    /// `bundle` and binding it into a flow under `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch server cannot hydrate the bundle or
    /// a thread cannot be spawned. Worker hydration failures at job time
    /// surface per job instead, so a pool is never half-constructed.
    pub fn new(
        bundle: Arc<ModelBundle>,
        mut config: FlowConfig,
        options: PoolOptions,
    ) -> std::io::Result<Self> {
        // One registry end to end: an enabled pool telemetry reaches the
        // workers' flows (and through them the simulator and optimizers)
        // unless the flow config already carries its own handle.
        if options.telemetry.is_enabled() && !config.telemetry.is_enabled() {
            config.telemetry = options.telemetry.clone();
        }
        // Same propagation shape for the numerics tier: a Fast pool runs
        // Fast flows (unless the flow opted in on its own), and the
        // process-global GEMM tier follows the pool.
        if options.numerics.is_fast() && !config.numerics.is_fast() {
            config.numerics = options.numerics;
        }
        neurfill_tensor::set_numerics_tier(config.numerics);
        // And again for the tensor backend: a quantized pool runs quantized
        // flows, and the process-global inference dispatch follows the pool.
        if options.backend.is_quant() && !config.backend.is_quant() {
            config.backend = options.backend;
        }
        neurfill_tensor::set_backend(config.backend);
        let stats = Arc::new(StatsInner::new(&options.telemetry));
        let fault = Arc::clone(&options.fault);
        let supervisor = Arc::new(BatchSupervisor::spawn_with(
            Arc::clone(&bundle),
            options.batch.clone(),
            options.restart_budget,
            Arc::clone(&stats),
            Arc::clone(&fault),
        )?);
        let table = Arc::new(JobTable::default());
        let (tx, rx) = unbounded::<Queued>();
        let worker_count = if options.workers == 0 { default_workers() } else { options.workers };
        let workers = (0..worker_count)
            .map(|i| {
                let rx = rx.clone();
                let bundle = Arc::clone(&bundle);
                let config = config.clone();
                let table = Arc::clone(&table);
                let stats = Arc::clone(&stats);
                let supervisor = Arc::clone(&supervisor);
                let fault = Arc::clone(&fault);
                let retry = options.retry;
                std::thread::Builder::new().name(format!("neurfill-worker-{i}")).spawn(move || {
                    worker_loop(&rx, &bundle, &config, &table, &stats, &supervisor, &fault, retry)
                })
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self {
            tx: Some(tx),
            workers,
            supervisor,
            table,
            stats,
            next_id: AtomicU64::new(1),
            default_timeout: options.default_timeout,
            bundle_digest: bundle.digest(),
        })
    }

    /// Digest of the model bundle this pool serves (see
    /// [`ModelBundle::digest`]) — lets a front-end report which model is
    /// live and detect whether a staged bundle would actually change it.
    #[must_use]
    pub fn bundle_digest(&self) -> u64 {
        self.bundle_digest
    }

    /// Enqueues a job and returns its id immediately.
    ///
    /// # Errors
    ///
    /// Returns an error (instead of accepting the job) when the pool has
    /// shut down or every worker is gone.
    pub fn submit(&self, mut spec: JobSpec) -> Result<JobId, String> {
        let Some(tx) = self.tx.as_ref() else {
            return Err("pool is shut down; job not accepted".to_string());
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        spec.timeout = spec.timeout.or(self.default_timeout);
        let enqueued = Instant::now();
        let cancel = CancelToken::with_deadline_opt(spec.timeout.map(|t| enqueued + t));
        self.table.tokens.lock().insert(id, cancel.clone());
        self.table.set(id, JobStatus::Queued);
        self.stats.jobs_submitted.inc();
        if tx.send(Queued { id, spec, enqueued, cancel }).is_err() {
            let msg = "pool workers are gone; job not enqueued".to_string();
            self.stats.jobs_failed.inc();
            self.table.set(id, JobStatus::Failed(msg.clone()));
            return Err(msg);
        }
        Ok(id)
    }

    /// The job's current status, or `None` for an unknown id.
    #[must_use]
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.table.jobs.lock().get(&id).cloned()
    }

    /// Requests cooperative cancellation of a job. Returns whether the
    /// request landed: `true` for a known, still-active job (it will fail
    /// with a `cancelled` error at its next cancellation point), `false`
    /// for unknown ids and jobs that already finished.
    pub fn cancel(&self, id: JobId) -> bool {
        let active = matches!(self.table.jobs.lock().get(&id), Some(s) if !s.is_terminal());
        if !active {
            return false;
        }
        match self.table.tokens.lock().get(&id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Blocks until the job reaches a terminal status; `None` for an id
    /// this pool never issued.
    #[must_use]
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut jobs = self.table.jobs.lock();
        loop {
            let status = jobs.get(&id)?.clone();
            if status.is_terminal() {
                return Some(status);
            }
            self.table.changed.wait(&mut jobs);
        }
    }

    /// Blocks until the job reaches a terminal status or `timeout`
    /// elapses, returning the job's status at that point (possibly still
    /// non-terminal); `None` for an id this pool never issued.
    ///
    /// This is the bounded-wait primitive front-ends build long-polling
    /// on: unlike [`RuntimePool::wait`], a hung or long-running job cannot
    /// pin the caller forever.
    #[must_use]
    pub fn wait_timeout(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut jobs = self.table.jobs.lock();
        loop {
            let status = jobs.get(&id)?.clone();
            if status.is_terminal() {
                return Some(status);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Some(status);
            }
            let _ = self.table.changed.wait_for(&mut jobs, remaining);
        }
    }

    /// Blocks until *any* of the given jobs reaches a terminal status,
    /// returning the first one found (lowest index in `ids` on ties).
    /// Ids this pool never issued are skipped; returns `None` when none
    /// of the ids are known (including an empty slice).
    ///
    /// This is the streaming primitive the full-chip tile scheduler
    /// uses to keep a bounded number of tile jobs in flight: submit up
    /// to the cap, `wait_first` on the open set, merge, refill.
    #[must_use]
    pub fn wait_first(&self, ids: &[JobId]) -> Option<(JobId, JobStatus)> {
        let mut jobs = self.table.jobs.lock();
        loop {
            let mut any_known = false;
            for &id in ids {
                if let Some(status) = jobs.get(&id) {
                    any_known = true;
                    if status.is_terminal() {
                        return Some((id, status.clone()));
                    }
                }
            }
            if !any_known {
                return None;
            }
            self.table.changed.wait(&mut jobs);
        }
    }

    /// How many submitted jobs have not yet reached a terminal status
    /// (queued, running or retrying). Used by front-ends to drain before
    /// shutdown and to retire replaced pools.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.table.jobs.lock().values().filter(|s| !s.is_terminal()).count()
    }

    /// Blocks until every submitted job is terminal; returns all statuses
    /// sorted by id.
    #[must_use]
    pub fn wait_all(&self) -> Vec<(JobId, JobStatus)> {
        let mut jobs = self.table.jobs.lock();
        while jobs.values().any(|s| !s.is_terminal()) {
            self.table.changed.wait(&mut jobs);
        }
        let mut out: Vec<(JobId, JobStatus)> = jobs.iter().map(|(id, s)| (*id, s.clone())).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// A snapshot of the runtime counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.stats.snapshot()
    }

    /// A telemetry snapshot of everything recorded in the registry the
    /// pool's counters live in. With [`PoolOptions::telemetry`] attached
    /// this is the whole shared registry — `runtime.*` counters, `job.*`
    /// and `batch.*` histograms, `sim.*`/`optim.*`/`flow.*` metrics from
    /// the workers' flows, and degradation events. With the default
    /// (disabled) handle it still carries the `runtime.*` counters.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.stats.registry_snapshot()
    }

    /// Graceful shutdown: closes the queue, lets workers finish everything
    /// already enqueued, stops the batch server, and returns final stats.
    #[must_use]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop();
        self.stats.snapshot()
    }

    fn stop(&mut self) {
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.supervisor.shutdown();
    }
}

impl Drop for RuntimePool {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Hydrates the worker's flow on first use (and again after a faulted
/// hydration attempt left the slot empty), so hydration failures are
/// per-attempt and retryable instead of condemning every job the worker
/// ever takes.
fn ensure_flow<'a>(
    slot: &'a mut Option<FillingFlow>,
    bundle: &ModelBundle,
    config: &FlowConfig,
    fault: &FaultPlan,
    stats: &StatsInner,
) -> Result<&'a FillingFlow, String> {
    if slot.is_none() {
        let start = Instant::now();
        fault.inject(sites::HYDRATE)?;
        let network = bundle.hydrate().map_err(|e| format!("failed to hydrate model bundle: {e}"))?;
        let flow = FillingFlow::with_network(Rc::new(network), config.clone())?;
        stats.hydrations.inc();
        stats.hydrate_nanos.add_duration(start.elapsed());
        *slot = Some(flow);
    }
    slot.as_ref().ok_or_else(|| "worker flow initialization failed".to_string())
}

/// Sleeps for `backoff`, clipped so a retry never waits past the job's
/// deadline.
fn backoff_within_deadline(backoff: Duration, deadline: Option<Instant>) {
    let wait = match deadline {
        Some(d) => backoff.min(d.saturating_duration_since(Instant::now())),
        None => backoff,
    };
    if !wait.is_zero() {
        std::thread::sleep(wait);
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: &Receiver<Queued>,
    bundle: &ModelBundle,
    config: &FlowConfig,
    table: &JobTable,
    stats: &StatsInner,
    supervisor: &BatchSupervisor,
    fault: &FaultPlan,
    retry: RetryPolicy,
) {
    // The flow (one hydration + assembly) is amortized over every job this
    // worker takes, but built lazily so a faulted/failed hydration can be
    // retried on the next attempt instead of poisoning the worker.
    let mut flow: Option<FillingFlow> = None;

    while let Ok(job) = rx.recv() {
        stats.queue_wait.record_duration(job.enqueued.elapsed());
        let deadline = job.spec.timeout.map(|t| job.enqueued + t);
        if deadline.is_some_and(|d| Instant::now() > d) {
            fail(table, stats, job.id, format!("job '{}' timed out in queue", job.spec.name));
            continue;
        }
        if job.cancel.cancel_requested() {
            fail(table, stats, job.id, format!("job '{}' cancelled while queued", job.spec.name));
            continue;
        }
        let mut attempt: u32 = 0;
        // One span per job (all attempts): records `job.total_ns` and a
        // span event. Inert when no telemetry is attached.
        let job_span = stats.events.span("job.total_ns");
        let status = loop {
            table.set(
                job.id,
                if attempt == 0 { JobStatus::Running } else { JobStatus::Retrying { attempt } },
            );
            // Panics — the job's own or injected at any site — are caught
            // here: they fail the job, never the worker.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let flow = ensure_flow(&mut flow, bundle, config, fault, stats)?;
                run_job(flow, supervisor, &job.spec, &job.cancel, fault, stats)
            }));
            break match outcome {
                Ok(Ok(report)) => {
                    if deadline.is_some_and(|d| Instant::now() > d) {
                        JobStatus::Failed(format!("job '{}' exceeded its timeout", job.spec.name))
                    } else {
                        JobStatus::Done(Box::new(report))
                    }
                }
                Ok(Err(e)) => {
                    let err = RuntimeError::from_message(e);
                    if err.is_retryable() && attempt < retry.max_retries && !job.cancel.is_cancelled() {
                        attempt += 1;
                        stats.retries.inc();
                        stats.events.event(
                            "fault",
                            "retry",
                            &[
                                ("job", job.spec.name.clone()),
                                ("attempt", attempt.to_string()),
                                ("error", err.message.clone()),
                            ],
                        );
                        backoff_within_deadline(retry.backoff(attempt), deadline);
                        continue;
                    }
                    JobStatus::Failed(err.message)
                }
                Err(panic) => JobStatus::Failed(format!(
                    "job '{}' panicked: {}",
                    job.spec.name,
                    panic_message(&*panic)
                )),
            };
        };
        drop(job_span);
        match status {
            JobStatus::Failed(msg) => fail(table, stats, job.id, msg),
            done => {
                stats.jobs_completed.inc();
                table.set(job.id, done);
            }
        }
    }
}

fn fail(table: &JobTable, stats: &StatsInner, id: JobId, msg: String) {
    stats.jobs_failed.inc();
    table.set(id, JobStatus::Failed(msg));
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

/// Flags surrogate heights that cannot be trusted: non-finite values, or
/// values implausibly far from the normalization band (|h − offset| >
/// 10⁴ × scale — a trained surrogate predicts within a few scales).
fn heights_health_error(heights: &[Vec<f64>], norm: HeightNorm) -> Option<String> {
    let band = 1e4 * norm.scale_nm;
    for (layer, layer_heights) in heights.iter().enumerate() {
        for &h in layer_heights {
            if !h.is_finite() {
                return Some(format!("surrogate returned a non-finite height on layer {layer}"));
            }
            if (h - norm.offset_nm).abs() > band {
                return Some(format!(
                    "surrogate height {h:.3e} nm on layer {layer} is outside the plausible band"
                ));
            }
        }
    }
    None
}

/// One job: synthesis through the worker's own flow (under the job's
/// cancel token), then surrogate verification of the filled layout
/// through the supervised batch server — degrading to per-worker
/// inference when batching is unavailable, and to the golden simulator
/// when the surrogate's heights fail the health guard.
fn run_job(
    flow: &FillingFlow,
    supervisor: &BatchSupervisor,
    spec: &JobSpec,
    cancel: &CancelToken,
    fault: &FaultPlan,
    stats: &StatsInner,
) -> Result<JobReport, String> {
    fault.inject(sites::SYNTHESIS)?;
    let synth_start = Instant::now();
    let result = flow.run_cancellable(&spec.layout, cancel)?;
    let synth_elapsed = synth_start.elapsed();
    stats.synthesis_nanos.add_duration(synth_elapsed);
    stats.job_synthesis.record_duration(synth_elapsed);

    // Verification: predict the filled layout's post-CMP profile on the
    // batch server. Each layer is one window sample; a multi-layer job
    // already forms a batch, and overlapping jobs coalesce further.
    let verify_start = Instant::now();
    let dummy = flow.config().insertion_dummy_spec();
    let filled = apply_fill(&spec.layout, &result.plan, &dummy);
    let (rows, cols) = (filled.rows(), filled.cols());
    let samples: Vec<_> = (0..filled.num_layers())
        .map(|l| flow.network().extract_window_sample(&filled, l))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let heights = match supervisor.predict_heights(&samples) {
        Ok(heights) => heights,
        Err(InferError::Forward(e)) => return Err(e),
        Err(InferError::Disconnected(cause)) => {
            // Degradation rung 1: batched inference is gone (circuit
            // open). The worker's own network has the same weights, so
            // results stay bit-identical — only the coalescing is lost.
            stats.fallback_batches.inc();
            stats.events.event(
                "fault",
                "local_fallback",
                &[("job", spec.name.clone()), ("cause", cause.clone())],
            );
            flow.network()
                .predict_heights_batch(&samples)
                .map_err(|e| format!("local inference fallback (after: {cause}) failed: {e}"))?
        }
    };
    let (predicted, degraded) = match heights_health_error(&heights, flow.network().height_norm()) {
        None => {
            let profile = ChipProfile::new(
                heights
                    .into_iter()
                    .map(|h| {
                        let zeros = vec![0.0; rows * cols];
                        LayerProfile::new(rows, cols, h, zeros.clone(), zeros)
                    })
                    .collect(),
            );
            (PlanarityMetrics::from_profile(&profile), None)
        }
        Some(reason) => {
            // Degradation rung 2: the surrogate's numbers are unusable;
            // verify on the golden simulator and say so in the report.
            stats.jobs_degraded.inc();
            stats.events.event(
                "fault",
                "golden_degraded",
                &[("job", spec.name.clone()), ("reason", reason.clone())],
            );
            let profile = flow.simulator().simulate(&filled);
            (PlanarityMetrics::from_profile(&profile), Some(reason))
        }
    };
    let verify_elapsed = verify_start.elapsed();
    stats.verify_nanos.add_duration(verify_elapsed);
    stats.job_verify.record_duration(verify_elapsed);

    Ok(JobReport {
        name: spec.name.clone(),
        objective_value: result.synthesis.objective_value,
        quality: result.scored.quality,
        overall: result.scored.overall,
        breakdown: result.scored.breakdown,
        predicted,
        synthesis_runtime: result.synthesis.runtime,
        evaluations: result.synthesis.evaluations,
        plan: result.plan,
        degraded,
        backend: neurfill_tensor::backend(),
    })
}

#[cfg(test)]
mod tests {
    use super::parallel_map_ordered;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * i).collect();
        for workers in [1, 2, 4, 7] {
            let got = parallel_map_ordered(items.clone(), workers, |i| i * i);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map_ordered(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(parallel_map_ordered(vec![9], 4, |x| x + 1), vec![10]);
    }
}
