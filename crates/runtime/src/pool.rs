//! The concurrent fill-synthesis pool: a job queue fanned across worker
//! threads that share one model bundle and one batch inference server.
//!
//! Each worker hydrates its own network from the bundle (the autograd
//! substrate is thread-local), assembles a [`FillingFlow`] once, and then
//! processes jobs until the queue closes. Results are bit-identical to a
//! sequential `FillingFlow::run` over the same bundle and configuration —
//! workers run the same weights, and the batched verification forward is
//! per-sample identical to single forwards.

use crate::batch::{BatchClient, BatchConfig, BatchServer};
use crate::job::{JobId, JobReport, JobSpec, JobStatus};
use crate::registry::ModelBundle;
use crate::stats::{RuntimeStats, StatsInner};
use crossbeam::channel::{unbounded, Receiver, Sender};
use neurfill::pipeline::{FillingFlow, FlowConfig};
use neurfill::PlanarityMetrics;
use neurfill_cmpsim::ChipProfile;
use neurfill_cmpsim::LayerProfile;
use neurfill_layout::apply_fill;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pool construction options.
#[derive(Debug, Clone, Default)]
pub struct PoolOptions {
    /// Worker threads; `0` uses [`default_workers`].
    pub workers: usize,
    /// Batch inference policy.
    pub batch: BatchConfig,
    /// Deadline applied to jobs that don't carry their own.
    pub default_timeout: Option<Duration>,
}

/// The machine's available parallelism, clamped to at least one worker.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).max(1)
}

/// Applies `f` to every item on `workers` threads, returning results in
/// input order.
///
/// Work is pulled from a shared atomic cursor, so stragglers never idle a
/// thread, and the output position of each result is fixed by its input
/// index — the outcome is identical for any worker count (given a pure
/// `f`), which is what lets callers (e.g. the `neurfill-data` labeling
/// pipeline) promise byte-identical artifacts regardless of parallelism.
/// `workers == 0` uses [`default_workers`]; a single worker runs inline
/// without spawning.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all threads first).
pub fn parallel_map_ordered<T, U, F>(items: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = if workers == 0 { default_workers() } else { workers };
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= n {
                    break;
                }
                let item = work[i].lock().take().expect("each index is claimed once");
                *slots[i].lock() = Some(f(item));
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().expect("all slots filled")).collect()
}

#[derive(Debug)]
struct Queued {
    id: JobId,
    spec: JobSpec,
    enqueued: Instant,
}

#[derive(Default)]
struct JobTable {
    jobs: Mutex<HashMap<JobId, JobStatus>>,
    changed: Condvar,
}

impl JobTable {
    fn set(&self, id: JobId, status: JobStatus) {
        self.jobs.lock().insert(id, status);
        self.changed.notify_all();
    }
}

/// The concurrent batch fill-synthesis runtime.
pub struct RuntimePool {
    tx: Option<Sender<Queued>>,
    workers: Vec<JoinHandle<()>>,
    server: Option<BatchServer>,
    client: Option<BatchClient>,
    table: Arc<JobTable>,
    stats: Arc<StatsInner>,
    next_id: AtomicU64,
    default_timeout: Option<Duration>,
}

impl std::fmt::Debug for RuntimePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RuntimePool({} workers)", self.workers.len())
    }
}

impl RuntimePool {
    /// Starts the pool: spawns the batch server plus `options.workers`
    /// workers, each hydrating its own network from `bundle` and binding it
    /// into a flow under `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch server cannot hydrate the bundle.
    /// Worker hydration failures surface per job instead, so a pool is
    /// never half-constructed.
    pub fn new(
        bundle: Arc<ModelBundle>,
        config: FlowConfig,
        options: PoolOptions,
    ) -> std::io::Result<Self> {
        let stats = Arc::new(StatsInner::default());
        let (server, client) = BatchServer::spawn_with_stats(
            Arc::clone(&bundle),
            options.batch.clone(),
            Arc::clone(&stats),
        )?;
        let table = Arc::new(JobTable::default());
        let (tx, rx) = unbounded::<Queued>();
        let worker_count = if options.workers == 0 { default_workers() } else { options.workers };
        let workers = (0..worker_count)
            .map(|i| {
                let rx = rx.clone();
                let bundle = Arc::clone(&bundle);
                let config = config.clone();
                let table = Arc::clone(&table);
                let stats = Arc::clone(&stats);
                let client = client.clone();
                std::thread::Builder::new()
                    .name(format!("neurfill-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &bundle, config, &table, &stats, &client))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Self {
            tx: Some(tx),
            workers,
            server: Some(server),
            client: Some(client),
            table,
            stats,
            next_id: AtomicU64::new(1),
            default_timeout: options.default_timeout,
        })
    }

    /// Enqueues a job and returns its id immediately.
    ///
    /// # Panics
    ///
    /// Panics when called after [`RuntimePool::shutdown`] (the pool is
    /// consumed there, so this needs `unsafe`-free misuse via a clone —
    /// practically unreachable).
    pub fn submit(&self, mut spec: JobSpec) -> JobId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        spec.timeout = spec.timeout.or(self.default_timeout);
        self.table.set(id, JobStatus::Queued);
        self.stats.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.tx
            .as_ref()
            .expect("pool is running")
            .send(Queued { id, spec, enqueued: Instant::now() })
            .expect("workers alive while pool is running");
        id
    }

    /// The job's current status, or `None` for an unknown id.
    #[must_use]
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.table.jobs.lock().get(&id).cloned()
    }

    /// Blocks until the job reaches a terminal status.
    ///
    /// # Panics
    ///
    /// Panics on an id this pool never issued.
    #[must_use]
    pub fn wait(&self, id: JobId) -> JobStatus {
        let mut jobs = self.table.jobs.lock();
        loop {
            let status = jobs.get(&id).expect("job id issued by this pool").clone();
            if status.is_terminal() {
                return status;
            }
            self.table.changed.wait(&mut jobs);
        }
    }

    /// Blocks until every submitted job is terminal; returns all statuses
    /// sorted by id.
    #[must_use]
    pub fn wait_all(&self) -> Vec<(JobId, JobStatus)> {
        let mut jobs = self.table.jobs.lock();
        while jobs.values().any(|s| !s.is_terminal()) {
            self.table.changed.wait(&mut jobs);
        }
        let mut out: Vec<(JobId, JobStatus)> = jobs.iter().map(|(id, s)| (*id, s.clone())).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// A snapshot of the runtime counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        self.stats.snapshot()
    }

    /// Graceful shutdown: closes the queue, lets workers finish everything
    /// already enqueued, stops the batch server, and returns final stats.
    #[must_use]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop();
        self.stats.snapshot()
    }

    fn stop(&mut self) {
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        drop(self.client.take());
        if let Some(server) = self.server.take() {
            server.join();
        }
    }
}

impl Drop for RuntimePool {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    rx: &Receiver<Queued>,
    bundle: &ModelBundle,
    config: FlowConfig,
    table: &JobTable,
    stats: &StatsInner,
    client: &BatchClient,
) {
    // One hydration + flow assembly amortized over every job this worker
    // takes. On failure the worker stays alive and fails its jobs with the
    // hydration error instead of stalling the queue.
    let start = Instant::now();
    let flow = bundle
        .hydrate()
        .map_err(|e| format!("failed to hydrate model bundle: {e}"))
        .and_then(|network| FillingFlow::with_network(Rc::new(network), config));
    if flow.is_ok() {
        stats.hydrations.fetch_add(1, Ordering::Relaxed);
        StatsInner::add_duration(&stats.hydrate_nanos, start.elapsed());
    }

    while let Ok(job) = rx.recv() {
        let deadline = job.spec.timeout.map(|t| job.enqueued + t);
        if deadline.is_some_and(|d| Instant::now() > d) {
            fail(table, stats, job.id, format!("job '{}' timed out in queue", job.spec.name));
            continue;
        }
        let flow = match &flow {
            Ok(flow) => flow,
            Err(e) => {
                fail(table, stats, job.id, e.clone());
                continue;
            }
        };
        table.set(job.id, JobStatus::Running);
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(flow, client, &job.spec, stats)));
        let status = match outcome {
            Ok(Ok(report)) => {
                if deadline.is_some_and(|d| Instant::now() > d) {
                    JobStatus::Failed(format!("job '{}' exceeded its timeout", job.spec.name))
                } else {
                    JobStatus::Done(Box::new(report))
                }
            }
            Ok(Err(e)) => JobStatus::Failed(e),
            Err(panic) => {
                JobStatus::Failed(format!("job '{}' panicked: {}", job.spec.name, panic_message(&panic)))
            }
        };
        match status {
            JobStatus::Failed(msg) => fail(table, stats, job.id, msg),
            done => {
                stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
                table.set(job.id, done);
            }
        }
    }
}

fn fail(table: &JobTable, stats: &StatsInner, id: JobId, msg: String) {
    stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
    table.set(id, JobStatus::Failed(msg));
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

/// One job: synthesis through the worker's own flow, then surrogate
/// verification of the filled layout through the shared batch server.
fn run_job(
    flow: &FillingFlow,
    client: &BatchClient,
    spec: &JobSpec,
    stats: &StatsInner,
) -> Result<JobReport, String> {
    let synth_start = Instant::now();
    let result = flow.run(&spec.layout)?;
    StatsInner::add_duration(&stats.synthesis_nanos, synth_start.elapsed());

    // Verification: predict the filled layout's post-CMP profile on the
    // batch server. Each layer is one window sample; a multi-layer job
    // already forms a batch, and overlapping jobs coalesce further.
    let verify_start = Instant::now();
    let dummy = flow.config().insertion_dummy_spec();
    let filled = apply_fill(&spec.layout, &result.plan, &dummy);
    let (rows, cols) = (filled.rows(), filled.cols());
    let samples: Vec<_> = (0..filled.num_layers())
        .map(|l| flow.network().extract_window_sample(&filled, l))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let heights = client.predict_heights(&samples)?;
    let profile = ChipProfile::new(
        heights
            .into_iter()
            .map(|h| {
                let zeros = vec![0.0; rows * cols];
                LayerProfile::new(rows, cols, h, zeros.clone(), zeros)
            })
            .collect(),
    );
    let predicted = PlanarityMetrics::from_profile(&profile);
    StatsInner::add_duration(&stats.verify_nanos, verify_start.elapsed());

    Ok(JobReport {
        name: spec.name.clone(),
        objective_value: result.synthesis.objective_value,
        quality: result.scored.quality,
        overall: result.scored.overall,
        breakdown: result.scored.breakdown,
        predicted,
        synthesis_runtime: result.synthesis.runtime,
        evaluations: result.synthesis.evaluations,
        plan: result.plan,
    })
}

#[cfg(test)]
mod tests {
    use super::parallel_map_ordered;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * i).collect();
        for workers in [1, 2, 4, 7] {
            let got = parallel_map_ordered(items.clone(), workers, |i| i * i);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map_ordered(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(parallel_map_ordered(vec![9], 4, |x| x + 1), vec![10]);
    }
}
