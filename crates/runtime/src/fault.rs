//! Deterministic fault injection for exercising the runtime's
//! fault-tolerance paths.
//!
//! A [`FaultPlan`] is a set of [`FaultSpec`]s, each naming a *site* (a
//! stable string like [`sites::SYNTHESIS`] checked at exactly one code
//! location), a fault kind, and a trigger deciding *which* invocations of
//! that site fault. Triggers are either explicit 1-based ordinals
//! (`@1,3`), an ordinal range (`@2-5`), or a seeded probability (`@p0.25`)
//! — the probabilistic mode hashes `(seed, site, ordinal)`, so a given
//! plan faults the same invocations on every run regardless of thread
//! interleaving.
//!
//! Plans are test-visible and config/env-constructed:
//!
//! ```text
//! NEURFILL_FAULT_PLAN="synthesis=transient@1;batch_forward=panic@2"
//! NEURFILL_FAULT_SEED=7
//! ```
//!
//! The spec grammar is `site=kind[@trigger]` joined by `;`, where `kind`
//! is one of `panic`, `transient`, `nan`, `delayNN` (NN milliseconds), or
//! one of the durable-write kinds `short_write`, `torn_record`, and
//! `crash` (checked only at write sites via [`FaultPlan::inject_write`]).
//! An absent trigger fires on every invocation. [`FaultPlan::disabled`]
//! (the default everywhere) injects nothing and leaves every code path
//! bit-identical to an unfaulted run.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Stable site names checked by the runtime and data crates.
pub mod sites {
    /// Network hydration from bundle bytes (workers and the batch server).
    pub const HYDRATE: &str = "hydrate";
    /// The synthesis stage of a job, before `FillingFlow` runs.
    pub const SYNTHESIS: &str = "synthesis";
    /// The batch server's multi-sample forward.
    pub const BATCH_FORWARD: &str = "batch_forward";
    /// Reading one record from a training-data shard.
    pub const SHARD_READ: &str = "shard_read";
    /// Appending one record to the service's write-ahead job journal.
    pub const JOURNAL_WRITE: &str = "journal_write";
    /// Finalizing one tile checkpoint of a full-chip run.
    pub const CHECKPOINT_WRITE: &str = "checkpoint_write";
    /// Dispatching one tile of a full-chip run to a remote service.
    pub const TILE_DISPATCH: &str = "tile_dispatch";
    /// Opening or reusing a client connection to a remote service.
    pub const CONN_DROP: &str = "conn_drop";
}

/// What a firing fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (exercises panic isolation / thread supervision).
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Fail the operation with a transient (retryable) error.
    Transient,
    /// Poison the site's numeric outputs with NaN (only meaningful at
    /// sites producing heights; elsewhere it is ignored).
    Nan,
    /// Interrupt a durable write partway through (the write self-heals in
    /// place — exercises retry logic, not recovery). Only meaningful at
    /// write sites checked via [`FaultPlan::inject_write`].
    ShortWrite,
    /// Leave a torn (truncated / corrupted) final record on disk while
    /// the writer believes the write succeeded — the state a real crash
    /// leaves behind when it lands mid-record. Write sites only.
    TornRecord,
    /// Abort-at-ordinal: freeze the durable layer as a kill at this exact
    /// write would, leaving a torn prefix on disk and failing this and
    /// every later write. Write sites only.
    Crash,
}

/// When a spec fires, relative to the per-site invocation counter.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTrigger {
    /// Fire on these exact 1-based invocation ordinals.
    Ordinals(Vec<u64>),
    /// Fire on every ordinal in `from..=to` (inclusive, 1-based).
    Range {
        /// First faulting ordinal.
        from: u64,
        /// Last faulting ordinal.
        to: u64,
    },
    /// Fire on each invocation independently with this probability,
    /// decided by a deterministic hash of `(seed, site, ordinal)`.
    Probability(f64),
    /// Fire on every invocation.
    Always,
}

/// One injection rule: `site=kind@trigger`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The site this rule applies to (see [`sites`]).
    pub site: String,
    /// The fault to inject.
    pub kind: FaultKind,
    /// Which invocations fault.
    pub trigger: FaultTrigger,
}

impl FaultSpec {
    fn fires(&self, ordinal: u64, seed: u64) -> bool {
        match &self.trigger {
            FaultTrigger::Ordinals(list) => list.contains(&ordinal),
            FaultTrigger::Range { from, to } => (*from..=*to).contains(&ordinal),
            FaultTrigger::Probability(p) => {
                let h = splitmix(seed ^ fnv1a(self.site.as_bytes()) ^ ordinal);
                ((h >> 11) as f64 / (1u64 << 53) as f64) < *p
            }
            FaultTrigger::Always => true,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Marker substring carried by every injected transient error, used by
/// [`crate::error::classify`] to route the failure into the retry path.
pub const TRANSIENT_MARKER: &str = "transient fault injected";

/// A durable-write fault returned by [`FaultPlan::inject_write`], telling
/// the write site *how* to damage its own output. The site owns the
/// mechanics (what bytes land on disk); this enum only names the shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Truncate the in-progress write, then redo it (self-healing).
    ShortWrite,
    /// Persist a torn final record but report success to the caller.
    TornRecord,
    /// Persist a torn prefix, then fail this and all later writes — the
    /// on-disk state of a process killed at this exact ordinal.
    Crash,
}

/// A seeded, deterministic set of injection rules shared by every thread
/// of a runtime. The disabled plan (no specs) is the default and injects
/// nothing.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    seed: u64,
    counters: Mutex<HashMap<String, u64>>,
}

impl FaultPlan {
    /// The no-op plan: never fires, never perturbs behavior.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A plan from explicit specs and a seed (for probabilistic triggers).
    #[must_use]
    pub fn new(specs: Vec<FaultSpec>, seed: u64) -> Self {
        Self { specs, seed, counters: Mutex::new(HashMap::new()) }
    }

    /// Parses a plan from the `site=kind[@trigger];...` grammar (see the
    /// module docs).
    ///
    /// # Errors
    ///
    /// Returns a message pinpointing the malformed clause.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut specs = Vec::new();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (site, rest) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} is missing '='"))?;
            let (kind_str, trigger_str) = match rest.split_once('@') {
                Some((k, t)) => (k.trim(), Some(t.trim())),
                None => (rest.trim(), None),
            };
            let kind = if kind_str == "panic" {
                FaultKind::Panic
            } else if kind_str == "transient" {
                FaultKind::Transient
            } else if kind_str == "nan" {
                FaultKind::Nan
            } else if kind_str == "short_write" {
                FaultKind::ShortWrite
            } else if kind_str == "torn_record" {
                FaultKind::TornRecord
            } else if kind_str == "crash" {
                FaultKind::Crash
            } else if let Some(ms) = kind_str.strip_prefix("delay") {
                let ms: u64 =
                    ms.parse().map_err(|_| format!("bad delay duration {ms:?} in clause {clause:?}"))?;
                FaultKind::Delay(Duration::from_millis(ms))
            } else {
                return Err(format!("unknown fault kind {kind_str:?} in clause {clause:?}"));
            };
            let trigger = match trigger_str {
                None => FaultTrigger::Always,
                Some(t) => {
                    if let Some(p) = t.strip_prefix('p') {
                        let p: f64 = p
                            .parse()
                            .map_err(|_| format!("bad probability {p:?} in clause {clause:?}"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("probability {p} out of [0,1] in {clause:?}"));
                        }
                        FaultTrigger::Probability(p)
                    } else if let Some((from, to)) = t.split_once('-') {
                        let parse = |s: &str| {
                            s.parse::<u64>()
                                .map_err(|_| format!("bad ordinal {s:?} in clause {clause:?}"))
                        };
                        FaultTrigger::Range { from: parse(from)?, to: parse(to)? }
                    } else {
                        let ordinals = t
                            .split(',')
                            .map(|s| {
                                s.trim()
                                    .parse::<u64>()
                                    .map_err(|_| format!("bad ordinal {s:?} in clause {clause:?}"))
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        FaultTrigger::Ordinals(ordinals)
                    }
                }
            };
            specs.push(FaultSpec { site: site.trim().to_string(), kind, trigger });
        }
        Ok(Self::new(specs, seed))
    }

    /// Builds a plan from `NEURFILL_FAULT_PLAN` / `NEURFILL_FAULT_SEED`;
    /// absent or empty env yields the disabled plan.
    ///
    /// # Errors
    ///
    /// Propagates parse errors from the env spec.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("NEURFILL_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => {
                let seed =
                    std::env::var("NEURFILL_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
                Self::parse(&spec, seed)
            }
            _ => Ok(Self::disabled()),
        }
    }

    /// Whether the plan has any rules at all (a cheap happy-path gate).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.specs.is_empty()
    }

    /// How many times `site` has been passed so far.
    #[must_use]
    pub fn invocations(&self, site: &str) -> u64 {
        self.counters.lock().get(site).copied().unwrap_or(0)
    }

    /// The injection point: call once per operation at the named site.
    ///
    /// Increments the site's invocation counter, then applies the first
    /// matching spec: `Delay` sleeps here and continues; `Panic` panics
    /// here (the caller's supervision is what's under test); `Transient`
    /// returns an `Err` carrying [`TRANSIENT_MARKER`]; `Nan` returns
    /// `Ok(true)`, asking the caller to poison its numeric outputs.
    /// Returns `Ok(false)` when nothing fires.
    ///
    /// # Errors
    ///
    /// Returns the injected transient error.
    ///
    /// # Panics
    ///
    /// Panics when a `Panic` fault fires (by design).
    pub fn inject(&self, site: &str) -> Result<bool, String> {
        if self.specs.is_empty() {
            return Ok(false);
        }
        let ordinal = {
            let mut counters = self.counters.lock();
            let c = counters.entry(site.to_string()).or_insert(0);
            *c += 1;
            *c
        };
        for spec in self.specs.iter().filter(|s| s.site == site) {
            if !spec.fires(ordinal, self.seed) {
                continue;
            }
            match spec.kind {
                FaultKind::Panic => {
                    panic!("fault injected: panic at '{site}' (invocation {ordinal})")
                }
                FaultKind::Delay(d) => std::thread::sleep(d),
                FaultKind::Transient => {
                    return Err(format!("{TRANSIENT_MARKER} at '{site}' (invocation {ordinal})"))
                }
                FaultKind::Nan => return Ok(true),
                // Durable-write kinds are only meaningful at write sites
                // (checked via `inject_write`); elsewhere they no-op so a
                // plan written for a write site cannot corrupt others.
                FaultKind::ShortWrite | FaultKind::TornRecord | FaultKind::Crash => {}
            }
        }
        Ok(false)
    }

    /// The injection point for durable-write sites (journal appends,
    /// checkpoint finalizes). Behaves like [`FaultPlan::inject`] for
    /// `panic`/`delay`/`transient` faults, and additionally surfaces the
    /// durable-write kinds: `Ok(Some(fault))` asks the caller to damage
    /// its write as described by the returned [`WriteFault`]. `Nan` is
    /// ignored here. Returns `Ok(None)` when nothing fires.
    ///
    /// # Errors
    ///
    /// Returns the injected transient error.
    ///
    /// # Panics
    ///
    /// Panics when a `Panic` fault fires (by design).
    pub fn inject_write(&self, site: &str) -> Result<Option<WriteFault>, String> {
        if self.specs.is_empty() {
            return Ok(None);
        }
        let ordinal = {
            let mut counters = self.counters.lock();
            let c = counters.entry(site.to_string()).or_insert(0);
            *c += 1;
            *c
        };
        for spec in self.specs.iter().filter(|s| s.site == site) {
            if !spec.fires(ordinal, self.seed) {
                continue;
            }
            match spec.kind {
                FaultKind::Panic => {
                    panic!("fault injected: panic at '{site}' (invocation {ordinal})")
                }
                FaultKind::Delay(d) => std::thread::sleep(d),
                FaultKind::Transient => {
                    return Err(format!("{TRANSIENT_MARKER} at '{site}' (invocation {ordinal})"))
                }
                FaultKind::Nan => {}
                FaultKind::ShortWrite => return Ok(Some(WriteFault::ShortWrite)),
                FaultKind::TornRecord => return Ok(Some(WriteFault::TornRecord)),
                FaultKind::Crash => return Ok(Some(WriteFault::Crash)),
            }
        }
        Ok(None)
    }

    /// [`FaultPlan::inject`] adapted to `io::Result` call sites: transient
    /// faults surface as [`std::io::ErrorKind::Interrupted`] (the kind the
    /// error classifier treats as retryable).
    ///
    /// # Errors
    ///
    /// Returns the injected transient error as an I/O error.
    ///
    /// # Panics
    ///
    /// Panics when a `Panic` fault fires (by design).
    pub fn inject_io(&self, site: &str) -> std::io::Result<bool> {
        self.inject(site).map_err(|e| std::io::Error::new(std::io::ErrorKind::Interrupted, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires_and_counts_nothing() {
        let plan = FaultPlan::disabled();
        for _ in 0..10 {
            assert_eq!(plan.inject(sites::SYNTHESIS), Ok(false));
        }
        assert!(!plan.is_enabled());
        assert_eq!(plan.invocations(sites::SYNTHESIS), 0, "disabled plan skips counting");
    }

    #[test]
    fn ordinal_trigger_fires_exactly_on_listed_invocations() {
        let plan = FaultPlan::parse("synthesis=transient@1,3", 0).unwrap();
        assert!(plan.inject(sites::SYNTHESIS).is_err());
        assert_eq!(plan.inject(sites::SYNTHESIS), Ok(false));
        assert!(plan.inject(sites::SYNTHESIS).is_err());
        assert_eq!(plan.inject(sites::SYNTHESIS), Ok(false));
        // Other sites are untouched.
        assert_eq!(plan.inject(sites::HYDRATE), Ok(false));
    }

    #[test]
    fn range_and_nan_and_delay_parse() {
        let plan = FaultPlan::parse("batch_forward=nan@2-3; hydrate=delay5@1", 0).unwrap();
        assert_eq!(plan.inject(sites::BATCH_FORWARD), Ok(false));
        assert_eq!(plan.inject(sites::BATCH_FORWARD), Ok(true));
        assert_eq!(plan.inject(sites::BATCH_FORWARD), Ok(true));
        assert_eq!(plan.inject(sites::BATCH_FORWARD), Ok(false));
        let t = std::time::Instant::now();
        assert_eq!(plan.inject(sites::HYDRATE), Ok(false), "delay continues normally");
        assert!(t.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn probabilistic_trigger_is_deterministic_for_a_seed() {
        let a = FaultPlan::parse("shard_read=transient@p0.5", 42).unwrap();
        let b = FaultPlan::parse("shard_read=transient@p0.5", 42).unwrap();
        let seq_a: Vec<bool> = (0..64).map(|_| a.inject(sites::SHARD_READ).is_err()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.inject(sites::SHARD_READ).is_err()).collect();
        assert_eq!(seq_a, seq_b);
        let fired = seq_a.iter().filter(|f| **f).count();
        assert!(fired > 8 && fired < 56, "p=0.5 over 64 draws fired {fired} times");
    }

    #[test]
    fn panic_fault_panics_at_the_site() {
        let plan = FaultPlan::parse("synthesis=panic@1", 0).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = plan.inject(sites::SYNTHESIS);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("fault injected"), "{msg}");
    }

    #[test]
    fn write_faults_fire_only_through_inject_write() {
        let plan = FaultPlan::parse(
            "journal_write=crash@2; checkpoint_write=torn_record@1; shard_read=short_write",
            0,
        )
        .unwrap();
        // inject() treats durable-write kinds as no-ops (but still counts).
        assert_eq!(plan.inject(sites::SHARD_READ), Ok(false));
        assert_eq!(plan.invocations(sites::SHARD_READ), 1);
        // inject_write() surfaces them with their trigger semantics.
        assert_eq!(plan.inject_write(sites::JOURNAL_WRITE), Ok(None));
        assert_eq!(plan.inject_write(sites::JOURNAL_WRITE), Ok(Some(WriteFault::Crash)));
        assert_eq!(plan.inject_write(sites::JOURNAL_WRITE), Ok(None));
        assert_eq!(plan.inject_write(sites::CHECKPOINT_WRITE), Ok(Some(WriteFault::TornRecord)));
        assert_eq!(plan.inject_write(sites::CHECKPOINT_WRITE), Ok(None));
        assert_eq!(plan.inject_write(sites::SHARD_READ), Ok(Some(WriteFault::ShortWrite)));
    }

    #[test]
    fn inject_write_shares_transient_and_counter_semantics_with_inject() {
        let plan = FaultPlan::parse("journal_write=transient@2", 0).unwrap();
        assert_eq!(plan.inject_write(sites::JOURNAL_WRITE), Ok(None));
        assert!(plan.inject_write(sites::JOURNAL_WRITE).is_err());
        assert_eq!(plan.invocations(sites::JOURNAL_WRITE), 2);
        let disabled = FaultPlan::disabled();
        assert_eq!(disabled.inject_write(sites::JOURNAL_WRITE), Ok(None));
        assert_eq!(disabled.invocations(sites::JOURNAL_WRITE), 0);
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in ["synthesis", "x=warp", "x=transient@p2.0", "x=delayzz", "x=transient@one"] {
            let err = FaultPlan::parse(bad, 0).unwrap_err();
            assert!(!err.is_empty(), "{bad}");
        }
        assert!(FaultPlan::parse("", 0).unwrap().specs.is_empty());
    }
}
