//! Window-batched surrogate inference server.
//!
//! One dedicated thread owns a hydrated network and answers height
//! predictions for window samples sent by any number of concurrent jobs.
//! Requests that arrive within a short linger window are coalesced into a
//! single multi-sample UNet forward (`[B, C, H, W]`), cutting per-forward
//! dispatch overhead while staying bit-identical per sample (see
//! `neurfill_nn::batch`). Samples are plain `NdArray`s, so they cross
//! threads even though the autograd graphs cannot.

use crate::registry::ModelBundle;
use crate::stats::StatsInner;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use neurfill_tensor::NdArray;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching policy of the inference server.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Hard cap on samples per multi-sample forward.
    pub max_batch: usize,
    /// How long the server waits for more requests after the first one
    /// before running the forward. Zero disables coalescing across
    /// submission boundaries (same-submission samples still batch).
    pub linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 16, linger: Duration::from_millis(2) }
    }
}

struct InferRequest {
    sample: NdArray,
    reply: Sender<Result<Vec<f64>, String>>,
}

/// Cloneable handle submitting samples to the server.
#[derive(Debug, Clone)]
pub struct BatchClient {
    tx: Sender<InferRequest>,
}

impl BatchClient {
    /// Predicts denormalized heights (nm) for every rank-3
    /// `[C, rows, cols]` window sample, in order. All samples are enqueued
    /// before any reply is awaited, so a multi-layer prediction forms one
    /// batch even with no concurrent jobs.
    ///
    /// # Errors
    ///
    /// Returns the forward error for the sample's batch, or a message when
    /// the server is gone.
    pub fn predict_heights(&self, samples: &[NdArray]) -> Result<Vec<Vec<f64>>, String> {
        let mut replies = Vec::with_capacity(samples.len());
        for sample in samples {
            let (reply, rx) = bounded(1);
            self.tx
                .send(InferRequest { sample: sample.clone(), reply })
                .map_err(|_| "batch inference server is shut down".to_string())?;
            replies.push(rx);
        }
        replies
            .into_iter()
            .map(|rx| rx.recv().map_err(|_| "batch inference server dropped a request".to_string())?)
            .collect()
    }
}

/// The server thread. Exits when every [`BatchClient`] is dropped.
#[derive(Debug)]
pub struct BatchServer {
    handle: JoinHandle<()>,
}

impl BatchServer {
    /// Hydrates a network from `bundle` on a new thread and starts serving.
    /// Returns once the network is ready.
    ///
    /// # Errors
    ///
    /// Propagates the hydration error.
    pub fn spawn(bundle: Arc<ModelBundle>, config: BatchConfig) -> std::io::Result<(Self, BatchClient)> {
        Self::spawn_with_stats(bundle, config, Arc::new(StatsInner::default()))
    }

    /// [`BatchServer::spawn`] recording into the pool's shared counters.
    pub(crate) fn spawn_with_stats(
        bundle: Arc<ModelBundle>,
        config: BatchConfig,
        stats: Arc<StatsInner>,
    ) -> std::io::Result<(Self, BatchClient)> {
        let (tx, rx) = unbounded::<InferRequest>();
        let (ready_tx, ready_rx) = bounded::<std::io::Result<()>>(1);
        let handle = std::thread::Builder::new()
            .name("neurfill-batch".into())
            .spawn(move || {
                let start = Instant::now();
                let network = match bundle.hydrate() {
                    Ok(n) => n,
                    Err(e) => {
                        let _ = ready_tx.send(Err(e));
                        return;
                    }
                };
                stats.hydrations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                StatsInner::add_duration(&stats.hydrate_nanos, start.elapsed());
                let _ = ready_tx.send(Ok(()));
                serve(&network, &rx, &config, &stats);
            })
            .expect("spawn batch server thread");
        ready_rx
            .recv()
            .map_err(|_| std::io::Error::other("batch server died before becoming ready"))??;
        Ok((Self { handle }, BatchClient { tx }))
    }

    /// Waits for the server thread to exit (drop every client first).
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

fn serve(
    network: &neurfill::CmpNeuralNetwork,
    rx: &Receiver<InferRequest>,
    config: &BatchConfig,
    stats: &StatsInner,
) {
    let max_batch = config.max_batch.max(1);
    while let Ok(first) = rx.recv() {
        let mut pending = vec![first];
        let deadline = Instant::now() + config.linger;
        while pending.len() < max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Linger expired: only drain what is already queued.
                match rx.try_recv() {
                    Ok(req) => pending.push(req),
                    Err(_) => break,
                }
            } else {
                match rx.recv_timeout(left) {
                    Ok(req) => pending.push(req),
                    Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        run_batch(network, pending, stats);
    }
}

/// Forwards one coalesced batch, grouping by sample shape (jobs over
/// different layout geometries share the server).
fn run_batch(network: &neurfill::CmpNeuralNetwork, pending: Vec<InferRequest>, stats: &StatsInner) {
    let mut groups: Vec<(Vec<usize>, Vec<InferRequest>)> = Vec::new();
    for req in pending {
        let shape = req.sample.shape().to_vec();
        match groups.iter_mut().find(|(s, _)| *s == shape) {
            Some((_, g)) => g.push(req),
            None => groups.push((shape, vec![req])),
        }
    }
    for (_, group) in groups {
        let samples: Vec<NdArray> = group.iter().map(|r| r.sample.clone()).collect();
        stats.batches_formed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        stats.samples_inferred.fetch_add(samples.len() as u64, std::sync::atomic::Ordering::Relaxed);
        match network.predict_heights_batch(&samples) {
            Ok(heights) => {
                for (req, h) in group.into_iter().zip(heights) {
                    let _ = req.reply.send(Ok(h));
                }
            }
            Err(e) => {
                for req in group {
                    let _ = req.reply.send(Err(format!("batched forward failed: {e}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_network;

    fn server(linger: Duration) -> (BatchServer, BatchClient, Arc<StatsInner>) {
        let bundle = Arc::new(ModelBundle::from_network(&tiny_network(1)).unwrap());
        let stats = Arc::new(StatsInner::default());
        let (server, client) = BatchServer::spawn_with_stats(
            bundle,
            BatchConfig { max_batch: 8, linger },
            Arc::clone(&stats),
        )
        .unwrap();
        (server, client, stats)
    }

    #[test]
    fn multi_sample_submission_forms_one_batch() {
        let (server, client, stats) = server(Duration::from_millis(5));
        let net = tiny_network(1);
        let layout = crate::test_util::tiny_layout(3);
        let samples: Vec<NdArray> =
            (0..3).map(|l| net.extract_window_sample(&layout, l).unwrap()).collect();
        let batched = client.predict_heights(&samples).unwrap();
        for (l, h) in batched.iter().enumerate() {
            assert_eq!(h, &net.predict_layer_heights(&layout, l).unwrap());
        }
        drop(client);
        server.join();
        let snap = stats.snapshot();
        assert_eq!(snap.samples_inferred, 3);
        assert!(snap.mean_batch_occupancy > 1.0, "occupancy {}", snap.mean_batch_occupancy);
    }

    #[test]
    fn mixed_shapes_are_answered_separately_but_correctly() {
        let (server, client, _) = server(Duration::from_millis(5));
        let net = tiny_network(1);
        let (small, large) = (crate::test_util::tiny_layout(1), crate::test_util::large_layout(1));
        let samples = vec![
            net.extract_window_sample(&small, 0).unwrap(),
            net.extract_window_sample(&large, 0).unwrap(),
        ];
        let heights = client.predict_heights(&samples).unwrap();
        assert_eq!(heights[0], net.predict_layer_heights(&small, 0).unwrap());
        assert_eq!(heights[1], net.predict_layer_heights(&large, 0).unwrap());
        drop(client);
        server.join();
    }

    #[test]
    fn server_survives_bad_samples() {
        let (server, client, _) = server(Duration::ZERO);
        let bad = NdArray::zeros(&[2, 2]);
        assert!(client.predict_heights(std::slice::from_ref(&bad)).is_err());
        // Still serving afterwards.
        let net = tiny_network(1);
        let layout = crate::test_util::tiny_layout(1);
        let sample = net.extract_window_sample(&layout, 0).unwrap();
        assert!(client.predict_heights(std::slice::from_ref(&sample)).is_ok());
        drop(client);
        server.join();
    }
}
