//! Window-batched surrogate inference server, plus its supervisor.
//!
//! One dedicated thread owns a hydrated network and answers height
//! predictions for window samples sent by any number of concurrent jobs.
//! Requests that arrive within a short linger window are coalesced into a
//! single multi-sample UNet forward (`[B, C, H, W]`), cutting per-forward
//! dispatch overhead while staying bit-identical per sample (see
//! `neurfill_nn::batch`). Samples are plain `NdArray`s, so they cross
//! threads even though the autograd graphs cannot.
//!
//! The server thread is a single point of failure for every in-flight
//! verification, so it runs under a [`BatchSupervisor`]: when the thread
//! dies (panic, poisoned forward), in-flight requests fail with
//! [`InferError::Disconnected`], the supervisor restarts the server up to
//! a budget, and once the budget is exhausted the circuit opens — callers
//! are told to stop using batched inference and fall back to their own
//! per-worker forward (same weights, so results stay bit-identical).

use crate::error::InferError;
use crate::fault::{sites, FaultPlan};
use crate::registry::ModelBundle;
use crate::stats::StatsInner;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use neurfill_tensor::NdArray;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching policy of the inference server.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Hard cap on samples per multi-sample forward.
    pub max_batch: usize,
    /// How long the server waits for more requests after the first one
    /// before running the forward. Zero disables coalescing across
    /// submission boundaries (same-submission samples still batch).
    pub linger: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 16, linger: Duration::from_millis(2) }
    }
}

struct InferRequest {
    sample: NdArray,
    reply: Sender<Result<Vec<f64>, String>>,
}

/// Cloneable handle submitting samples to the server.
#[derive(Debug, Clone)]
pub struct BatchClient {
    tx: Sender<InferRequest>,
}

impl BatchClient {
    /// Predicts denormalized heights (nm) for every rank-3
    /// `[C, rows, cols]` window sample, in order. All samples are enqueued
    /// before any reply is awaited, so a multi-layer prediction forms one
    /// batch even with no concurrent jobs.
    ///
    /// # Errors
    ///
    /// [`InferError::Forward`] when the batch's forward failed (the server
    /// is still alive); [`InferError::Disconnected`] when the server
    /// thread is gone — shut down, or died mid-request and dropped the
    /// reply channel.
    pub fn predict_heights(&self, samples: &[NdArray]) -> Result<Vec<Vec<f64>>, InferError> {
        let mut replies = Vec::with_capacity(samples.len());
        for sample in samples {
            let (reply, rx) = bounded(1);
            self.tx.send(InferRequest { sample: sample.clone(), reply }).map_err(|_| {
                InferError::Disconnected("batch inference server is shut down".to_string())
            })?;
            replies.push(rx);
        }
        replies
            .into_iter()
            .map(|rx| {
                rx.recv()
                    .map_err(|_| {
                        InferError::Disconnected("batch inference server dropped a request".to_string())
                    })?
                    .map_err(InferError::Forward)
            })
            .collect()
    }
}

/// The server thread. Exits when every [`BatchClient`] is dropped.
#[derive(Debug)]
pub struct BatchServer {
    handle: JoinHandle<()>,
}

impl BatchServer {
    /// Hydrates a network from `bundle` on a new thread and starts serving.
    /// Returns once the network is ready.
    ///
    /// # Errors
    ///
    /// Propagates the hydration error.
    pub fn spawn(bundle: Arc<ModelBundle>, config: BatchConfig) -> std::io::Result<(Self, BatchClient)> {
        Self::spawn_with(
            bundle,
            config,
            Arc::new(StatsInner::default()),
            Arc::new(FaultPlan::disabled()),
        )
    }

    /// [`BatchServer::spawn`] recording into shared counters and checking
    /// the fault plan's `hydrate` / `batch_forward` sites.
    pub(crate) fn spawn_with(
        bundle: Arc<ModelBundle>,
        config: BatchConfig,
        stats: Arc<StatsInner>,
        fault: Arc<FaultPlan>,
    ) -> std::io::Result<(Self, BatchClient)> {
        let (tx, rx) = unbounded::<InferRequest>();
        let (ready_tx, ready_rx) = bounded::<std::io::Result<()>>(1);
        let handle = std::thread::Builder::new()
            .name("neurfill-batch".into())
            .spawn(move || {
                let start = Instant::now();
                let network = match fault.inject_io(sites::HYDRATE).and(bundle.hydrate()) {
                    Ok(n) => n,
                    Err(e) => {
                        let _ = ready_tx.send(Err(e));
                        return;
                    }
                };
                stats.hydrations.inc();
                stats.hydrate_nanos.add_duration(start.elapsed());
                let _ = ready_tx.send(Ok(()));
                serve(&network, &rx, &config, &stats, &fault);
            })
            .map_err(std::io::Error::other)?;
        ready_rx
            .recv()
            .map_err(|_| std::io::Error::other("batch server died before becoming ready"))??;
        Ok((Self { handle }, BatchClient { tx }))
    }

    /// Whether the server thread has exited (normally or by panic). A
    /// `true` here with clients still alive means the thread died.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Waits for the server thread to exit (drop every client first).
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

fn serve(
    network: &neurfill::CmpNeuralNetwork,
    rx: &Receiver<InferRequest>,
    config: &BatchConfig,
    stats: &StatsInner,
    fault: &FaultPlan,
) {
    let max_batch = config.max_batch.max(1);
    while let Ok(first) = rx.recv() {
        let mut pending = vec![first];
        let deadline = Instant::now() + config.linger;
        while pending.len() < max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Linger expired: only drain what is already queued.
                match rx.try_recv() {
                    Ok(req) => pending.push(req),
                    Err(_) => break,
                }
            } else {
                match rx.recv_timeout(left) {
                    Ok(req) => pending.push(req),
                    Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        run_batch(network, pending, stats, fault);
    }
}

/// Forwards one coalesced batch, grouping by sample shape (jobs over
/// different layout geometries share the server).
fn run_batch(
    network: &neurfill::CmpNeuralNetwork,
    pending: Vec<InferRequest>,
    stats: &StatsInner,
    fault: &FaultPlan,
) {
    let mut groups: Vec<(Vec<usize>, Vec<InferRequest>)> = Vec::new();
    for req in pending {
        let shape = req.sample.shape().to_vec();
        match groups.iter_mut().find(|(s, _)| *s == shape) {
            Some((_, g)) => g.push(req),
            None => groups.push((shape, vec![req])),
        }
    }
    for (_, group) in groups {
        // Fault site `batch_forward`: a panic here kills the server thread
        // (reply channels drop → clients see Disconnected → supervisor
        // restarts); a transient fails this batch only; NaN poisons the
        // heights so the callers' numeric health guard trips.
        let poison = match fault.inject(sites::BATCH_FORWARD) {
            Ok(poison) => poison,
            Err(e) => {
                for req in group {
                    let _ = req.reply.send(Err(e.clone()));
                }
                continue;
            }
        };
        let samples: Vec<NdArray> = group.iter().map(|r| r.sample.clone()).collect();
        stats.batches_formed.inc();
        stats.samples_inferred.add(samples.len() as u64);
        stats.batch_occupancy.record(samples.len() as u64);
        let forward_start = stats.events.is_enabled().then(Instant::now);
        match network.predict_heights_batch(&samples) {
            Ok(heights) => {
                for (req, mut h) in group.into_iter().zip(heights) {
                    if poison {
                        h.fill(f64::NAN);
                    }
                    let _ = req.reply.send(Ok(h));
                }
            }
            Err(e) => {
                for req in group {
                    let _ = req.reply.send(Err(format!("batched forward failed: {e}")));
                }
            }
        }
        if let Some(t0) = forward_start {
            stats.batch_forward.record_duration(t0.elapsed());
        }
    }
}

struct SupervisedState {
    server: Option<BatchServer>,
    client: Option<BatchClient>,
    /// Bumped on every successful restart; a caller reporting a
    /// disconnect observed under an older generation is told to retry
    /// with the current client instead of triggering a second restart.
    generation: u64,
    restarts_used: u32,
    circuit_open: bool,
}

/// Supervises the batch server thread: restarts it when it dies, up to a
/// budget, then opens the circuit so callers stop routing inference
/// through batching and use their own network instead.
pub struct BatchSupervisor {
    bundle: Arc<ModelBundle>,
    config: BatchConfig,
    stats: Arc<StatsInner>,
    fault: Arc<FaultPlan>,
    restart_budget: u32,
    state: Mutex<SupervisedState>,
}

impl std::fmt::Debug for BatchSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "BatchSupervisor(gen {}, {}/{} restarts, circuit {})",
            st.generation,
            st.restarts_used,
            self.restart_budget,
            if st.circuit_open { "open" } else { "closed" }
        )
    }
}

impl BatchSupervisor {
    /// Spawns the initial server; `restart_budget` is how many times a
    /// dead server will be replaced before the circuit opens.
    ///
    /// # Errors
    ///
    /// Propagates the initial spawn/hydration error (construction is not
    /// supervised — a bundle that cannot hydrate at all is a fatal
    /// configuration problem, not a runtime fault).
    pub fn spawn(
        bundle: Arc<ModelBundle>,
        config: BatchConfig,
        restart_budget: u32,
    ) -> std::io::Result<Self> {
        Self::spawn_with(
            bundle,
            config,
            restart_budget,
            Arc::new(StatsInner::default()),
            Arc::new(FaultPlan::disabled()),
        )
    }

    pub(crate) fn spawn_with(
        bundle: Arc<ModelBundle>,
        config: BatchConfig,
        restart_budget: u32,
        stats: Arc<StatsInner>,
        fault: Arc<FaultPlan>,
    ) -> std::io::Result<Self> {
        let (server, client) = BatchServer::spawn_with(
            Arc::clone(&bundle),
            config.clone(),
            Arc::clone(&stats),
            Arc::clone(&fault),
        )?;
        Ok(Self {
            bundle,
            config,
            stats,
            fault,
            restart_budget,
            state: Mutex::new(SupervisedState {
                server: Some(server),
                client: Some(client),
                generation: 0,
                restarts_used: 0,
                circuit_open: false,
            }),
        })
    }

    /// Whether the restart budget is exhausted and batched inference is
    /// off — callers should run their own forward instead.
    #[must_use]
    pub fn circuit_open(&self) -> bool {
        self.state.lock().circuit_open
    }

    /// Restarts consumed so far.
    #[must_use]
    pub fn restarts_used(&self) -> u32 {
        self.state.lock().restarts_used
    }

    /// [`BatchClient::predict_heights`] through the supervised server:
    /// a disconnect triggers a restart (budget permitting) and one
    /// transparent retry per new server generation.
    ///
    /// # Errors
    ///
    /// [`InferError::Forward`] when the forward failed on a live server;
    /// [`InferError::Disconnected`] when the circuit is open (or the
    /// supervisor is shut down) — the caller should fall back to local
    /// inference.
    pub fn predict_heights(&self, samples: &[NdArray]) -> Result<Vec<Vec<f64>>, InferError> {
        loop {
            let (client, generation) = {
                let st = self.state.lock();
                if st.circuit_open {
                    return Err(InferError::Disconnected("batch inference circuit is open".to_string()));
                }
                match &st.client {
                    Some(c) => (c.clone(), st.generation),
                    None => {
                        return Err(InferError::Disconnected(
                            "batch supervisor is shut down".to_string(),
                        ))
                    }
                }
            };
            match client.predict_heights(samples) {
                Ok(heights) => return Ok(heights),
                Err(InferError::Disconnected(cause)) => {
                    if !self.handle_disconnect(generation) {
                        return Err(InferError::Disconnected(cause));
                    }
                }
                Err(forward) => return Err(forward),
            }
        }
    }

    /// Reacts to a disconnect observed under `generation`. Returns whether
    /// the caller should retry with the (possibly new) current client.
    fn handle_disconnect(&self, generation: u64) -> bool {
        let mut st = self.state.lock();
        if st.circuit_open || st.client.is_none() {
            return false;
        }
        if st.generation != generation {
            // Another caller already replaced the dead server.
            return true;
        }
        // Reap the dead thread before replacing it.
        drop(st.client.take());
        if let Some(server) = st.server.take() {
            server.join();
        }
        while st.restarts_used < self.restart_budget {
            st.restarts_used += 1;
            match BatchServer::spawn_with(
                Arc::clone(&self.bundle),
                self.config.clone(),
                Arc::clone(&self.stats),
                Arc::clone(&self.fault),
            ) {
                Ok((server, client)) => {
                    st.server = Some(server);
                    st.client = Some(client);
                    st.generation += 1;
                    self.stats.server_restarts.inc();
                    self.stats.events.event(
                        "fault",
                        "server_restart",
                        &[
                            ("generation", st.generation.to_string()),
                            ("restarts_used", st.restarts_used.to_string()),
                        ],
                    );
                    return true;
                }
                Err(_) => continue,
            }
        }
        st.circuit_open = true;
        self.stats.circuit_opened.inc();
        self.stats.events.event(
            "fault",
            "circuit_open",
            &[("restarts_used", st.restarts_used.to_string())],
        );
        false
    }

    /// Drops the client handle and joins the server thread. Further
    /// [`BatchSupervisor::predict_heights`] calls fail cleanly.
    pub fn shutdown(&self) {
        let (client, server) = {
            let mut st = self.state.lock();
            (st.client.take(), st.server.take())
        };
        drop(client);
        if let Some(server) = server {
            server.join();
        }
    }
}

impl Drop for BatchSupervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_network;

    fn server(linger: Duration) -> (BatchServer, BatchClient, Arc<StatsInner>) {
        let bundle = Arc::new(ModelBundle::from_network(&tiny_network(1)).unwrap());
        let stats = Arc::new(StatsInner::default());
        let (server, client) = BatchServer::spawn_with(
            bundle,
            BatchConfig { max_batch: 8, linger },
            Arc::clone(&stats),
            Arc::new(FaultPlan::disabled()),
        )
        .unwrap();
        (server, client, stats)
    }

    #[test]
    fn multi_sample_submission_forms_one_batch() {
        let (server, client, stats) = server(Duration::from_millis(5));
        let net = tiny_network(1);
        let layout = crate::test_util::tiny_layout(3);
        let samples: Vec<NdArray> =
            (0..3).map(|l| net.extract_window_sample(&layout, l).unwrap()).collect();
        let batched = client.predict_heights(&samples).unwrap();
        for (l, h) in batched.iter().enumerate() {
            assert_eq!(h, &net.predict_layer_heights(&layout, l).unwrap());
        }
        drop(client);
        server.join();
        let snap = stats.snapshot();
        assert_eq!(snap.samples_inferred, 3);
        assert!(snap.mean_batch_occupancy > 1.0, "occupancy {}", snap.mean_batch_occupancy);
    }

    #[test]
    fn mixed_shapes_are_answered_separately_but_correctly() {
        let (server, client, _) = server(Duration::from_millis(5));
        let net = tiny_network(1);
        let (small, large) = (crate::test_util::tiny_layout(1), crate::test_util::large_layout(1));
        let samples = vec![
            net.extract_window_sample(&small, 0).unwrap(),
            net.extract_window_sample(&large, 0).unwrap(),
        ];
        let heights = client.predict_heights(&samples).unwrap();
        assert_eq!(heights[0], net.predict_layer_heights(&small, 0).unwrap());
        assert_eq!(heights[1], net.predict_layer_heights(&large, 0).unwrap());
        drop(client);
        server.join();
    }

    #[test]
    fn server_survives_bad_samples() {
        let (server, client, _) = server(Duration::ZERO);
        let bad = NdArray::zeros(&[2, 2]);
        let err = client.predict_heights(std::slice::from_ref(&bad)).unwrap_err();
        assert!(matches!(err, InferError::Forward(_)), "{err}");
        // Still serving afterwards.
        let net = tiny_network(1);
        let layout = crate::test_util::tiny_layout(1);
        let sample = net.extract_window_sample(&layout, 0).unwrap();
        assert!(client.predict_heights(std::slice::from_ref(&sample)).is_ok());
        drop(client);
        server.join();
    }

    #[test]
    fn supervisor_restarts_a_killed_server_transparently() {
        let bundle = Arc::new(ModelBundle::from_network(&tiny_network(1)).unwrap());
        let stats = Arc::new(StatsInner::default());
        let fault = Arc::new(FaultPlan::parse("batch_forward=panic@1", 0).unwrap());
        let sup = BatchSupervisor::spawn_with(
            bundle,
            BatchConfig { max_batch: 8, linger: Duration::ZERO },
            2,
            Arc::clone(&stats),
            fault,
        )
        .unwrap();
        let net = tiny_network(1);
        let layout = crate::test_util::tiny_layout(1);
        let sample = net.extract_window_sample(&layout, 0).unwrap();
        // First call kills the server (injected panic); the supervisor
        // restarts it and the retry succeeds on the new generation.
        let heights = sup.predict_heights(std::slice::from_ref(&sample)).unwrap();
        assert_eq!(heights[0], net.predict_layer_heights(&layout, 0).unwrap());
        assert_eq!(sup.restarts_used(), 1);
        assert!(!sup.circuit_open());
        assert_eq!(stats.server_restarts.get(), 1);
    }

    #[test]
    fn exhausted_restart_budget_opens_the_circuit() {
        let bundle = Arc::new(ModelBundle::from_network(&tiny_network(1)).unwrap());
        let stats = Arc::new(StatsInner::default());
        // Every batch forward panics, so each restart dies again on use.
        let fault = Arc::new(FaultPlan::parse("batch_forward=panic", 0).unwrap());
        let sup = BatchSupervisor::spawn_with(
            bundle,
            BatchConfig { max_batch: 8, linger: Duration::ZERO },
            2,
            Arc::clone(&stats),
            fault,
        )
        .unwrap();
        let net = tiny_network(1);
        let layout = crate::test_util::tiny_layout(1);
        let sample = net.extract_window_sample(&layout, 0).unwrap();
        let err = sup.predict_heights(std::slice::from_ref(&sample)).unwrap_err();
        assert!(matches!(err, InferError::Disconnected(_)), "{err}");
        assert!(sup.circuit_open());
        assert_eq!(sup.restarts_used(), 2, "budget fully consumed");
        assert_eq!(stats.circuit_opened.get(), 1);
        // Once open, calls fail fast without touching any server.
        let err = sup.predict_heights(std::slice::from_ref(&sample)).unwrap_err();
        assert!(err.message().contains("circuit"), "{err}");
    }
}
