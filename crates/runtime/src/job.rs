//! Job descriptions, statuses and per-job reports.

use neurfill::{PlanarityMetrics, ScoreBreakdown};
use neurfill_layout::{FillPlan, Layout};
use std::time::Duration;

/// Identifier of a submitted job, unique within a pool.
pub type JobId = u64;

/// One fill-synthesis job: a layout to fill under the pool's flow
/// configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display name (used in reports; typically the layout file stem).
    pub name: String,
    /// The layout to synthesize fill for.
    pub layout: Layout,
    /// Per-job deadline measured from submission; `None` falls back to the
    /// pool's default. A job past its deadline is failed — at dequeue
    /// without running, or by discarding its result on completion.
    pub timeout: Option<Duration>,
}

impl JobSpec {
    /// A job with the pool's default timeout.
    #[must_use]
    pub fn new(name: impl Into<String>, layout: Layout) -> Self {
        Self { name: name.into(), layout, timeout: None }
    }
}

/// Lifecycle of a job. Failures carry the error message — a failing job
/// never takes its worker or the pool down.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Accepted, not yet picked up by a worker.
    Queued,
    /// A worker is synthesizing.
    Running,
    /// A transient failure occurred; the worker is backing off before
    /// attempt `attempt + 1` (so `attempt: 1` means one retry underway).
    Retrying {
        /// The retry about to run (1-based).
        attempt: u32,
    },
    /// Finished; the report holds the results.
    Done(Box<JobReport>),
    /// Failed with an error (synthesis error, panic, cancellation or
    /// timeout) — see `neurfill_runtime::error::classify` for how the
    /// message maps back to a failure class.
    Failed(String),
}

impl JobStatus {
    /// Whether the job reached a terminal state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done(_) | JobStatus::Failed(_))
    }
}

/// Everything a completed job reports.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job display name.
    pub name: String,
    /// The synthesized (feasible) fill plan.
    pub plan: FillPlan,
    /// Surrogate objective value at the solution.
    pub objective_value: f64,
    /// Golden-simulator "Quality" score of the realized fill.
    pub quality: f64,
    /// Golden-simulator "Overall" score of the realized fill.
    pub overall: f64,
    /// Full per-metric score breakdown.
    pub breakdown: ScoreBreakdown,
    /// Surrogate-predicted planarity metrics of the filled layout,
    /// computed through the shared batch inference server.
    pub predicted: PlanarityMetrics,
    /// Wall-clock of the synthesis stage for this job.
    pub synthesis_runtime: Duration,
    /// Surrogate forward passes spent in synthesis.
    pub evaluations: usize,
    /// Why the job degraded, when it did: the surrogate's verification
    /// heights failed the numeric health guard and `predicted` was
    /// computed by the golden simulator instead. `None` on the normal
    /// (surrogate-verified) path.
    pub degraded: Option<String>,
    /// Tensor backend the pool ran this job's inference on.
    pub backend: neurfill_tensor::BackendKind,
}

impl JobReport {
    /// Renders the report as the text block `runfill` writes per job.
    /// A `degraded` line appears only when the job degraded, so reports
    /// from fault-free runs are byte-identical to earlier versions.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut text = format!(
            "job {}\nquality {:.6}\noverall {:.6}\nobjective {:.6}\n\
             fill_total_um2 {:.3}\npredicted_sigma {:.6}\npredicted_sigma_star {:.6}\n\
             synthesis_s {:.3}\nevaluations {}\n",
            self.name,
            self.quality,
            self.overall,
            self.objective_value,
            self.plan.total(),
            self.predicted.sigma,
            self.predicted.sigma_star,
            self.synthesis_runtime.as_secs_f64(),
            self.evaluations,
        );
        if let Some(reason) = &self.degraded {
            text.push_str(&format!("degraded {reason}\n"));
        }
        // Like `degraded`, the backend line appears only off the default
        // path, keeping f32 reports byte-identical to earlier versions.
        if self.backend.is_quant() {
            text.push_str(&format!("backend {}\n", self.backend));
        }
        text
    }
}
