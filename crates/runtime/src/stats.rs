//! Runtime counters, shared lock-free between workers, the batch server
//! and the caller.
//!
//! The counters are telemetry [`Counter`] handles registered under
//! `runtime.*` names. They always count — when the caller attached no
//! telemetry they live in a private registry — so [`RuntimeStats`] (and
//! the stats line every CLI prints) reads identically whether or not
//! telemetry export is on. Spans, events and latency histograms, by
//! contrast, go through the caller's own handle ([`StatsInner::events`])
//! and cost nothing when that handle is disabled.

use neurfill_obs::{Counter, Histogram, MetricsSnapshot, Telemetry};
use std::fmt;
use std::time::Duration;

/// Internal shared handles; snapshot through [`RuntimeStats`].
#[derive(Debug)]
pub(crate) struct StatsInner {
    /// The registry the `runtime.*` counters are registered in (always
    /// enabled; private unless the caller attached their own handle).
    registry: Telemetry,
    /// The caller's telemetry handle for spans, events and latency
    /// histograms — disabled (free) unless explicitly attached.
    pub events: Telemetry,
    pub jobs_submitted: Counter,
    pub jobs_completed: Counter,
    pub jobs_failed: Counter,
    pub jobs_degraded: Counter,
    pub retries: Counter,
    pub server_restarts: Counter,
    pub circuit_opened: Counter,
    pub fallback_batches: Counter,
    pub batches_formed: Counter,
    pub samples_inferred: Counter,
    pub hydrations: Counter,
    pub hydrate_nanos: Counter,
    pub synthesis_nanos: Counter,
    pub verify_nanos: Counter,
    pub queue_wait: Histogram,
    pub job_synthesis: Histogram,
    pub job_verify: Histogram,
    pub batch_occupancy: Histogram,
    pub batch_forward: Histogram,
}

impl StatsInner {
    /// Registers the runtime's counters. `telemetry` may be disabled: the
    /// counters then live in a private enabled registry (so stats always
    /// count) while histograms and events stay no-ops.
    pub fn new(telemetry: &Telemetry) -> Self {
        let registry = telemetry.or_enabled();
        Self {
            jobs_submitted: registry.counter("runtime.jobs_submitted"),
            jobs_completed: registry.counter("runtime.jobs_completed"),
            jobs_failed: registry.counter("runtime.jobs_failed"),
            jobs_degraded: registry.counter("runtime.jobs_degraded"),
            retries: registry.counter("runtime.retries"),
            server_restarts: registry.counter("runtime.server_restarts"),
            circuit_opened: registry.counter("runtime.circuit_opened"),
            fallback_batches: registry.counter("runtime.fallback_batches"),
            batches_formed: registry.counter("runtime.batches_formed"),
            samples_inferred: registry.counter("runtime.samples_inferred"),
            hydrations: registry.counter("runtime.hydrations"),
            hydrate_nanos: registry.counter("runtime.hydrate_ns"),
            synthesis_nanos: registry.counter("runtime.synthesis_ns"),
            verify_nanos: registry.counter("runtime.verify_ns"),
            queue_wait: telemetry.histogram("job.queue_wait_ns"),
            job_synthesis: telemetry.histogram("job.synthesis_ns"),
            job_verify: telemetry.histogram("job.verify_ns"),
            batch_occupancy: telemetry.histogram("batch.occupancy"),
            batch_forward: telemetry.histogram("batch.forward_ns"),
            events: telemetry.clone(),
            registry,
        }
    }

    /// Everything recorded in the registry the counters live in — the
    /// whole shared registry when the caller attached one (simulator,
    /// optimizer and flow metrics included), just the `runtime.*` counters
    /// otherwise.
    pub fn registry_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    pub fn snapshot(&self) -> RuntimeStats {
        let batches = self.batches_formed.get();
        let samples = self.samples_inferred.get();
        RuntimeStats {
            jobs_submitted: self.jobs_submitted.get(),
            jobs_completed: self.jobs_completed.get(),
            jobs_failed: self.jobs_failed.get(),
            jobs_degraded: self.jobs_degraded.get(),
            retries: self.retries.get(),
            server_restarts: self.server_restarts.get(),
            circuit_opened: self.circuit_opened.get(),
            fallback_batches: self.fallback_batches.get(),
            batches_formed: batches,
            samples_inferred: samples,
            mean_batch_occupancy: if batches == 0 { 0.0 } else { samples as f64 / batches as f64 },
            hydrations: self.hydrations.get(),
            hydrate: Duration::from_nanos(self.hydrate_nanos.get()),
            synthesis: Duration::from_nanos(self.synthesis_nanos.get()),
            verify: Duration::from_nanos(self.verify_nanos.get()),
        }
    }
}

impl Default for StatsInner {
    fn default() -> Self {
        Self::new(&Telemetry::disabled())
    }
}

/// A point-in-time snapshot of the runtime's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs that finished with a report.
    pub jobs_completed: u64,
    /// Jobs that failed (error, panic or timeout).
    pub jobs_failed: u64,
    /// Jobs that completed but fell back to golden-simulator verification
    /// because the surrogate heights failed the numeric health guard.
    pub jobs_degraded: u64,
    /// Job attempts re-run after a transient failure.
    pub retries: u64,
    /// Batch-server threads restarted after dying mid-serving.
    pub server_restarts: u64,
    /// Times the batch-inference circuit breaker opened (restart budget
    /// exhausted).
    pub circuit_opened: u64,
    /// Verification batches served by a worker's own network because the
    /// batch-inference circuit was open.
    pub fallback_batches: u64,
    /// Multi-sample forwards executed by the batch server.
    pub batches_formed: u64,
    /// Window samples served across all batches.
    pub samples_inferred: u64,
    /// `samples_inferred / batches_formed` — above 1.0 whenever the server
    /// coalesced forwards (within or across jobs).
    pub mean_batch_occupancy: f64,
    /// Networks hydrated from bundle bytes (once per worker + one for the
    /// batch server).
    pub hydrations: u64,
    /// Wall-clock spent hydrating networks (summed across threads).
    pub hydrate: Duration,
    /// Wall-clock spent in fill synthesis (summed across workers).
    pub synthesis: Duration,
    /// Wall-clock spent in batched surrogate verification (summed across
    /// workers, includes queueing at the batch server).
    pub verify: Duration,
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed, {} failed",
            self.jobs_submitted, self.jobs_completed, self.jobs_failed
        )?;
        writeln!(
            f,
            "inference: {} samples in {} batches (occupancy {:.2})",
            self.samples_inferred, self.batches_formed, self.mean_batch_occupancy
        )?;
        writeln!(
            f,
            "resilience: {} retries, {} degraded, {} server restarts, \
             {} circuit-opens, {} fallback batches",
            self.retries,
            self.jobs_degraded,
            self.server_restarts,
            self.circuit_opened,
            self.fallback_batches
        )?;
        write!(
            f,
            "stages: hydrate {:.3}s x{}, synthesis {:.3}s, verify {:.3}s",
            self.hydrate.as_secs_f64(),
            self.hydrations,
            self.synthesis.as_secs_f64(),
            self.verify.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_samples_per_batch() {
        let inner = StatsInner::default();
        inner.batches_formed.add(4);
        inner.samples_inferred.add(10);
        let snap = inner.snapshot();
        assert!((snap.mean_batch_occupancy - 2.5).abs() < 1e-12);
        assert_eq!(StatsInner::default().snapshot().mean_batch_occupancy, 0.0);
    }

    #[test]
    fn display_mentions_every_headline_number() {
        let inner = StatsInner::default();
        inner.jobs_submitted.add(7);
        inner.samples_inferred.add(21);
        inner.batches_formed.add(3);
        inner.retries.add(2);
        inner.jobs_degraded.add(1);
        let text = inner.snapshot().to_string();
        assert!(text.contains("7 submitted"));
        assert!(text.contains("occupancy 7.00"));
        assert!(text.contains("2 retries"));
        assert!(text.contains("1 degraded"));
    }

    #[test]
    fn counters_land_in_an_attached_registry_under_runtime_names() {
        let t = Telemetry::new();
        let inner = StatsInner::new(&t);
        inner.jobs_submitted.inc();
        inner.retries.add(3);
        let snap = t.snapshot();
        assert_eq!(snap.counter("runtime.jobs_submitted"), 1);
        assert_eq!(snap.counter("runtime.retries"), 3);
        // The registry snapshot is the same registry.
        assert_eq!(inner.registry_snapshot().counter("runtime.retries"), 3);
    }

    #[test]
    fn detached_stats_still_count_but_record_no_events() {
        let inner = StatsInner::default();
        inner.jobs_completed.add(2);
        assert_eq!(inner.snapshot().jobs_completed, 2);
        assert!(!inner.events.is_enabled());
        // The private registry still exposes the counters.
        assert_eq!(inner.registry_snapshot().counter("runtime.jobs_completed"), 2);
        assert!(inner.registry_snapshot().events.is_empty());
    }
}
