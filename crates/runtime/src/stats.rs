//! Runtime counters, shared lock-free between workers, the batch server
//! and the caller.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Internal atomic counters; snapshot through [`RuntimeStats`].
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub jobs_submitted: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub jobs_failed: AtomicU64,
    pub jobs_degraded: AtomicU64,
    pub retries: AtomicU64,
    pub server_restarts: AtomicU64,
    pub circuit_opened: AtomicU64,
    pub fallback_batches: AtomicU64,
    pub batches_formed: AtomicU64,
    pub samples_inferred: AtomicU64,
    pub hydrations: AtomicU64,
    pub hydrate_nanos: AtomicU64,
    pub synthesis_nanos: AtomicU64,
    pub verify_nanos: AtomicU64,
}

impl StatsInner {
    pub fn add_duration(field: &AtomicU64, d: Duration) {
        field.fetch_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> RuntimeStats {
        let batches = self.batches_formed.load(Ordering::Relaxed);
        let samples = self.samples_inferred.load(Ordering::Relaxed);
        RuntimeStats {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_degraded: self.jobs_degraded.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            server_restarts: self.server_restarts.load(Ordering::Relaxed),
            circuit_opened: self.circuit_opened.load(Ordering::Relaxed),
            fallback_batches: self.fallback_batches.load(Ordering::Relaxed),
            batches_formed: batches,
            samples_inferred: samples,
            mean_batch_occupancy: if batches == 0 { 0.0 } else { samples as f64 / batches as f64 },
            hydrations: self.hydrations.load(Ordering::Relaxed),
            hydrate: Duration::from_nanos(self.hydrate_nanos.load(Ordering::Relaxed)),
            synthesis: Duration::from_nanos(self.synthesis_nanos.load(Ordering::Relaxed)),
            verify: Duration::from_nanos(self.verify_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time snapshot of the runtime's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs that finished with a report.
    pub jobs_completed: u64,
    /// Jobs that failed (error, panic or timeout).
    pub jobs_failed: u64,
    /// Jobs that completed but fell back to golden-simulator verification
    /// because the surrogate heights failed the numeric health guard.
    pub jobs_degraded: u64,
    /// Job attempts re-run after a transient failure.
    pub retries: u64,
    /// Batch-server threads restarted after dying mid-serving.
    pub server_restarts: u64,
    /// Times the batch-inference circuit breaker opened (restart budget
    /// exhausted).
    pub circuit_opened: u64,
    /// Verification batches served by a worker's own network because the
    /// batch-inference circuit was open.
    pub fallback_batches: u64,
    /// Multi-sample forwards executed by the batch server.
    pub batches_formed: u64,
    /// Window samples served across all batches.
    pub samples_inferred: u64,
    /// `samples_inferred / batches_formed` — above 1.0 whenever the server
    /// coalesced forwards (within or across jobs).
    pub mean_batch_occupancy: f64,
    /// Networks hydrated from bundle bytes (once per worker + one for the
    /// batch server).
    pub hydrations: u64,
    /// Wall-clock spent hydrating networks (summed across threads).
    pub hydrate: Duration,
    /// Wall-clock spent in fill synthesis (summed across workers).
    pub synthesis: Duration,
    /// Wall-clock spent in batched surrogate verification (summed across
    /// workers, includes queueing at the batch server).
    pub verify: Duration,
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed, {} failed",
            self.jobs_submitted, self.jobs_completed, self.jobs_failed
        )?;
        writeln!(
            f,
            "inference: {} samples in {} batches (occupancy {:.2})",
            self.samples_inferred, self.batches_formed, self.mean_batch_occupancy
        )?;
        writeln!(
            f,
            "resilience: {} retries, {} degraded, {} server restarts, \
             {} circuit-opens, {} fallback batches",
            self.retries,
            self.jobs_degraded,
            self.server_restarts,
            self.circuit_opened,
            self.fallback_batches
        )?;
        write!(
            f,
            "stages: hydrate {:.3}s x{}, synthesis {:.3}s, verify {:.3}s",
            self.hydrate.as_secs_f64(),
            self.hydrations,
            self.synthesis.as_secs_f64(),
            self.verify.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_samples_per_batch() {
        let inner = StatsInner::default();
        inner.batches_formed.store(4, Ordering::Relaxed);
        inner.samples_inferred.store(10, Ordering::Relaxed);
        let snap = inner.snapshot();
        assert!((snap.mean_batch_occupancy - 2.5).abs() < 1e-12);
        assert_eq!(StatsInner::default().snapshot().mean_batch_occupancy, 0.0);
    }

    #[test]
    fn display_mentions_every_headline_number() {
        let inner = StatsInner::default();
        inner.jobs_submitted.store(7, Ordering::Relaxed);
        inner.samples_inferred.store(21, Ordering::Relaxed);
        inner.batches_formed.store(3, Ordering::Relaxed);
        inner.retries.store(2, Ordering::Relaxed);
        inner.jobs_degraded.store(1, Ordering::Relaxed);
        let text = inner.snapshot().to_string();
        assert!(text.contains("7 submitted"));
        assert!(text.contains("occupancy 7.00"));
        assert!(text.contains("2 retries"));
        assert!(text.contains("1 degraded"));
    }
}
