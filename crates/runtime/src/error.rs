//! Error classification and retry policy for the runtime.
//!
//! The lower crates report failures as `Result<_, String>`; rather than
//! rework every seam into a shared error enum, the runtime classifies
//! failures by the stable marker substrings those layers already embed:
//! [`neurfill::cancel::CANCELLED_MARKER`] and
//! [`neurfill::cancel::DEADLINE_MARKER`] from the cancellation seam,
//! `"transient"` from I/O-ish layers and the fault harness
//! ([`crate::fault::TRANSIENT_MARKER`]), and everything else is treated as
//! permanent. The classification drives exactly one decision: *is this
//! attempt worth retrying?*

use std::time::Duration;

/// How a failure should be handled by the worker's retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Likely to succeed on retry (I/O hiccup, dropped reply, injected
    /// transient fault).
    Transient,
    /// The job was cancelled or ran out of deadline — retrying is
    /// pointless and would only burn more budget.
    Cancelled,
    /// A real failure (bad geometry, panic, invalid model) that retrying
    /// will not fix.
    Fatal,
}

/// Classifies an error message by its stable markers.
#[must_use]
pub fn classify(message: &str) -> ErrorClass {
    let lower = message.to_ascii_lowercase();
    if lower.contains(neurfill::cancel::CANCELLED_MARKER)
        || lower.contains(neurfill::cancel::DEADLINE_MARKER)
        || lower.contains("timed out")
    {
        return ErrorClass::Cancelled;
    }
    if lower.contains("transient") {
        return ErrorClass::Transient;
    }
    ErrorClass::Fatal
}

/// A classified runtime failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Retry disposition.
    pub class: ErrorClass,
    /// Human-readable description (the original message).
    pub message: String,
}

impl RuntimeError {
    /// Classifies `message` and wraps it.
    #[must_use]
    pub fn from_message(message: impl Into<String>) -> Self {
        let message = message.into();
        Self { class: classify(&message), message }
    }

    /// Whether the retry loop should try again (budget permitting).
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        self.class == ErrorClass::Transient
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Failures of a batched inference request, structured so callers can
/// distinguish *the server died* (supervision territory) from *this
/// forward failed* (job territory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// The server thread is gone: it shut down, or died mid-request and
    /// dropped the reply channel. The supervisor should restart it.
    Disconnected(String),
    /// The forward itself failed; the server is still alive.
    Forward(String),
}

impl InferError {
    /// The underlying message.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            Self::Disconnected(m) | Self::Forward(m) => m,
        }
    }
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Disconnected(m) => write!(f, "batch server disconnected: {m}"),
            Self::Forward(m) => write!(f, "batch forward failed: {m}"),
        }
    }
}

/// Retry budget and backoff schedule for transient job failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = never retry).
    pub max_retries: u32,
    /// Backoff before retry 1; doubles each further retry.
    pub base_backoff: Duration,
    /// Ceiling on the per-retry backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 0,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` and the default backoff schedule.
    #[must_use]
    pub fn with_retries(max_retries: u32) -> Self {
        Self { max_retries, ..Self::default() }
    }

    /// Exponential backoff before the given retry `attempt` (1-based),
    /// clamped to [`RetryPolicy::max_backoff`].
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX);
        self.base_backoff.saturating_mul(factor).min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_route_to_the_right_class() {
        assert_eq!(classify("cancelled during synthesis"), ErrorClass::Cancelled);
        assert_eq!(classify("deadline exceeded during insertion"), ErrorClass::Cancelled);
        assert_eq!(classify("timed out in queue after 0ms"), ErrorClass::Cancelled);
        assert_eq!(classify("transient fault injected at 'synthesis'"), ErrorClass::Transient);
        assert_eq!(classify("Transient I/O error"), ErrorClass::Transient);
        assert_eq!(classify("layout rows mismatch"), ErrorClass::Fatal);
    }

    #[test]
    fn only_transient_errors_retry() {
        assert!(RuntimeError::from_message("transient hiccup").is_retryable());
        assert!(!RuntimeError::from_message("cancelled during x").is_retryable());
        assert!(!RuntimeError::from_message("bad geometry").is_retryable());
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20), "doubles");
        assert_eq!(p.backoff(3), Duration::from_millis(35), "clamped");
        assert_eq!(p.backoff(40), Duration::from_millis(35), "no overflow");
    }
}
