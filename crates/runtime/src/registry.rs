//! Model registry: shared, cached access to surrogate bundles.
//!
//! The tensor substrate is single-threaded (`Rc`-based autograd graphs), so
//! a hydrated [`CmpNeuralNetwork`] cannot cross threads. What CAN be shared
//! is the *serialized* bundle: the registry caches bundle bytes behind an
//! [`Arc`], and each worker thread hydrates its own network from them once
//! at startup — N jobs on a worker pay for one hydration, and every thread
//! is guaranteed to run bit-identical weights.

use neurfill::persist;
use neurfill::CmpNeuralNetwork;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A validated, serialized surrogate bundle (weights + normalization +
/// extraction config), shareable across threads.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    bytes: Vec<u8>,
    digest: u64,
}

impl ModelBundle {
    /// Wraps raw bundle bytes, validating them by a trial hydration so a
    /// corrupt bundle is rejected at registration instead of inside every
    /// worker thread.
    ///
    /// # Errors
    ///
    /// Returns the hydration error for malformed bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> io::Result<Self> {
        persist::load_network(bytes.as_slice())?;
        let digest = fnv1a(&bytes);
        Ok(Self { bytes, digest })
    }

    /// Serializes an in-memory network into a bundle.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors.
    pub fn from_network(network: &CmpNeuralNetwork) -> io::Result<Self> {
        let mut bytes = Vec::new();
        persist::save_network(network, &mut bytes)?;
        let digest = fnv1a(&bytes);
        Ok(Self { bytes, digest })
    }

    /// FNV-1a hash over the full bundle — weights *and* configuration
    /// lines — so two bundles with equal digests produce bit-identical
    /// predictions. Used as the cache identity alongside the path.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The serialized bundle.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Deserializes a fresh network instance for the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates format errors (none for bytes validated at
    /// construction).
    pub fn hydrate(&self) -> io::Result<CmpNeuralNetwork> {
        persist::load_network(self.bytes.as_slice())
    }
}

/// Path-keyed cache of [`ModelBundle`]s.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    cache: Mutex<HashMap<PathBuf, Arc<ModelBundle>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads (or returns the cached) bundle at `path`. The cache key is the
    /// canonicalized path; [`ModelBundle::digest`] identifies the cached
    /// content.
    ///
    /// # Errors
    ///
    /// Propagates file-system and bundle-format errors.
    pub fn load(&self, path: impl AsRef<Path>) -> io::Result<Arc<ModelBundle>> {
        let key = std::fs::canonicalize(path.as_ref())?;
        if let Some(bundle) = self.cache.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(bundle));
        }
        // Read + validate outside the lock; a racing load of the same path
        // does redundant work but both arrive at equivalent bundles.
        let bundle = Arc::new(ModelBundle::from_bytes(std::fs::read(&key)?)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::clone(self.cache.lock().entry(key).or_insert(bundle)))
    }

    /// Registers an in-memory bundle under a caller-chosen key (used by
    /// tests and by flows that train rather than load).
    pub fn insert(&self, key: impl Into<PathBuf>, bundle: Arc<ModelBundle>) {
        self.cache.lock().insert(key.into(), bundle);
    }

    /// Cache hits served so far.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (loads from disk) so far.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::tiny_network;

    #[test]
    fn bundle_roundtrips_through_bytes() {
        let net = tiny_network(3);
        let bundle = ModelBundle::from_network(&net).unwrap();
        let again = ModelBundle::from_bytes(bundle.bytes().to_vec()).unwrap();
        assert_eq!(bundle.digest(), again.digest());
        let hydrated = bundle.hydrate().unwrap();
        assert_eq!(
            neurfill_nn::Module::num_parameters(hydrated.unet()),
            neurfill_nn::Module::num_parameters(net.unet()),
        );
    }

    #[test]
    fn corrupt_bytes_are_rejected_at_registration() {
        assert!(ModelBundle::from_bytes(b"not a bundle".to_vec()).is_err());
    }

    #[test]
    fn registry_counts_hits_and_misses() {
        let dir = std::env::temp_dir().join("neurfill_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bundle");
        persist::save_to_file(&tiny_network(5), &path).unwrap();

        let reg = ModelRegistry::new();
        let a = reg.load(&path).unwrap();
        let b = reg.load(&path).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(reg.cache_misses(), 1);
        assert_eq!(reg.cache_hits(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
