//! Property-based tests of the layout substrate's invariants.

use neurfill_layout::insertion::{insert_dummies, InsertionRules};
use neurfill_layout::{apply_fill, slack_types, DesignKind, DesignSpec, DummySpec, FillPlan, Rect};
use proptest::prelude::*;

fn any_design() -> impl Strategy<Value = DesignKind> {
    prop_oneof![Just(DesignKind::CmpTest), Just(DesignKind::Fpga), Just(DesignKind::RiscV),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_designs_are_always_valid(kind in any_design(), seed in 0u64..1000) {
        let layout = DesignSpec::new(kind, 8, 8, seed).generate();
        prop_assert!(layout.is_valid());
        for id in layout.window_ids() {
            let w = layout.window(id);
            prop_assert!((0.0..=1.0).contains(&w.density));
            prop_assert!(w.slack >= 0.0);
        }
    }

    #[test]
    fn apply_fill_preserves_validity_for_any_feasible_plan(
        kind in any_design(),
        seed in 0u64..200,
        fracs in proptest::collection::vec(0.0f64..=1.0, 192),
    ) {
        let layout = DesignSpec::new(kind, 8, 8, seed).generate();
        let slack = layout.slack_vector();
        let mut plan = FillPlan::zeros(&layout);
        for ((x, s), f) in plan.as_mut_slice().iter_mut().zip(&slack).zip(&fracs) {
            *x = f * s;
        }
        prop_assert!(plan.is_feasible(&layout, 1e-9));
        let filled = apply_fill(&layout, &plan, &DummySpec::default());
        prop_assert!(filled.is_valid());
        // Density rises exactly by fill/area.
        let area = layout.window_area();
        for id in layout.window_ids() {
            let expect = layout.window(id).density + plan.amount_at(&layout, id) / area;
            prop_assert!((filled.window(id).density - expect.min(1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn slack_types_partition_for_any_window(kind in any_design(), seed in 0u64..200) {
        let layout = DesignSpec::new(kind, 6, 6, seed).generate();
        for id in layout.window_ids() {
            let st = slack_types(&layout, id);
            prop_assert!((st.total() - layout.window(id).slack).abs() < 1e-9);
            prop_assert!(st.areas.iter().all(|a| *a >= -1e-12));
        }
    }

    #[test]
    fn fill_by_priority_conserves_amount(
        areas in proptest::collection::vec(0.0f64..100.0, 4),
        request in 0.0f64..500.0,
    ) {
        let st = neurfill_layout::SlackTypes { areas: [areas[0], areas[1], areas[2], areas[3]] };
        let split = st.fill_by_priority(request);
        let placed: f64 = split.iter().sum();
        prop_assert!(placed <= request + 1e-9);
        prop_assert!(placed <= st.total() + 1e-9);
        prop_assert!((placed - request.min(st.total())).abs() < 1e-9);
        // Priority: a later type is used only when all earlier are full.
        for k in 1..4 {
            if split[k] > 0.0 {
                for (sj, aj) in split.iter().zip(&st.areas).take(k) {
                    prop_assert!((sj - aj).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn inserted_dummies_respect_rules(target in 0.0f64..4000.0, wire_x in 10.0f64..80.0) {
        let window = Rect::new(0.0, 0.0, 100.0, 100.0);
        let wires = vec![Rect::new(wire_x, 0.0, wire_x + 5.0, 100.0)];
        let rules = InsertionRules::default();
        let placed = insert_dummies(&window, &wires, target, &rules);
        let area: f64 = placed.iter().map(Rect::area).sum();
        prop_assert!(area <= target + rules.edge_um * rules.edge_um);
        for (i, d) in placed.iter().enumerate() {
            prop_assert!(d.x0 >= window.x0 && d.x1 <= window.x1);
            prop_assert!(!d.overlaps(&wires[0].inflate(rules.wire_margin_um)));
            for other in placed.iter().skip(i + 1) {
                prop_assert!(!d.overlaps(other));
            }
        }
    }

    #[test]
    fn io_roundtrip_for_any_design(kind in any_design(), seed in 0u64..100) {
        let layout = DesignSpec::new(kind, 5, 7, seed).generate();
        let mut buf = Vec::new();
        neurfill_layout::io::write_layout(&layout, &mut buf).unwrap();
        let back = neurfill_layout::io::read_layout(buf.as_slice()).unwrap();
        prop_assert_eq!(layout, back);
    }
}
