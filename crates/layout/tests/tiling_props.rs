//! Property-based tests of the tile/halo slicer: exact core coverage,
//! halo-width guarantees, degenerate chips, and crop consistency.

use neurfill_layout::{DesignKind, FullChipSpec, TileRect, Tiling, WindowId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Every interior cell is covered by exactly one tile core.
    #[test]
    fn cores_cover_every_cell_exactly_once(
        rows in 1usize..40,
        cols in 1usize..40,
        tile_rows in 1usize..12,
        tile_cols in 1usize..12,
        halo in 0usize..6,
    ) {
        let t = Tiling::new(rows, cols, tile_rows, tile_cols, halo);
        let mut cover = vec![0u32; rows * cols];
        for tile in t.tiles() {
            prop_assert!(!tile.core.is_empty());
            for r in tile.core.row0..tile.core.row_end() {
                for c in tile.core.col0..tile.core.col_end() {
                    cover[r * cols + c] += 1;
                }
            }
        }
        prop_assert!(cover.iter().all(|&n| n == 1));
    }

    // Each extended side either spans the full requested halo width or
    // stops exactly at the chip boundary — so `halo >= kernel radius`
    // always gives every core cell its full kernel support, clamped
    // identically to the monolithic boundary handling.
    #[test]
    fn halo_width_is_full_or_chip_clamped(
        rows in 1usize..40,
        cols in 1usize..40,
        tile in 1usize..12,
        halo in 0usize..8,
    ) {
        let t = Tiling::square(rows, cols, tile, halo);
        for tile in t.tiles() {
            prop_assert!(tile.ext.row_end() <= rows && tile.ext.col_end() <= cols);
            prop_assert!(tile.ext.row0 == 0 || tile.core.row0 - tile.ext.row0 == halo);
            prop_assert!(tile.ext.col0 == 0 || tile.core.col0 - tile.ext.col0 == halo);
            prop_assert!(
                tile.ext.row_end() == rows || tile.ext.row_end() - tile.core.row_end() == halo
            );
            prop_assert!(
                tile.ext.col_end() == cols || tile.ext.col_end() - tile.core.col_end() == halo
            );
            prop_assert_eq!(tile.halo_cells(), tile.ext.len() - tile.core.len());
        }
    }

    // Chips no bigger than one tile degenerate to a single tile whose
    // core and extension are both the whole chip.
    #[test]
    fn degenerate_chips_are_single_whole_chip_tiles(
        rows in 1usize..10,
        cols in 1usize..10,
        extra_r in 0usize..50,
        extra_c in 0usize..50,
        halo in 0usize..8,
    ) {
        let t = Tiling::new(rows, cols, rows + extra_r, cols + extra_c, halo);
        prop_assert_eq!(t.num_tiles(), 1);
        let tile = t.tile(0, 0);
        prop_assert_eq!(tile.core, TileRect { row0: 0, col0: 0, rows, cols });
        prop_assert_eq!(tile.ext, tile.core);
    }

    // Cropping a chip layout to a tile's extension, then reading its
    // core windows, agrees with the monolithic chip — the geometric
    // half of the sharding bit-identity argument.
    #[test]
    fn crop_of_ext_agrees_with_chip_on_core(
        seed in 0u64..50,
        tile in 1usize..7,
        halo in 0usize..4,
    ) {
        let design = FullChipSpec::new(DesignKind::RiscV, 12, 10, seed).build();
        let chip = design.generate();
        let tiling = Tiling::square(12, 10, tile, halo);
        for t in tiling.tiles() {
            let sub = chip.crop(t.ext);
            prop_assert_eq!(sub.rows(), t.ext.rows);
            prop_assert_eq!(sub.cols(), t.ext.cols);
            prop_assert_eq!(&sub, &design.generate_tile(t.ext));
            for layer in 0..chip.num_layers() {
                for r in t.core.row0..t.core.row_end() {
                    for c in t.core.col0..t.core.col_end() {
                        let got = sub.window(WindowId {
                            layer,
                            row: r - t.ext.row0,
                            col: c - t.ext.col0,
                        });
                        let want = chip.window(WindowId { layer, row: r, col: c });
                        prop_assert_eq!(got, want);
                    }
                }
            }
        }
    }
}
