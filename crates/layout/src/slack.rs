//! Four-type slack-region decomposition (paper Fig. 5).
//!
//! Overlay only exists vertically, so the fillable slack of a window on
//! layer `l` is partitioned by the upper (`l+1`) and lower (`l−1`) layer
//! content above/below it:
//!
//! | type | upper layer | lower layer |
//! |------|-------------|-------------|
//! | 1    | slack       | slack       |
//! | 2    | wire        | slack       |
//! | 3    | slack       | wire        |
//! | 4    | wire        | wire        |
//!
//! At window granularity the partition is estimated from the neighbouring
//! layers' densities assuming spatial independence inside the window: the
//! fraction of slack under upper-layer wire is `ρ_{l+1}`, over lower-layer
//! wire is `ρ_{l−1}`. Boundary layers treat the missing neighbour as all
//! slack.

use crate::layout::{Layout, WindowId};

/// Slack areas (µm²) of the four region types of one window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SlackTypes {
    /// Areas `[type1, type2, type3, type4]` in priority order.
    pub areas: [f64; 4],
}

impl SlackTypes {
    /// Total slack area.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.areas.iter().sum()
    }

    /// Splits a fill amount across the four types by priority 1 → 4
    /// (the paper's insertion rule), returning per-type amounts.
    #[must_use]
    pub fn fill_by_priority(&self, mut x: f64) -> [f64; 4] {
        let mut out = [0.0; 4];
        for (slot, &cap) in out.iter_mut().zip(&self.areas) {
            let take = x.min(cap).max(0.0);
            *slot = take;
            x -= take;
            if x <= 0.0 {
                break;
            }
        }
        out
    }
}

/// Computes the four-type decomposition for window `id` in `layout`.
///
/// # Panics
///
/// Panics when `id` is out of range.
#[must_use]
pub fn slack_types(layout: &Layout, id: WindowId) -> SlackTypes {
    let w = layout.window(id);
    let up = if id.layer + 1 < layout.num_layers() {
        layout.window(WindowId { layer: id.layer + 1, ..id }).density
    } else {
        0.0
    };
    let dn =
        if id.layer > 0 { layout.window(WindowId { layer: id.layer - 1, ..id }).density } else { 0.0 };
    let s = w.slack;
    SlackTypes {
        areas: [s * (1.0 - up) * (1.0 - dn), s * up * (1.0 - dn), s * (1.0 - up) * dn, s * up * dn],
    }
}

/// Area of non-overlapping slack between layers `l` and `l+1` over window
/// `(row, col)` — the `s*` of the dummy-to-dummy overlay bound (Eq. 14).
///
/// Estimated as the slack–slack overlap region between the two layers.
///
/// # Panics
///
/// Panics when the indices are out of range or `layer + 1` does not exist.
#[must_use]
pub fn non_overlap_slack(layout: &Layout, layer: usize, row: usize, col: usize) -> f64 {
    assert!(layer + 1 < layout.num_layers(), "need an upper layer");
    let a = layout.window(WindowId { layer, row, col });
    let b = layout.window(WindowId { layer: layer + 1, row, col });
    let area = layout.window_area();
    area * (1.0 - a.density) * (1.0 - b.density)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::window::WindowPattern;

    fn stack(d0: f64, d1: f64, d2: f64) -> Layout {
        let mk = |d: f64| Grid::filled(1, 1, WindowPattern::from_line_model(d, 0.2, 10_000.0, 1.0));
        Layout::new("s", 100.0, vec![mk(d0), mk(d1), mk(d2)], 1.0)
    }

    #[test]
    fn partition_sums_to_slack() {
        let l = stack(0.3, 0.5, 0.7);
        let id = WindowId { layer: 1, row: 0, col: 0 };
        let st = slack_types(&l, id);
        assert!((st.total() - l.window(id).slack).abs() < 1e-9);
    }

    #[test]
    fn middle_layer_fractions() {
        let l = stack(0.4, 0.5, 0.2);
        let st = slack_types(&l, WindowId { layer: 1, row: 0, col: 0 });
        let s = l.window(WindowId { layer: 1, row: 0, col: 0 }).slack;
        // up = ρ₂ = 0.2, dn = ρ₀ = 0.4
        assert!((st.areas[0] - s * 0.8 * 0.6).abs() < 1e-9);
        assert!((st.areas[1] - s * 0.2 * 0.6).abs() < 1e-9);
        assert!((st.areas[2] - s * 0.8 * 0.4).abs() < 1e-9);
        assert!((st.areas[3] - s * 0.2 * 0.4).abs() < 1e-9);
    }

    #[test]
    fn boundary_layers_have_no_missing_neighbour_wire() {
        let l = stack(0.4, 0.5, 0.2);
        let bottom = slack_types(&l, WindowId { layer: 0, row: 0, col: 0 });
        // No lower layer ⇒ types 3 and 4 empty.
        assert_eq!(bottom.areas[2], 0.0);
        assert_eq!(bottom.areas[3], 0.0);
        let top = slack_types(&l, WindowId { layer: 2, row: 0, col: 0 });
        // No upper layer ⇒ types 2 and 4 empty.
        assert_eq!(top.areas[1], 0.0);
        assert_eq!(top.areas[3], 0.0);
    }

    #[test]
    fn priority_fill_spills_in_order() {
        let st = SlackTypes { areas: [10.0, 5.0, 5.0, 100.0] };
        assert_eq!(st.fill_by_priority(8.0), [8.0, 0.0, 0.0, 0.0]);
        assert_eq!(st.fill_by_priority(12.0), [10.0, 2.0, 0.0, 0.0]);
        assert_eq!(st.fill_by_priority(25.0), [10.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn fill_by_priority_handles_overflow_and_negatives() {
        let st = SlackTypes { areas: [1.0, 1.0, 1.0, 1.0] };
        let filled = st.fill_by_priority(100.0);
        assert_eq!(filled, [1.0, 1.0, 1.0, 1.0]);
        assert_eq!(st.fill_by_priority(-5.0), [0.0; 4]);
    }

    #[test]
    fn non_overlap_slack_formula() {
        let l = stack(0.3, 0.5, 0.7);
        let s = non_overlap_slack(&l, 1, 0, 0);
        assert!((s - 10_000.0 * 0.5 * 0.3).abs() < 1e-9);
    }
}
