//! The multi-layer grid layout model (the GDS stand-in of this
//! reproduction) and flat indexing of the `L × N × M` fill variables.

use crate::grid::Grid;
use crate::tiling::TileRect;
use crate::window::WindowPattern;

/// Identifies one window `W_{l,i,j}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId {
    /// Layer index `l` (0-based).
    pub layer: usize,
    /// Row index `i` (0-based).
    pub row: usize,
    /// Column index `j` (0-based).
    pub col: usize,
}

/// A multi-layer layout divided into uniform filling windows.
///
/// This plays the role of the extracted GDS layouts of the paper: each
/// window carries the pattern parameters the CMP simulator and the
/// extraction layer need (density, perimeter, width, slack).
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    name: String,
    window_um: f64,
    layers: Vec<Grid<WindowPattern>>,
    file_size_mb: f64,
}

impl Layout {
    /// Creates a layout from per-layer window grids.
    ///
    /// # Panics
    ///
    /// Panics when `layers` is empty, grids disagree in dimensions, or
    /// `window_um` is not positive.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        window_um: f64,
        layers: Vec<Grid<WindowPattern>>,
        file_size_mb: f64,
    ) -> Self {
        assert!(!layers.is_empty(), "layout needs at least one layer");
        assert!(window_um > 0.0, "window size must be positive");
        let (r, c) = (layers[0].rows(), layers[0].cols());
        assert!(r > 0 && c > 0, "layout grids must be non-empty");
        for l in &layers {
            assert_eq!((l.rows(), l.cols()), (r, c), "layer dimensions disagree");
        }
        Self { name: name.into(), window_um, layers, file_size_mb }
    }

    /// Design name (e.g. `"A"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Window edge length in µm (100 µm in the paper).
    #[must_use]
    pub fn window_um(&self) -> f64 {
        self.window_um
    }

    /// Window area in µm².
    #[must_use]
    pub fn window_area(&self) -> f64 {
        self.window_um * self.window_um
    }

    /// Number of layers `L`.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of window rows `N`.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.layers[0].rows()
    }

    /// Number of window columns `M`.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.layers[0].cols()
    }

    /// Total number of windows `L · N · M` — the dimensionality of the fill
    /// problem.
    #[must_use]
    pub fn num_windows(&self) -> usize {
        self.num_layers() * self.rows() * self.cols()
    }

    /// Nominal input file size in MB (used by the file-size score).
    #[must_use]
    pub fn file_size_mb(&self) -> f64 {
        self.file_size_mb
    }

    /// The grid of one layer.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    #[must_use]
    pub fn layer(&self, layer: usize) -> &Grid<WindowPattern> {
        &self.layers[layer]
    }

    /// Mutable grid of one layer.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    pub fn layer_mut(&mut self, layer: usize) -> &mut Grid<WindowPattern> {
        &mut self.layers[layer]
    }

    /// The window at `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[must_use]
    pub fn window(&self, id: WindowId) -> &WindowPattern {
        self.layers[id.layer].get(id.row, id.col)
    }

    /// Flat offset of `id` in the order `l·(N·M) + i·M + j` used by the fill
    /// vector `x` (paper Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[must_use]
    pub fn flat_index(&self, id: WindowId) -> usize {
        assert!(id.layer < self.num_layers(), "layer out of range");
        id.layer * self.rows() * self.cols() + self.layers[id.layer].offset(id.row, id.col)
    }

    /// Inverse of [`Layout::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics when `flat` is out of range.
    #[must_use]
    pub fn window_id(&self, flat: usize) -> WindowId {
        assert!(flat < self.num_windows(), "flat index out of range");
        let per_layer = self.rows() * self.cols();
        let layer = flat / per_layer;
        let rem = flat % per_layer;
        WindowId { layer, row: rem / self.cols(), col: rem % self.cols() }
    }

    /// Iterates over all window ids in flat order.
    pub fn window_ids(&self) -> impl Iterator<Item = WindowId> + '_ {
        let (l, r, c) = (self.num_layers(), self.rows(), self.cols());
        (0..l).flat_map(move |layer| {
            (0..r).flat_map(move |row| (0..c).map(move |col| WindowId { layer, row, col }))
        })
    }

    /// Densities of one layer as a row-major vector (for simulator / NN
    /// input planes).
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    #[must_use]
    pub fn density_map(&self, layer: usize) -> Vec<f64> {
        self.layers[layer].iter().map(|w| w.density).collect()
    }

    /// Slack areas of all windows in flat order (the box-constraint upper
    /// bound `s` of Eq. 5d).
    #[must_use]
    pub fn slack_vector(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_windows());
        for l in &self.layers {
            out.extend(l.iter().map(|w| w.slack));
        }
        out
    }

    /// Mean density over one layer.
    ///
    /// # Panics
    ///
    /// Panics when `layer` is out of range.
    #[must_use]
    pub fn mean_density(&self, layer: usize) -> f64 {
        let g = &self.layers[layer];
        g.iter().map(|w| w.density).sum::<f64>() / g.len() as f64
    }

    /// Validates every window's invariants.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let area = self.window_area();
        self.layers.iter().all(|g| g.iter().all(|w| w.is_valid(area)))
    }

    /// Crops the layout to a window region, preserving the window size
    /// and scaling the nominal file size by the retained area fraction.
    /// The name gains a `~{rect.label()}` suffix so tile jobs stay
    /// distinguishable in reports and telemetry.
    ///
    /// # Panics
    ///
    /// Panics when `rect` is empty or exceeds the layout bounds.
    #[must_use]
    pub fn crop(&self, rect: TileRect) -> Layout {
        assert!(!rect.is_empty(), "crop region must be non-empty");
        assert!(
            rect.row_end() <= self.rows() && rect.col_end() <= self.cols(),
            "crop region {rect:?} exceeds {}x{} layout",
            self.rows(),
            self.cols()
        );
        let layers = self
            .layers
            .iter()
            .map(|g| Grid::from_fn(rect.rows, rect.cols, |r, c| *g.get(rect.row0 + r, rect.col0 + c)))
            .collect();
        let frac = rect.len() as f64 / (self.rows() * self.cols()) as f64;
        Layout::new(
            format!("{}~{}", self.name, rect.label()),
            self.window_um,
            layers,
            self.file_size_mb * frac,
        )
    }

    /// Tiles the layout `reps_rows × reps_cols` times — the paper's §IV-F
    /// treatment of layouts smaller than the network's fixed input size
    /// ("duplicated several times to cover the whole input layout").
    ///
    /// # Panics
    ///
    /// Panics when either repetition count is zero.
    #[must_use]
    pub fn tile(&self, reps_rows: usize, reps_cols: usize) -> Layout {
        assert!(reps_rows > 0 && reps_cols > 0, "repetition counts must be positive");
        let (r, c) = (self.rows(), self.cols());
        let layers = self
            .layers
            .iter()
            .map(|g| Grid::from_fn(r * reps_rows, c * reps_cols, |rr, cc| *g.get(rr % r, cc % c)))
            .collect();
        Layout::new(format!("{}~tiled", self.name), self.window_um, layers, self.file_size_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_layout() -> Layout {
        let mk = |d: f64| {
            Grid::from_fn(2, 3, |r, c| {
                WindowPattern::from_line_model((d + 0.1 * (r + c) as f64).min(0.9), 0.2, 10_000.0, 0.8)
            })
        };
        Layout::new("T", 100.0, vec![mk(0.2), mk(0.3)], 1.0)
    }

    #[test]
    fn dimensions_and_counts() {
        let l = tiny_layout();
        assert_eq!(l.num_layers(), 2);
        assert_eq!(l.rows(), 2);
        assert_eq!(l.cols(), 3);
        assert_eq!(l.num_windows(), 12);
        assert_eq!(l.window_area(), 10_000.0);
        assert!(l.is_valid());
    }

    #[test]
    fn flat_index_roundtrip() {
        let l = tiny_layout();
        for (k, id) in l.window_ids().enumerate() {
            assert_eq!(l.flat_index(id), k);
            assert_eq!(l.window_id(k), id);
        }
    }

    #[test]
    fn slack_vector_matches_windows() {
        let l = tiny_layout();
        let s = l.slack_vector();
        assert_eq!(s.len(), 12);
        for id in l.window_ids() {
            assert_eq!(s[l.flat_index(id)], l.window(id).slack);
        }
    }

    #[test]
    #[should_panic(expected = "dimensions disagree")]
    fn mismatched_layers_panic() {
        let a = Grid::filled(2, 2, WindowPattern::default());
        let b = Grid::filled(2, 3, WindowPattern::default());
        let _ = Layout::new("bad", 100.0, vec![a, b], 1.0);
    }

    #[test]
    fn tile_replicates_pattern_periodically() {
        let l = tiny_layout();
        let t = l.tile(2, 3);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 9);
        assert_eq!(t.num_layers(), l.num_layers());
        assert!(t.is_valid());
        for layer in 0..l.num_layers() {
            for r in 0..t.rows() {
                for c in 0..t.cols() {
                    let src = l.window(WindowId { layer, row: r % 2, col: c % 3 });
                    let dst = t.window(WindowId { layer, row: r, col: c });
                    assert_eq!(src, dst);
                }
            }
        }
        // Tiling preserves the mean density exactly.
        assert!((t.mean_density(0) - l.mean_density(0)).abs() < 1e-12);
    }

    #[test]
    fn mean_density_of_uniform_layer() {
        let g = Grid::filled(2, 2, WindowPattern::from_line_model(0.4, 0.2, 10_000.0, 0.8));
        let l = Layout::new("u", 100.0, vec![g], 1.0);
        assert!((l.mean_density(0) - 0.4).abs() < 1e-12);
    }
}
