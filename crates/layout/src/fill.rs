//! Fill plans: the decision vector `x` of dummy-fill synthesis and its
//! application to a layout.

use crate::layout::{Layout, WindowId};

/// Geometry of the square dummy features inserted by filling insertion.
///
/// Filling synthesis only decides *areas*; the dummy geometry is needed to
/// update perimeter/width after filling (the DSH-consistent parameter
/// update of the extraction layer) and to estimate output file size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DummySpec {
    /// Edge length of one square dummy (µm).
    pub edge_um: f64,
    /// Approximate GDS bytes per dummy rectangle.
    pub bytes_per_dummy: f64,
}

impl DummySpec {
    /// Creates a dummy spec with the given edge length and the typical
    /// GDSII record size per rectangle.
    #[must_use]
    pub fn new(edge_um: f64) -> Self {
        Self { edge_um, bytes_per_dummy: 44.0 }
    }

    /// Number of dummies needed for a fill area (µm²).
    #[must_use]
    pub fn count_for_area(&self, area: f64) -> f64 {
        area / (self.edge_um * self.edge_um)
    }

    /// Added copper perimeter for a fill area: `4·edge·count = 4·area/edge`.
    #[must_use]
    pub fn perimeter_for_area(&self, area: f64) -> f64 {
        4.0 * area / self.edge_um
    }
}

impl Default for DummySpec {
    fn default() -> Self {
        Self::new(2.0)
    }
}

/// The fill-amount vector `x` (µm² per window, flat `L·N·M` order; Eq. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct FillPlan {
    amounts: Vec<f64>,
}

impl FillPlan {
    /// An all-zero plan for `layout`.
    #[must_use]
    pub fn zeros(layout: &Layout) -> Self {
        Self { amounts: vec![0.0; layout.num_windows()] }
    }

    /// Wraps a raw vector as a plan.
    ///
    /// # Panics
    ///
    /// Panics when `amounts.len()` disagrees with the layout.
    #[must_use]
    pub fn from_vec(layout: &Layout, amounts: Vec<f64>) -> Self {
        assert_eq!(amounts.len(), layout.num_windows(), "fill plan length mismatch");
        Self { amounts }
    }

    /// Fill amount of the window at flat index `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    #[must_use]
    pub fn amount(&self, k: usize) -> f64 {
        self.amounts[k]
    }

    /// Fill amount of window `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range for `layout`.
    #[must_use]
    pub fn amount_at(&self, layout: &Layout, id: WindowId) -> f64 {
        self.amounts[layout.flat_index(id)]
    }

    /// Flat view of the amounts.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.amounts
    }

    /// Mutable flat view of the amounts.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.amounts
    }

    /// Total fill amount `fa` (Eq. 4).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.amounts.iter().sum()
    }

    /// Clamps every amount into `[0, slack]` for `layout` (feasibility
    /// projection for Eq. 5d).
    pub fn clamp_to_slack(&mut self, layout: &Layout) {
        for (a, s) in self.amounts.iter_mut().zip(layout.slack_vector()) {
            *a = a.clamp(0.0, s);
        }
    }

    /// Whether every amount satisfies `0 ≤ x ≤ slack` within `tol`.
    #[must_use]
    pub fn is_feasible(&self, layout: &Layout, tol: f64) -> bool {
        self.amounts.iter().zip(layout.slack_vector()).all(|(&a, s)| a >= -tol && a <= s + tol)
    }

    /// Total number of dummy shapes this plan inserts.
    #[must_use]
    pub fn dummy_count(&self, spec: &DummySpec) -> f64 {
        spec.count_for_area(self.total())
    }

    /// Estimated output file size in MB: input size plus dummy records.
    #[must_use]
    pub fn output_file_size_mb(&self, layout: &Layout, spec: &DummySpec) -> f64 {
        layout.file_size_mb() + self.dummy_count(spec) * spec.bytes_per_dummy / 1.0e6
    }
}

/// Applies a fill plan to a layout, producing the post-fill layout whose
/// pattern parameters reflect the inserted dummies: density rises by
/// `x/area`, perimeter by the dummy perimeter, the average width mixes in
/// the dummy edge, and slack shrinks by `x`.
///
/// # Panics
///
/// Panics when the plan length disagrees with the layout.
#[must_use]
pub fn apply_fill(layout: &Layout, plan: &FillPlan, spec: &DummySpec) -> Layout {
    assert_eq!(plan.as_slice().len(), layout.num_windows(), "fill plan length mismatch");
    let area = layout.window_area();
    let mut out = layout.clone();
    for id in layout.window_ids() {
        let x = plan.amount_at(layout, id).clamp(0.0, layout.window(id).slack);
        if x <= 0.0 {
            continue;
        }
        let w = out.layer_mut(id.layer).get_mut(id.row, id.col);
        let old_metal = w.density * area;
        let new_metal = old_metal + x;
        // Width: area-weighted mix of existing features and dummies.
        w.avg_width = if new_metal > 0.0 {
            (w.avg_width * old_metal + spec.edge_um * x) / new_metal
        } else {
            w.avg_width
        };
        w.density = (new_metal / area).min(1.0);
        w.perimeter += spec.perimeter_for_area(x);
        w.slack = (w.slack - x).max(0.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::window::WindowPattern;

    fn layout() -> Layout {
        let g = Grid::filled(2, 2, WindowPattern::from_line_model(0.3, 0.2, 10_000.0, 0.8));
        Layout::new("f", 100.0, vec![g.clone(), g], 1.0)
    }

    #[test]
    fn zeros_plan_is_feasible_and_empty() {
        let l = layout();
        let p = FillPlan::zeros(&l);
        assert_eq!(p.total(), 0.0);
        assert!(p.is_feasible(&l, 0.0));
        assert_eq!(apply_fill(&l, &p, &DummySpec::default()), l);
    }

    #[test]
    fn apply_updates_density_perimeter_slack() {
        let l = layout();
        let mut p = FillPlan::zeros(&l);
        p.as_mut_slice()[0] = 1000.0; // 1000 µm² of dummies in window 0
        let spec = DummySpec::new(2.0);
        let filled = apply_fill(&l, &p, &spec);
        let w0 = filled.window(WindowId { layer: 0, row: 0, col: 0 });
        let orig = l.window(WindowId { layer: 0, row: 0, col: 0 });
        assert!((w0.density - (orig.density + 0.1)).abs() < 1e-9);
        assert!((w0.perimeter - (orig.perimeter + 2000.0)).abs() < 1e-6);
        assert!((w0.slack - (orig.slack - 1000.0)).abs() < 1e-9);
        // Other windows untouched.
        let w1 = filled.window(WindowId { layer: 0, row: 0, col: 1 });
        assert_eq!(w1, l.window(WindowId { layer: 0, row: 0, col: 1 }));
        assert!(filled.is_valid());
    }

    #[test]
    fn apply_clamps_to_slack() {
        let l = layout();
        let mut p = FillPlan::zeros(&l);
        p.as_mut_slice()[0] = 1e9;
        let filled = apply_fill(&l, &p, &DummySpec::default());
        let w0 = filled.window(WindowId { layer: 0, row: 0, col: 0 });
        assert!(w0.density <= 1.0);
        assert!(w0.slack.abs() < 1e-9);
        assert!(filled.is_valid());
    }

    #[test]
    fn clamp_to_slack_projects() {
        let l = layout();
        let mut p = FillPlan::zeros(&l);
        p.as_mut_slice()[0] = -5.0;
        p.as_mut_slice()[1] = 1e9;
        assert!(!p.is_feasible(&l, 0.0));
        p.clamp_to_slack(&l);
        assert!(p.is_feasible(&l, 0.0));
        assert_eq!(p.amount(0), 0.0);
        assert_eq!(p.amount(1), l.window(l.window_id(1)).slack);
    }

    #[test]
    fn file_size_grows_with_fill() {
        let l = layout();
        let mut p = FillPlan::zeros(&l);
        let spec = DummySpec::new(2.0);
        assert_eq!(p.output_file_size_mb(&l, &spec), 1.0);
        p.as_mut_slice()[0] = 4000.0; // 1000 dummies
        assert!((p.dummy_count(&spec) - 1000.0).abs() < 1e-9);
        assert!(p.output_file_size_mb(&l, &spec) > 1.0);
    }

    #[test]
    fn width_mixes_toward_dummy_edge() {
        let l = layout();
        let mut p = FillPlan::zeros(&l);
        p.as_mut_slice()[0] = 2000.0;
        let filled = apply_fill(&l, &p, &DummySpec::new(2.0));
        let w0 = filled.window(WindowId { layer: 0, row: 0, col: 0 });
        assert!(w0.avg_width > 0.2 && w0.avg_width < 2.0);
    }
}
