//! A dense row-major 2-D grid, the container for per-window data.

use std::fmt;

/// A dense `rows × cols` grid stored row-major.
///
/// # Examples
///
/// ```
/// use neurfill_layout::Grid;
/// let mut g = Grid::filled(2, 3, 0.0f64);
/// *g.get_mut(1, 2) = 7.0;
/// assert_eq!(*g.get(1, 2), 7.0);
/// assert_eq!(g.iter().filter(|&&v| v == 7.0).count(), 1);
/// ```
#[derive(Clone, PartialEq)]
pub struct Grid<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Grid<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Grid({}x{})", self.rows, self.cols)
    }
}

impl<T: Clone> Grid<T> {
    /// Creates a grid with every cell set to `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }
}

impl<T> Grid<T> {
    /// Creates a grid by evaluating `f(row, col)` for every cell.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a grid from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "grid data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the grid has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major offset of `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn offset(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols, "grid index ({row},{col}) out of bounds");
        row * self.cols + col
    }

    /// Borrow of the cell at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> &T {
        &self.data[self.offset(row, col)]
    }

    /// Mutable borrow of the cell at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut T {
        let off = self.offset(row, col);
        &mut self.data[off]
    }

    /// Row-major iterator over cells.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Row-major mutable iterator over cells.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Row-major flat view.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Maps each cell to a new grid of the same dimensions.
    #[must_use]
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid { rows: self.rows, cols: self.cols, data: self.data.iter().map(f).collect() }
    }
}

impl<'a, T> IntoIterator for &'a Grid<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_row_major_order() {
        let g = Grid::from_fn(2, 3, |r, c| r * 10 + c);
        assert_eq!(g.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(*g.get(1, 2), 12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let g = Grid::filled(2, 2, 0);
        let _ = g.get(2, 0);
    }

    #[test]
    fn map_preserves_dimensions() {
        let g = Grid::from_fn(3, 4, |r, c| (r + c) as f64);
        let doubled = g.map(|v| v * 2.0);
        assert_eq!(doubled.rows(), 3);
        assert_eq!(doubled.cols(), 4);
        assert_eq!(*doubled.get(2, 3), 10.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let g = Grid::from_vec(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(g.offset(1, 1), 3);
        assert_eq!(g.iter().sum::<i32>(), 10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_wrong_length_panics() {
        let _ = Grid::from_vec(2, 2, vec![1, 2, 3]);
    }
}
