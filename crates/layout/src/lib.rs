//! # neurfill-layout
//!
//! Layout substrate for the NeurFill reproduction: multi-layer window
//! grids with per-window pattern parameters (density, perimeter, width,
//! slack), fill plans, the four-type slack decomposition of paper Fig. 5,
//! synthetic benchmark designs standing in for the paper's three GDS
//! layouts, and the two-step random training-data generator of Fig. 8.
//!
//! # Example
//!
//! ```
//! use neurfill_layout::{DesignKind, DesignSpec, FillPlan, DummySpec, apply_fill};
//!
//! // Generate a small instance of the paper's Design A.
//! let layout = DesignSpec::new(DesignKind::CmpTest, 16, 16, 42).generate();
//! assert_eq!(layout.num_layers(), 3);
//!
//! // Fill every window to half of its slack and apply.
//! let mut plan = FillPlan::zeros(&layout);
//! for (x, s) in plan.as_mut_slice().iter_mut().zip(layout.slack_vector()) {
//!     *x = 0.5 * s;
//! }
//! let filled = apply_fill(&layout, &plan, &DummySpec::default());
//! assert!(filled.is_valid());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chipgen;
pub mod datagen;
pub mod design;
mod fill;
pub mod geometry;
mod grid;
pub mod insertion;
pub mod io;
mod layout;
pub mod slack;
pub mod tiling;
mod window;

pub use chipgen::{FullChipDesign, FullChipSpec};
pub use design::{benchmark_designs, DesignKind, DesignSpec};
pub use fill::{apply_fill, DummySpec, FillPlan};
pub use geometry::{LayerGeometry, Rect, Shape, WindowStats};
pub use grid::Grid;
pub use insertion::{
    insert_dummies, insert_dummies_multisize, realize_fill, InsertionReport, InsertionRules,
};
pub use layout::{Layout, WindowId};
pub use slack::{non_overlap_slack, slack_types, SlackTypes};
pub use tiling::{Tile, TileRect, Tiling};
pub use window::WindowPattern;
