//! Plain-text layout serialization (a readable stand-in for GDS I/O).
//!
//! Format:
//!
//! ```text
//! neurfill-layout v1
//! name <name>
//! window_um <f64>
//! file_size_mb <f64>
//! dims <layers> <rows> <cols>
//! w <density> <perimeter> <avg_width> <slack>    # L·N·M lines, flat order
//! ```
//!
//! [`write_layout_bits`]/[`read_layout_bits`] are the compact bit-exact
//! sibling (text header, raw little-endian `f64` window records) for
//! hot paths like the serve journal's write-ahead admit records.

use crate::grid::Grid;
use crate::layout::Layout;
use crate::window::WindowPattern;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

const MAGIC: &str = "neurfill-layout v1";

/// Writes `layout` to a writer (a `&mut` reference works too).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_layout<W: Write>(layout: &Layout, mut w: W) -> io::Result<()> {
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "name {}", layout.name())?;
    writeln!(w, "window_um {}", layout.window_um())?;
    writeln!(w, "file_size_mb {}", layout.file_size_mb())?;
    writeln!(w, "dims {} {} {}", layout.num_layers(), layout.rows(), layout.cols())?;
    for id in layout.window_ids() {
        let p = layout.window(id);
        writeln!(w, "w {} {} {} {}", p.density, p.perimeter, p.avg_width, p.slack)?;
    }
    Ok(())
}

/// Reads a layout written by [`write_layout`] (a `&mut` reference works
/// too).
///
/// # Errors
///
/// Returns `InvalidData` on any format violation.
pub fn read_layout<R: Read>(r: R) -> io::Result<Layout> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = BufReader::new(r).lines();
    let mut next = |what: &str| -> io::Result<String> {
        lines.next().ok_or_else(|| bad(format!("unexpected end of file, expected {what}")))?
    };
    if next("magic")?.trim() != MAGIC {
        return Err(bad("not a neurfill layout file".into()));
    }
    let name =
        next("name")?.strip_prefix("name ").ok_or_else(|| bad("missing name".into()))?.to_string();
    let window_um: f64 = parse_field(&next("window_um")?, "window_um")?;
    let file_size_mb: f64 = parse_field(&next("file_size_mb")?, "file_size_mb")?;
    let dims_line = next("dims")?;
    let dims: Vec<usize> = dims_line
        .strip_prefix("dims ")
        .ok_or_else(|| bad(format!("bad dims line {dims_line:?}")))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| bad(format!("bad dim {t:?}: {e}"))))
        .collect::<io::Result<_>>()?;
    let [layers, rows, cols] = dims[..] else {
        return Err(bad(format!("dims needs 3 values, got {dims:?}")));
    };
    if layers == 0 || rows == 0 || cols == 0 {
        return Err(bad("dims must be positive".into()));
    }
    let mut grids = Vec::with_capacity(layers);
    for _ in 0..layers {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            let line = next("window")?;
            let rest =
                line.strip_prefix("w ").ok_or_else(|| bad(format!("bad window line {line:?}")))?;
            let vals: Vec<f64> = rest
                .split_whitespace()
                .map(|t| t.parse().map_err(|e| bad(format!("bad value {t:?}: {e}"))))
                .collect::<io::Result<_>>()?;
            let [density, perimeter, avg_width, slack] = vals[..] else {
                return Err(bad(format!("window needs 4 values: {line:?}")));
            };
            data.push(WindowPattern { density, perimeter, avg_width, slack });
        }
        grids.push(Grid::from_vec(rows, cols, data));
    }
    Ok(Layout::new(name, window_um, grids, file_size_mb))
}

const BITS_MAGIC: &str = "neurfill-layout-bits v1";

/// Upper bound on `layers * rows * cols` accepted by
/// [`read_layout_bits`] — rejects corrupt headers before they turn into
/// multi-gigabyte allocations.
const MAX_BITS_WINDOWS: usize = 1 << 28;

/// Writes `layout` in the compact bit-exact encoding: the same header
/// fields as [`write_layout`] (scalars as `f64::to_bits` hex), then one
/// 32-byte little-endian record per window (density, perimeter,
/// avg_width, slack).
///
/// Round-trips every bit pattern and is an order of magnitude cheaper
/// to produce than the text form — the serve journal's admit records
/// use it on the latency-critical submit path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_layout_bits<W: Write>(layout: &Layout, mut w: W) -> io::Result<()> {
    let mut buf = Vec::with_capacity(96 + layout.name().len() + layout.num_windows() * 32);
    writeln!(buf, "{BITS_MAGIC}")?;
    writeln!(buf, "name {}", layout.name())?;
    writeln!(
        buf,
        "meta {:016x} {:016x}",
        layout.window_um().to_bits(),
        layout.file_size_mb().to_bits()
    )?;
    writeln!(buf, "dims {} {} {}", layout.num_layers(), layout.rows(), layout.cols())?;
    for id in layout.window_ids() {
        let p = layout.window(id);
        for v in [p.density, p.perimeter, p.avg_width, p.slack] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    w.write_all(&buf)
}

/// Reads a layout written by [`write_layout_bits`].
///
/// # Errors
///
/// Returns `InvalidData` on any format violation or truncation.
pub fn read_layout_bits<R: Read>(r: R) -> io::Result<Layout> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut reader = BufReader::new(r);
    let mut line = String::new();
    let mut next = |reader: &mut BufReader<R>, what: &str| -> io::Result<String> {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad(format!("unexpected end of file, expected {what}")));
        }
        Ok(line.trim_end().to_string())
    };
    if next(&mut reader, "magic")? != BITS_MAGIC {
        return Err(bad("not a neurfill layout-bits file".into()));
    }
    let name = next(&mut reader, "name")?
        .strip_prefix("name ")
        .ok_or_else(|| bad("missing name".into()))?
        .to_string();
    let meta_line = next(&mut reader, "meta")?;
    let meta: Vec<f64> = meta_line
        .strip_prefix("meta ")
        .ok_or_else(|| bad(format!("bad meta line {meta_line:?}")))?
        .split_whitespace()
        .map(|t| {
            u64::from_str_radix(t, 16)
                .map(f64::from_bits)
                .map_err(|e| bad(format!("bad meta word {t:?}: {e}")))
        })
        .collect::<io::Result<_>>()?;
    let [window_um, file_size_mb] = meta[..] else {
        return Err(bad(format!("meta needs 2 words, got {}", meta.len())));
    };
    let dims_line = next(&mut reader, "dims")?;
    let dims: Vec<usize> = dims_line
        .strip_prefix("dims ")
        .ok_or_else(|| bad(format!("bad dims line {dims_line:?}")))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| bad(format!("bad dim {t:?}: {e}"))))
        .collect::<io::Result<_>>()?;
    let [layers, rows, cols] = dims[..] else {
        return Err(bad(format!("dims needs 3 values, got {dims:?}")));
    };
    if layers == 0 || rows == 0 || cols == 0 {
        return Err(bad("dims must be positive".into()));
    }
    let total = layers
        .checked_mul(rows)
        .and_then(|n| n.checked_mul(cols))
        .filter(|&n| n <= MAX_BITS_WINDOWS)
        .ok_or_else(|| bad(format!("implausible dims {layers}x{rows}x{cols}")))?;
    let mut body = vec![0u8; total * 32];
    reader.read_exact(&mut body).map_err(|e| bad(format!("truncated window records: {e}")))?;
    let mut words = body.chunks_exact(8).map(|c| {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(c);
        f64::from_le_bytes(raw)
    });
    let mut grids = Vec::with_capacity(layers);
    for _ in 0..layers {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            let (Some(density), Some(perimeter), Some(avg_width), Some(slack)) =
                (words.next(), words.next(), words.next(), words.next())
            else {
                unreachable!("body holds exactly total * 4 words")
            };
            data.push(WindowPattern { density, perimeter, avg_width, slack });
        }
        grids.push(Grid::from_vec(rows, cols, data));
    }
    Ok(Layout::new(name, window_um, grids, file_size_mb))
}

fn parse_field<T: std::str::FromStr>(line: &str, key: &str) -> io::Result<T>
where
    T::Err: std::fmt::Display,
{
    line.strip_prefix(key)
        .map(str::trim)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("missing {key}")))?
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad {key}: {e}")))
}

const PLAN_MAGIC: &str = "neurfill-plan v1";

/// Writes a fill plan (the synthesis artifact) to a writer, tagged with
/// the layout dimensions it belongs to.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_plan<W: Write>(layout: &Layout, plan: &crate::FillPlan, mut w: W) -> io::Result<()> {
    writeln!(w, "{PLAN_MAGIC}")?;
    writeln!(w, "dims {} {} {}", layout.num_layers(), layout.rows(), layout.cols())?;
    for x in plan.as_slice() {
        writeln!(w, "{x}")?;
    }
    Ok(())
}

/// Reads a fill plan written by [`write_plan`], validating it against
/// `layout`'s dimensions.
///
/// # Errors
///
/// Returns `InvalidData` on format violations or dimension mismatch.
pub fn read_plan<R: Read>(layout: &Layout, r: R) -> io::Result<crate::FillPlan> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = BufReader::new(r).lines();
    let magic = lines.next().ok_or_else(|| bad("empty plan file".into()))??;
    if magic.trim() != PLAN_MAGIC {
        return Err(bad("not a neurfill plan file".into()));
    }
    let dims_line = lines.next().ok_or_else(|| bad("missing dims".into()))??;
    let dims: Vec<usize> = dims_line
        .strip_prefix("dims ")
        .ok_or_else(|| bad(format!("bad dims line {dims_line:?}")))?
        .split_whitespace()
        .map(|t| t.parse().map_err(|e| bad(format!("bad dim {t:?}: {e}"))))
        .collect::<io::Result<_>>()?;
    if dims != [layout.num_layers(), layout.rows(), layout.cols()] {
        return Err(bad(format!(
            "plan dims {dims:?} do not match layout {}x{}x{}",
            layout.num_layers(),
            layout.rows(),
            layout.cols()
        )));
    }
    let mut amounts = Vec::with_capacity(layout.num_windows());
    for _ in 0..layout.num_windows() {
        let line = lines.next().ok_or_else(|| bad("truncated plan".into()))??;
        amounts.push(line.trim().parse().map_err(|e| bad(format!("bad amount {line:?}: {e}")))?);
    }
    Ok(crate::FillPlan::from_vec(layout, amounts))
}

/// Saves a layout to a file path.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn save_to_file(layout: &Layout, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_layout(layout, io::BufWriter::new(f))
}

/// Loads a layout from a file path.
///
/// # Errors
///
/// Propagates file-system and format errors.
pub fn load_from_file(path: impl AsRef<Path>) -> io::Result<Layout> {
    read_layout(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignKind, DesignSpec};

    #[test]
    fn roundtrip_preserves_layout() {
        let l = DesignSpec::new(DesignKind::RiscV, 6, 7, 5).generate();
        let mut buf = Vec::new();
        write_layout(&l, &mut buf).unwrap();
        let back = read_layout(buf.as_slice()).unwrap();
        assert_eq!(l, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_layout(b"hello".as_slice()).is_err());
        assert!(read_layout(b"".as_slice()).is_err());
    }

    #[test]
    fn plan_roundtrip_and_validation() {
        let l = DesignSpec::new(DesignKind::Fpga, 4, 5, 3).generate();
        let mut plan = crate::FillPlan::zeros(&l);
        for (i, x) in plan.as_mut_slice().iter_mut().enumerate() {
            *x = i as f64 * 1.25;
        }
        let mut buf = Vec::new();
        write_plan(&l, &plan, &mut buf).unwrap();
        let back = read_plan(&l, buf.as_slice()).unwrap();
        assert_eq!(plan, back);

        // Wrong-geometry layouts are rejected.
        let other = DesignSpec::new(DesignKind::Fpga, 5, 4, 3).generate();
        assert!(read_plan(&other, buf.as_slice()).is_err());
        assert!(read_plan(&l, b"junk".as_slice()).is_err());
    }

    #[test]
    fn bits_roundtrip_is_bit_exact() {
        let mut l = DesignSpec::new(DesignKind::RiscV, 6, 7, 5).generate();
        // Exercise bit patterns plain-text formatting struggles with.
        l.layer_mut(0).get_mut(0, 0).density = f64::MIN_POSITIVE / 4.0; // subnormal
        l.layer_mut(0).get_mut(0, 1).perimeter = -0.0;
        l.layer_mut(0).get_mut(0, 2).avg_width = 1.0 / 3.0;
        let mut buf = Vec::new();
        write_layout_bits(&l, &mut buf).unwrap();
        let back = read_layout_bits(buf.as_slice()).unwrap();
        assert_eq!(l, back);
        assert_eq!(back.window(back.window_id(1)).perimeter.to_bits(), (-0.0f64).to_bits());
        let mut again = Vec::new();
        write_layout_bits(&back, &mut again).unwrap();
        assert_eq!(buf, again, "bits persistence must be a fixed point");
    }

    #[test]
    fn bits_rejects_garbage_truncation_and_huge_dims() {
        assert!(read_layout_bits(b"hello".as_slice()).is_err());
        assert!(read_layout_bits(b"".as_slice()).is_err());
        let l = DesignSpec::new(DesignKind::CmpTest, 4, 4, 0).generate();
        let mut buf = Vec::new();
        write_layout_bits(&l, &mut buf).unwrap();
        for cut in [3, 40, buf.len() / 2, buf.len() - 5] {
            assert!(read_layout_bits(&buf[..cut]).is_err(), "cut at {cut}");
        }
        let huge = b"neurfill-layout-bits v1\nname x\nmeta 0 0\ndims 99999 99999 99999\n";
        assert!(read_layout_bits(huge.as_slice()).is_err(), "implausible dims must not allocate");
    }

    #[test]
    fn rejects_truncated_file() {
        let l = DesignSpec::new(DesignKind::CmpTest, 4, 4, 0).generate();
        let mut buf = Vec::new();
        write_layout(&l, &mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        assert!(read_layout(cut).is_err());
    }
}
