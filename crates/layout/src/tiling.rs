//! Tile/halo decomposition of a full-chip window grid.
//!
//! A [`Tiling`] slices an `N × M` chip into rectangular tiles whose
//! *core* regions exactly partition the chip (every window belongs to
//! exactly one core), and gives each tile an *extended* region — the
//! core expanded by a halo of `halo` windows on every side, clamped at
//! the chip boundary. Because the pad kernel of the CMP simulator has a
//! finite radius `r`, a tile simulated on its extended region with
//! `halo >= r` reproduces the monolithic result on its core bit-exactly
//! (the kernel support of every core window lies inside the extension,
//! and clamping at the chip edge matches the monolithic boundary
//! handling). Chips smaller than one tile degenerate to a single tile
//! covering the whole chip.

/// A rectangular window region `[row0, row0+rows) × [col0, col0+cols)`
/// in chip coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileRect {
    /// First row of the region.
    pub row0: usize,
    /// First column of the region.
    pub col0: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl TileRect {
    /// One past the last row.
    #[must_use]
    pub fn row_end(&self) -> usize {
        self.row0 + self.rows
    }

    /// One past the last column.
    #[must_use]
    pub fn col_end(&self) -> usize {
        self.col0 + self.cols
    }

    /// Number of windows in the region.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the chip cell `(r, c)` lies inside the region.
    #[must_use]
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r >= self.row0 && r < self.row_end() && c >= self.col0 && c < self.col_end()
    }

    /// Row-major offset of chip cell `(r, c)` within the region.
    ///
    /// # Panics
    ///
    /// Panics when `(r, c)` is outside the region.
    #[must_use]
    pub fn offset(&self, r: usize, c: usize) -> usize {
        assert!(self.contains(r, c), "cell ({r}, {c}) outside {self:?}");
        (r - self.row0) * self.cols + (c - self.col0)
    }

    /// A stable label for names and logs: `r{row0}c{col0}_{rows}x{cols}`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("r{}c{}_{}x{}", self.row0, self.col0, self.rows, self.cols)
    }
}

/// One tile of a [`Tiling`]: its grid index, owned core region and
/// halo-extended region (both in chip coordinates, core ⊆ ext).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Tile-grid index `(tile_row, tile_col)`.
    pub index: (usize, usize),
    /// The region this tile owns; cores partition the chip.
    pub core: TileRect,
    /// Core plus a halo of up to `halo` windows per side, clamped to
    /// the chip.
    pub ext: TileRect,
}

impl Tile {
    /// Offset of the core's top-left corner inside the extended region.
    #[must_use]
    pub fn core_in_ext(&self) -> (usize, usize) {
        (self.core.row0 - self.ext.row0, self.core.col0 - self.ext.col0)
    }

    /// Number of halo windows (extended minus core).
    #[must_use]
    pub fn halo_cells(&self) -> usize {
        self.ext.len() - self.core.len()
    }
}

/// A tile/halo decomposition of an `N × M` chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    rows: usize,
    cols: usize,
    tile_rows: usize,
    tile_cols: usize,
    halo: usize,
}

impl Tiling {
    /// A tiling with the requested nominal tile shape; edge tiles are
    /// smaller when the chip size is not a multiple of the tile size,
    /// and a tile size larger than the chip degenerates to one tile.
    ///
    /// # Panics
    ///
    /// Panics when the chip or the tile shape has a zero extent.
    #[must_use]
    pub fn new(rows: usize, cols: usize, tile_rows: usize, tile_cols: usize, halo: usize) -> Self {
        assert!(rows > 0 && cols > 0, "chip must be non-empty");
        assert!(tile_rows > 0 && tile_cols > 0, "tile shape must be non-empty");
        Self { rows, cols, tile_rows: tile_rows.min(rows), tile_cols: tile_cols.min(cols), halo }
    }

    /// A tiling with square `tile × tile` tiles.
    ///
    /// # Panics
    ///
    /// Panics when the chip is empty or `tile` is zero.
    #[must_use]
    pub fn square(rows: usize, cols: usize, tile: usize, halo: usize) -> Self {
        Self::new(rows, cols, tile, tile, halo)
    }

    /// Chip rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Chip columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Halo width in windows.
    #[must_use]
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Tile-grid shape `(tile rows, tile cols)` (ceiling division).
    #[must_use]
    pub fn grid(&self) -> (usize, usize) {
        (self.rows.div_ceil(self.tile_rows), self.cols.div_ceil(self.tile_cols))
    }

    /// Total number of tiles.
    #[must_use]
    pub fn num_tiles(&self) -> usize {
        let (tr, tc) = self.grid();
        tr * tc
    }

    /// The tile at grid index `(ti, tj)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is outside the tile grid.
    #[must_use]
    pub fn tile(&self, ti: usize, tj: usize) -> Tile {
        let (tr, tc) = self.grid();
        assert!(ti < tr && tj < tc, "tile index ({ti}, {tj}) outside {tr}x{tc} grid");
        let row0 = ti * self.tile_rows;
        let col0 = tj * self.tile_cols;
        let core = TileRect {
            row0,
            col0,
            rows: self.tile_rows.min(self.rows - row0),
            cols: self.tile_cols.min(self.cols - col0),
        };
        let ext_row0 = row0.saturating_sub(self.halo);
        let ext_col0 = col0.saturating_sub(self.halo);
        let ext = TileRect {
            row0: ext_row0,
            col0: ext_col0,
            rows: (core.row_end() + self.halo).min(self.rows) - ext_row0,
            cols: (core.col_end() + self.halo).min(self.cols) - ext_col0,
        };
        Tile { index: (ti, tj), core, ext }
    }

    /// Iterates over all tiles in row-major tile-grid order.
    pub fn tiles(&self) -> impl Iterator<Item = Tile> + '_ {
        let (tr, tc) = self.grid();
        (0..tr).flat_map(move |ti| (0..tc).map(move |tj| self.tile(ti, tj)))
    }

    /// The largest extended-region size over all tiles — the per-tile
    /// resident-memory bound.
    #[must_use]
    pub fn max_ext_len(&self) -> usize {
        self.tiles().map(|t| t.ext.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_partition_exactly() {
        let t = Tiling::new(10, 13, 4, 5, 2);
        let mut cover = vec![0usize; 10 * 13];
        for tile in t.tiles() {
            for r in tile.core.row0..tile.core.row_end() {
                for c in tile.core.col0..tile.core.col_end() {
                    cover[r * 13 + c] += 1;
                }
            }
        }
        assert!(cover.iter().all(|&n| n == 1));
    }

    #[test]
    fn ext_clamps_to_chip_and_covers_halo() {
        let t = Tiling::new(8, 8, 4, 4, 3);
        for tile in t.tiles() {
            assert!(tile.ext.row0 <= tile.core.row0);
            assert!(tile.ext.row_end() >= tile.core.row_end());
            assert!(tile.ext.row_end() <= 8 && tile.ext.col_end() <= 8);
            // Each side either reaches the chip edge or has full halo width.
            assert!(tile.ext.row0 == 0 || tile.core.row0 - tile.ext.row0 == 3);
            assert!(tile.ext.row_end() == 8 || tile.ext.row_end() - tile.core.row_end() == 3);
            assert!(tile.ext.col0 == 0 || tile.core.col0 - tile.ext.col0 == 3);
            assert!(tile.ext.col_end() == 8 || tile.ext.col_end() - tile.core.col_end() == 3);
        }
    }

    #[test]
    fn degenerate_chip_is_single_tile() {
        let t = Tiling::new(3, 2, 64, 64, 4);
        assert_eq!(t.grid(), (1, 1));
        let tile = t.tile(0, 0);
        assert_eq!(tile.core, TileRect { row0: 0, col0: 0, rows: 3, cols: 2 });
        assert_eq!(tile.ext, tile.core);
        assert_eq!(tile.halo_cells(), 0);
    }

    #[test]
    fn rect_offsets_are_row_major() {
        let r = TileRect { row0: 2, col0: 3, rows: 2, cols: 4 };
        assert_eq!(r.offset(2, 3), 0);
        assert_eq!(r.offset(2, 6), 3);
        assert_eq!(r.offset(3, 3), 4);
        assert_eq!(r.len(), 8);
        assert_eq!(r.label(), "r2c3_2x4");
    }
}
