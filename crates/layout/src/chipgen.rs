//! Position-deterministic full-chip design generators.
//!
//! The [`DesignSpec`](crate::design::DesignSpec) generators draw their
//! jitter from one sequential RNG stream, so a window's value depends on
//! how many windows were generated before it — fine for whole layouts,
//! useless for tiling, where a tile must be generated without touching
//! the rest of the chip. The [`FullChipSpec`] generators reproduce the
//! same design characters (density ladders, FPGA fabric, SoC macros)
//! but derive every window from a *hash* of `(seed, layer, row, col)`:
//! [`FullChipDesign::generate_tile`] over any region is bitwise equal
//! to cropping [`FullChipDesign::generate`], which is what lets the
//! sharded chip path stream tiles without materializing the chip.
//!
//! Full-scale grids use the paper's chip dimensions at 100 µm windows:
//! A 5×5 cm → 500×500, B 6.7×6.3 cm → 670×630, C 10×10 cm → 1000×1000.

use crate::design::DesignKind;
use crate::grid::Grid;
use crate::layout::Layout;
use crate::tiling::TileRect;
use crate::window::WindowPattern;

/// Parameters of a position-deterministic full-chip design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullChipSpec {
    /// Which benchmark class to generate.
    pub kind: DesignKind,
    /// Chip window rows `N`.
    pub rows: usize,
    /// Chip window columns `M`.
    pub cols: usize,
    /// Hash seed; every window is a pure function of `(spec, l, r, c)`.
    pub seed: u64,
}

impl FullChipSpec {
    /// A spec at an explicit grid size.
    #[must_use]
    pub fn new(kind: DesignKind, rows: usize, cols: usize, seed: u64) -> Self {
        Self { kind, rows, cols, seed }
    }

    /// The paper-scale chip for a design class (100 µm windows).
    #[must_use]
    pub fn full_scale(kind: DesignKind, seed: u64) -> Self {
        let (rows, cols) = match kind {
            DesignKind::CmpTest => (500, 500),
            DesignKind::Fpga => (670, 630),
            DesignKind::RiscV => (1000, 1000),
        };
        Self { kind, rows, cols, seed }
    }

    /// Precomputes the floorplan (macro placement for design C) and
    /// returns a generator handle.
    ///
    /// # Panics
    ///
    /// Panics when `rows` or `cols` is zero.
    #[must_use]
    pub fn build(&self) -> FullChipDesign {
        assert!(self.rows > 0 && self.cols > 0, "chip must be non-empty");
        let macros = match self.kind {
            DesignKind::RiscV => riscv_macros(self),
            _ => Vec::new(),
        };
        FullChipDesign { spec: *self, macros }
    }
}

/// A rectangular macro of the design-C floorplan.
#[derive(Debug, Clone, Copy)]
struct MacroBlock {
    r0: usize,
    c0: usize,
    h: usize,
    w: usize,
    density: f64,
    wmul: f64,
    fillable: f64,
}

/// A buildable full-chip design: the spec plus its precomputed
/// floorplan. Windows are pure functions of position, so tiles can be
/// generated independently and bitwise-consistently.
#[derive(Debug, Clone)]
pub struct FullChipDesign {
    spec: FullChipSpec,
    macros: Vec<MacroBlock>,
}

impl FullChipDesign {
    /// The spec this design was built from.
    #[must_use]
    pub fn spec(&self) -> &FullChipSpec {
        &self.spec
    }

    /// Chip window rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.spec.rows
    }

    /// Chip window columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.spec.cols
    }

    /// Number of metal layers (the paper's three).
    #[must_use]
    pub fn num_layers(&self) -> usize {
        3
    }

    /// The design's name, e.g. `"C-chip"`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}-chip", self.spec.kind.letter())
    }

    /// The window at `(layer, r, c)` — a pure function of position.
    ///
    /// # Panics
    ///
    /// Panics when the position is out of range.
    #[must_use]
    pub fn window(&self, layer: usize, r: usize, c: usize) -> WindowPattern {
        assert!(layer < 3 && r < self.spec.rows && c < self.spec.cols, "position out of range");
        let area = 100.0 * 100.0;
        match self.spec.kind {
            DesignKind::CmpTest => self.cmp_test_window(layer, r, c, area),
            DesignKind::Fpga => self.fpga_window(layer, r, c, area),
            DesignKind::RiscV => self.riscv_window(layer, r, c, area),
        }
    }

    /// Generates the whole chip as one layout.
    #[must_use]
    pub fn generate(&self) -> Layout {
        self.generate_rect(TileRect { row0: 0, col0: 0, rows: self.spec.rows, cols: self.spec.cols })
    }

    /// Generates only the windows of `rect`, named and sized exactly as
    /// [`Layout::crop`] of the monolithic chip would produce.
    ///
    /// # Panics
    ///
    /// Panics when `rect` is empty or exceeds the chip.
    #[must_use]
    pub fn generate_tile(&self, rect: TileRect) -> Layout {
        assert!(!rect.is_empty(), "tile region must be non-empty");
        assert!(
            rect.row_end() <= self.spec.rows && rect.col_end() <= self.spec.cols,
            "tile region {rect:?} exceeds {}x{} chip",
            self.spec.rows,
            self.spec.cols
        );
        let frac = rect.len() as f64 / (self.spec.rows * self.spec.cols) as f64;
        Layout::new(
            format!("{}~{}", self.name(), rect.label()),
            100.0,
            self.rect_layers(rect),
            self.spec.kind.file_size_mb() * frac,
        )
    }

    fn generate_rect(&self, rect: TileRect) -> Layout {
        Layout::new(self.name(), 100.0, self.rect_layers(rect), self.spec.kind.file_size_mb())
    }

    fn rect_layers(&self, rect: TileRect) -> Vec<Grid<WindowPattern>> {
        (0..3)
            .map(|l| {
                Grid::from_fn(rect.rows, rect.cols, |r, c| self.window(l, rect.row0 + r, rect.col0 + c))
            })
            .collect()
    }

    fn jitter(&self, layer: usize, r: usize, c: usize, amount: f64) -> f64 {
        let h = hash4(self.spec.seed ^ chip_salt(self.spec.kind), layer as u64, r as u64, c as u64);
        (unit(h) * 2.0 - 1.0) * amount
    }

    /// Design A: density ladder × linewidth ladder × fill-exclusion
    /// blocks — the same character as
    /// [`design::gen_cmp_test`](crate::design), position-hashed.
    fn cmp_test_window(&self, l: usize, r: usize, c: usize, area: f64) -> WindowPattern {
        let (rows, cols) = (self.spec.rows, self.spec.cols);
        let base_widths = [0.2, 0.25, 0.32];
        let (t, u) = match l {
            0 => (c as f64 / cols as f64, r as f64 / rows as f64),
            1 => (r as f64 / rows as f64, c as f64 / cols as f64),
            _ => (
                ((r + c) % cols.max(1)) as f64 / cols as f64,
                ((r + rows - c % rows) % rows) as f64 / rows as f64,
            ),
        };
        let step = (t * 9.0).floor() / 9.0;
        let density = 0.1 + 0.8 * step + self.jitter(l, r, c, 0.02);
        let wstep = (u * 5.0).floor() / 5.0;
        let width = base_widths[l] * (0.5 + 3.5 * wstep);
        let fillable = match (r / 4 + c / 4) % 3 {
            0 => 0.3,
            1 => 0.6,
            _ => 0.85,
        };
        window(density, width, area, fillable)
    }

    /// Design B: FPGA fabric — logic tiles, routing channels every 8
    /// windows, fill-blocked RAM columns every 16.
    fn fpga_window(&self, l: usize, r: usize, c: usize, area: f64) -> WindowPattern {
        let layer_scale = [1.0, 1.15, 0.8];
        let widths = [0.18, 0.22, 0.4];
        let (base, wmul, fillable) = if c % 16 == 7 || c % 16 == 8 {
            (0.72, 0.7, 0.03)
        } else if r.is_multiple_of(8) || c.is_multiple_of(8) {
            (0.30, 3.0, 0.8)
        } else {
            (0.55, 1.0, 0.12)
        };
        let density = base * layer_scale[l] + self.jitter(l, r, c, 0.03);
        window(density, widths[l] * wmul, area, fillable)
    }

    /// Design C: heterogeneous macros (from the precomputed floorplan)
    /// over a sparse background.
    fn riscv_window(&self, l: usize, r: usize, c: usize, area: f64) -> WindowPattern {
        let layer_scale = [1.0, 1.1, 0.65];
        let widths = [0.16, 0.2, 0.45];
        let mut density: f64 = 0.18;
        let mut wmul: f64 = 4.0;
        let mut fillable: f64 = 0.85;
        for m in &self.macros {
            if r >= m.r0 && r < m.r0 + m.h && c >= m.c0 && c < m.c0 + m.w && m.density > density {
                density = m.density;
                wmul = m.wmul;
                fillable = m.fillable;
            }
        }
        let density = density * layer_scale[l] + self.jitter(l, r, c, 0.04);
        window(density, widths[l] * wmul, area, fillable)
    }
}

/// Same floorplan statistics as the sequential design-C generator, but
/// each macro's geometry is hashed from its index alone.
fn riscv_macros(spec: &FullChipSpec) -> Vec<MacroBlock> {
    let (rows, cols) = (spec.rows, spec.cols);
    let seed = spec.seed ^ chip_salt(spec.kind);
    let n_macros = ((rows * cols) / 64).clamp(3, 24);
    (0..n_macros as u64)
        .map(|k| {
            let h = hash_range(seed, 1, k, rows.max(4) / 4, rows.max(4) / 2);
            let w = hash_range(seed, 2, k, cols.max(4) / 4, cols.max(4) / 2);
            let r0 = hash_range(seed, 3, k, 0, rows.saturating_sub(h).max(1) - 1);
            let c0 = hash_range(seed, 4, k, 0, cols.saturating_sub(w).max(1) - 1);
            let (density, wmul, fillable) = match k % 3 {
                0 => (0.75, 0.8, 0.04),
                1 => (0.55, 1.5, 0.15),
                _ => (0.35, 3.0, 0.6),
            };
            MacroBlock { r0, c0, h, w, density, wmul, fillable }
        })
        .collect()
}

fn chip_salt(kind: DesignKind) -> u64 {
    match kind {
        DesignKind::CmpTest => 0xC41A_11CE,
        DesignKind::Fpga => 0xC41F_96A0,
        DesignKind::RiscV => 0xC415_C0FF,
    }
}

fn window(density: f64, width: f64, area: f64, fillable: f64) -> WindowPattern {
    WindowPattern::from_line_model(density.clamp(0.02, 0.95), width, area, fillable)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash4(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(splitmix64(seed) ^ a) ^ b) ^ c)
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn hash_range(seed: u64, tag: u64, k: u64, lo: usize, hi: usize) -> usize {
    debug_assert!(lo <= hi);
    let span = (hi - lo + 1) as u64;
    lo + (hash4(seed, 0x4AC0, tag, k) % span) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_generation_matches_crop_bitwise() {
        for kind in [DesignKind::CmpTest, DesignKind::Fpga, DesignKind::RiscV] {
            let design = FullChipSpec::new(kind, 24, 20, 9).build();
            let chip = design.generate();
            for rect in [
                TileRect { row0: 0, col0: 0, rows: 24, cols: 20 },
                TileRect { row0: 5, col0: 7, rows: 8, cols: 6 },
                TileRect { row0: 23, col0: 19, rows: 1, cols: 1 },
            ] {
                assert_eq!(design.generate_tile(rect), chip.crop(rect), "{kind:?} {rect:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let d = FullChipSpec::new(DesignKind::RiscV, 16, 16, 3).build();
        assert_eq!(d.generate(), d.generate());
        assert!(d.generate().is_valid());
        assert_eq!(d.generate().num_layers(), 3);
    }

    #[test]
    fn seeds_change_the_chip() {
        let a = FullChipSpec::new(DesignKind::Fpga, 12, 12, 1).build().generate();
        let b = FullChipSpec::new(DesignKind::Fpga, 12, 12, 2).build().generate();
        assert_ne!(a, b);
    }

    #[test]
    fn full_scale_dims_match_paper() {
        assert_eq!(
            (FullChipSpec::full_scale(DesignKind::CmpTest, 0).rows, 500),
            (500, FullChipSpec::full_scale(DesignKind::CmpTest, 0).cols)
        );
        let b = FullChipSpec::full_scale(DesignKind::Fpga, 0);
        assert_eq!((b.rows, b.cols), (670, 630));
        let c = FullChipSpec::full_scale(DesignKind::RiscV, 0);
        assert_eq!((c.rows, c.cols), (1000, 1000));
    }

    #[test]
    fn design_characters_hold_at_chip_scale() {
        let a = FullChipSpec::new(DesignKind::CmpTest, 64, 64, 1).build().generate();
        let dens = a.density_map(0);
        let min = dens.iter().copied().fold(f64::INFINITY, f64::min);
        let max = dens.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 0.2 && max > 0.8, "A range [{min}, {max}]");
        let c = FullChipSpec::new(DesignKind::RiscV, 64, 64, 1).build().generate();
        let d = c.density_map(0);
        let cmin = d.iter().copied().fold(f64::INFINITY, f64::min);
        let cmax = d.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(cmin < 0.3 && cmax > 0.6, "C range [{cmin}, {cmax}]");
    }
}
