//! Synthetic design generators standing in for the paper's three test
//! layouts (§V): A — a CMP test design, B — an FPGA, C — a RISC-V CPU.
//!
//! The generators reproduce the *character* of each design class (density
//! ranges, spatial statistics, repetitiveness) rather than any specific
//! netlist; filling-synthesis difficulty depends only on the density/slack
//! topography. Nominal chip and file sizes are taken from the paper so that
//! the benchmark-related score coefficients (Table II) stay meaningful.

use crate::grid::Grid;
use crate::layout::Layout;
use crate::window::WindowPattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three benchmark design classes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Design A: CMP test design (5 cm × 5 cm, 16.4 MB) — regular
    /// density-ladder test structures.
    CmpTest,
    /// Design B: FPGA (6.7 cm × 6.3 cm, 948.7 MB) — tiled repetitive
    /// fabric with routing channels and RAM columns.
    Fpga,
    /// Design C: RISC-V CPU (10 cm × 10 cm, 80.6 MB) — heterogeneous macro
    /// blocks over a sparse background.
    RiscV,
}

impl DesignKind {
    /// Single-letter name used in the paper's tables.
    #[must_use]
    pub fn letter(self) -> &'static str {
        match self {
            DesignKind::CmpTest => "A",
            DesignKind::Fpga => "B",
            DesignKind::RiscV => "C",
        }
    }

    /// Nominal input file size in MB (paper §V).
    #[must_use]
    pub fn file_size_mb(self) -> f64 {
        match self {
            DesignKind::CmpTest => 16.4,
            DesignKind::Fpga => 948.7,
            DesignKind::RiscV => 80.6,
        }
    }
}

/// Parameters of a synthetic design instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignSpec {
    /// Which benchmark class to generate.
    pub kind: DesignKind,
    /// Number of window rows `N`.
    pub rows: usize,
    /// Number of window columns `M`.
    pub cols: usize,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl DesignSpec {
    /// A spec with the paper's three metal layers and 100 µm windows.
    #[must_use]
    pub fn new(kind: DesignKind, rows: usize, cols: usize, seed: u64) -> Self {
        Self { kind, rows, cols, seed }
    }

    /// Generates the layout.
    ///
    /// # Panics
    ///
    /// Panics when `rows` or `cols` is zero.
    #[must_use]
    pub fn generate(&self) -> Layout {
        assert!(self.rows > 0 && self.cols > 0);
        let mut rng = StdRng::seed_from_u64(self.seed ^ design_salt(self.kind));
        let window_um = 100.0;
        let area = window_um * window_um;
        let layers = match self.kind {
            DesignKind::CmpTest => gen_cmp_test(self.rows, self.cols, area, &mut rng),
            DesignKind::Fpga => gen_fpga(self.rows, self.cols, area, &mut rng),
            DesignKind::RiscV => gen_riscv(self.rows, self.cols, area, &mut rng),
        };
        Layout::new(self.kind.letter(), window_um, layers, self.kind.file_size_mb())
    }
}

fn design_salt(kind: DesignKind) -> u64 {
    match kind {
        DesignKind::CmpTest => 0xA11C_E0DE,
        DesignKind::Fpga => 0xF9_6A00,
        DesignKind::RiscV => 0x5C_0FFE,
    }
}

fn jitter(rng: &mut StdRng, amount: f64) -> f64 {
    rng.gen_range(-amount..=amount)
}

fn window(density: f64, width: f64, area: f64, fillable: f64) -> WindowPattern {
    WindowPattern::from_line_model(density.clamp(0.02, 0.95), width, area, fillable)
}

/// Design A: vertical density-ladder stripes (0.1 → 0.9), orientation
/// rotating per layer, crossed with an orthogonal feature-width ladder —
/// the classic CMP characterization pattern (density × linewidth matrix).
///
/// The width ladder matters: dishing depends on feature width, so windows
/// of equal density but different width polish to different heights. That
/// heterogeneity is what model-based filling can compensate and rule-based
/// filling cannot (the paper's Table III gap).
fn gen_cmp_test(rows: usize, cols: usize, area: f64, rng: &mut StdRng) -> Vec<Grid<WindowPattern>> {
    let base_widths = [0.2, 0.25, 0.32];
    (0..3)
        .map(|l| {
            Grid::from_fn(rows, cols, |r, c| {
                // Stripe index along the layer-dependent orientation.
                let (t, u) = match l {
                    0 => (c as f64 / cols as f64, r as f64 / rows as f64),
                    1 => (r as f64 / rows as f64, c as f64 / cols as f64),
                    _ => (
                        ((r + c) % cols.max(1)) as f64 / cols as f64,
                        ((r + rows - c % rows) % rows) as f64 / rows as f64,
                    ),
                };
                let step = (t * 9.0).floor() / 9.0;
                let density = 0.1 + 0.8 * step + jitter(rng, 0.02);
                // Orthogonal linewidth ladder: 0.5x .. 4x the layer width.
                let wstep = (u * 5.0).floor() / 5.0;
                let width = base_widths[l] * (0.5 + 3.5 * wstep);
                // Fill-exclusion ladder: alternating blocks of the test
                // matrix forbid filling (scribe/measurement structures).
                let fillable = match (r / 4 + c / 4) % 3 {
                    0 => 0.3,
                    1 => 0.6,
                    _ => 0.85,
                };
                window(density, width, area, fillable)
            })
        })
        .collect()
}

/// Design B: tiled FPGA fabric — logic tiles, routing channels every 8
/// windows, RAM columns every 16, highly repetitive.
fn gen_fpga(rows: usize, cols: usize, area: f64, rng: &mut StdRng) -> Vec<Grid<WindowPattern>> {
    let layer_scale = [1.0, 1.15, 0.8];
    let widths = [0.18, 0.22, 0.4];
    (0..3)
        .map(|l| {
            Grid::from_fn(rows, cols, |r, c| {
                // (density, width multiplier, fillable) per tile type: RAM
                // arrays are fill-blocked, congested logic nearly so,
                // routing channels are where fill can actually go.
                let (base, wmul, fillable) = if c % 16 == 7 || c % 16 == 8 {
                    (0.72, 0.7, 0.03) // RAM column (fill-blocked)
                } else if r % 8 == 0 || c % 8 == 0 {
                    (0.30, 3.0, 0.8) // routing channel
                } else {
                    (0.55, 1.0, 0.12) // logic tile (congested)
                };
                let density = base * layer_scale[l] + jitter(rng, 0.03);
                window(density, widths[l] * wmul, area, fillable)
            })
        })
        .collect()
}

/// Design C: heterogeneous SoC floorplan — cache macros, datapath blocks
/// and sparse periphery over a low-density background.
fn gen_riscv(rows: usize, cols: usize, area: f64, rng: &mut StdRng) -> Vec<Grid<WindowPattern>> {
    // Shared floorplan across layers: rectangular macros.
    #[derive(Clone, Copy)]
    struct Macro {
        r0: usize,
        c0: usize,
        h: usize,
        w: usize,
        density: f64,
        wmul: f64,
        fillable: f64,
    }
    let n_macros = ((rows * cols) / 64).clamp(3, 24);
    let mut macros = Vec::with_capacity(n_macros);
    for k in 0..n_macros {
        let h = rng.gen_range(rows.max(4) / 4..=rows.max(4) / 2);
        let w = rng.gen_range(cols.max(4) / 4..=cols.max(4) / 2);
        let r0 = rng.gen_range(0..rows.saturating_sub(h).max(1));
        let c0 = rng.gen_range(0..cols.saturating_sub(w).max(1));
        // (density, width multiplier, fillable): caches dense, narrow and
        // fill-blocked; datapath mid; periphery sparse with wide power
        // routing and plenty of fill room.
        let (density, wmul, fillable) = match k % 3 {
            0 => (0.75, 0.8, 0.04), // cache array (fill-blocked)
            1 => (0.55, 1.5, 0.15), // datapath
            _ => (0.35, 3.0, 0.6),  // control / periphery
        };
        macros.push(Macro { r0, c0, h, w, density, wmul, fillable });
    }
    let layer_scale = [1.0, 1.1, 0.65];
    let widths = [0.16, 0.2, 0.45];
    (0..3)
        .map(|l| {
            Grid::from_fn(rows, cols, |r, c| {
                let mut density: f64 = 0.18; // sparse background
                let mut wmul: f64 = 4.0; // background carries wide power mesh
                let mut fillable: f64 = 0.85; // open background
                for m in &macros {
                    if r >= m.r0 && r < m.r0 + m.h && c >= m.c0 && c < m.c0 + m.w && m.density > density
                    {
                        density = m.density;
                        wmul = m.wmul;
                        fillable = m.fillable;
                    }
                }
                let density = density * layer_scale[l] + jitter(rng, 0.04);
                window(density, widths[l] * wmul, area, fillable)
            })
        })
        .collect()
}

/// Convenience constructors for the three benchmark designs at a given grid
/// size.
#[must_use]
pub fn benchmark_designs(rows: usize, cols: usize, seed: u64) -> Vec<Layout> {
    [DesignKind::CmpTest, DesignKind::Fpga, DesignKind::RiscV]
        .into_iter()
        .map(|kind| DesignSpec::new(kind, rows, cols, seed).generate())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_generate_valid_layouts() {
        for l in benchmark_designs(16, 16, 42) {
            assert!(l.is_valid(), "design {} invalid", l.name());
            assert_eq!(l.num_layers(), 3);
            assert_eq!(l.rows(), 16);
            assert_eq!(l.cols(), 16);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DesignSpec::new(DesignKind::Fpga, 12, 12, 7).generate();
        let b = DesignSpec::new(DesignKind::Fpga, 12, 12, 7).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn designs_differ_from_each_other() {
        let d = benchmark_designs(12, 12, 7);
        assert_ne!(d[0].density_map(0), d[1].density_map(0));
        assert_ne!(d[1].density_map(0), d[2].density_map(0));
    }

    #[test]
    fn cmp_test_has_wide_density_range() {
        let a = DesignSpec::new(DesignKind::CmpTest, 32, 32, 1).generate();
        let dens = a.density_map(0);
        let min = dens.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = dens.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 0.2, "min {min}");
        assert!(max > 0.8, "max {max}");
    }

    #[test]
    fn fpga_is_repetitive_across_tiles() {
        let b = DesignSpec::new(DesignKind::Fpga, 32, 32, 1).generate();
        let d = b.density_map(0);
        // Logic windows (away from channels) share the same base density.
        let v1 = d[3 * 32 + 3];
        let v2 = d[11 * 32 + 11];
        assert!((v1 - v2).abs() < 0.1, "{v1} vs {v2}");
    }

    #[test]
    fn riscv_has_dense_macros_and_sparse_background() {
        let c = DesignSpec::new(DesignKind::RiscV, 32, 32, 1).generate();
        let d = c.density_map(0);
        let min = d.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 0.3, "background min {min}");
        assert!(max > 0.6, "macro max {max}");
    }

    #[test]
    fn file_sizes_match_paper() {
        assert_eq!(DesignKind::CmpTest.file_size_mb(), 16.4);
        assert_eq!(DesignKind::Fpga.file_size_mb(), 948.7);
        assert_eq!(DesignKind::RiscV.file_size_mb(), 80.6);
    }
}
