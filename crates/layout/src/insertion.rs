//! Filling **insertion**: turning per-window fill *areas* (the output of
//! filling synthesis) into actual dummy rectangles (paper §I: "the latter
//! determines the shapes, locations of dummies in these windows").
//!
//! The inserter places square dummies on a regular grid inside each
//! window, skipping positions that violate spacing rules against existing
//! wires or other dummies, until the synthesized area is realized (or the
//! window runs out of legal positions — reported as shortfall).

use crate::geometry::{LayerGeometry, Rect};
use crate::layout::{Layout, WindowId};
use crate::FillPlan;

/// Design rules of dummy insertion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertionRules {
    /// Edge length of one square dummy (µm).
    pub edge_um: f64,
    /// Minimum dummy-to-dummy spacing (µm).
    pub spacing_um: f64,
    /// Minimum dummy-to-wire spacing (µm).
    pub wire_margin_um: f64,
}

impl Default for InsertionRules {
    fn default() -> Self {
        Self { edge_um: 2.0, spacing_um: 0.5, wire_margin_um: 0.5 }
    }
}

/// Places square dummies inside `window`, avoiding `blocked` shapes
/// (inflated by the wire margin), until `target_area` µm² is placed or the
/// window is exhausted. Returns the placed rectangles.
///
/// # Panics
///
/// Panics in debug builds when the rules are non-positive.
#[must_use]
pub fn insert_dummies(
    window: &Rect,
    blocked: &[Rect],
    target_area: f64,
    rules: &InsertionRules,
) -> Vec<Rect> {
    debug_assert!(rules.edge_um > 0.0 && rules.spacing_um >= 0.0 && rules.wire_margin_um >= 0.0);
    if target_area <= 0.0 {
        return Vec::new();
    }
    let pitch = rules.edge_um + rules.spacing_um;
    let dummy_area = rules.edge_um * rules.edge_um;
    let need = (target_area / dummy_area).round() as usize;
    let cols = ((window.width() - rules.spacing_um) / pitch).floor().max(0.0) as usize;
    let rows = ((window.height() - rules.spacing_um) / pitch).floor().max(0.0) as usize;
    let mut placed = Vec::with_capacity(need.min(rows * cols));
    'grid: for r in 0..rows {
        for c in 0..cols {
            if placed.len() >= need {
                break 'grid;
            }
            let x0 = window.x0 + rules.spacing_um + c as f64 * pitch;
            let y0 = window.y0 + rules.spacing_um + r as f64 * pitch;
            let candidate = Rect::new(x0, y0, x0 + rules.edge_um, y0 + rules.edge_um);
            if candidate.x1 > window.x1 || candidate.y1 > window.y1 {
                continue;
            }
            let clear = blocked.iter().all(|b| !candidate.overlaps(&b.inflate(rules.wire_margin_um)));
            if clear {
                placed.push(candidate);
            }
        }
    }
    placed
}

/// Multi-size insertion: tries the nominal dummy size first, then falls
/// back to progressively smaller dummies (halving the edge, scaling the
/// spacing rules proportionally) for whatever area is still missing — the
/// strategy real fill flows use in congested windows.
///
/// `min_edge_um` bounds the fallback; returns all placed rectangles.
#[must_use]
pub fn insert_dummies_multisize(
    window: &Rect,
    blocked: &[Rect],
    target_area: f64,
    rules: &InsertionRules,
    min_edge_um: f64,
) -> Vec<Rect> {
    let mut placed: Vec<Rect> = Vec::new();
    let mut remaining = target_area;
    let mut edge = rules.edge_um;
    while remaining > 0.0 && edge >= min_edge_um {
        let scale = edge / rules.edge_um;
        let level_rules = InsertionRules {
            edge_um: edge,
            spacing_um: rules.spacing_um * scale,
            wire_margin_um: rules.wire_margin_um * scale,
        };
        // Earlier-placed dummies are obstacles for the next size level.
        let mut obstacles: Vec<Rect> = blocked.to_vec();
        obstacles.extend(placed.iter().copied());
        let level = insert_dummies(window, &obstacles, remaining, &level_rules);
        let got: f64 = level.iter().map(Rect::area).sum();
        placed.extend(level);
        remaining -= got;
        edge *= 0.5;
    }
    placed
}

/// Synthesizes a plausible wire pattern for one window from its extracted
/// parameters: a densely routed band (local density ≈ 0.85) on the left of
/// the window sized to realize the window's average density, leaving an
/// open field on the right — the region window-level *slack* refers to.
#[must_use]
pub fn wires_for_pattern(window: &Rect, density: f64, width: f64) -> Vec<Rect> {
    if density <= 0.0 || width <= 0.0 {
        return Vec::new();
    }
    let density = density.min(0.95);
    let local = density.max(0.85); // in-band density
    let band_width = window.width() * density / local;
    let pitch = width / local;
    let n = (band_width / pitch).floor() as usize;
    (0..n)
        .map(|i| {
            let x0 = window.x0 + i as f64 * pitch;
            Rect::new(x0, window.y0, (x0 + width).min(window.x1), window.y1)
        })
        .collect()
}

/// Per-window insertion outcome.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowInsertion {
    /// Requested fill area (µm²).
    pub requested: f64,
    /// Actually placed dummy area (µm²).
    pub placed: f64,
    /// Number of dummy rectangles placed.
    pub count: usize,
}

/// Whole-chip insertion result: the realized geometry plus bookkeeping.
#[derive(Debug)]
pub struct InsertionReport {
    /// One geometry per layer (wires + dummies).
    pub layers: Vec<LayerGeometry>,
    /// Per-window outcomes in flat window order.
    pub windows: Vec<WindowInsertion>,
}

impl InsertionReport {
    /// Total placed dummy area (µm²).
    #[must_use]
    pub fn total_placed(&self) -> f64 {
        self.windows.iter().map(|w| w.placed).sum()
    }

    /// Total requested fill area (µm²).
    #[must_use]
    pub fn total_requested(&self) -> f64 {
        self.windows.iter().map(|w| w.requested).sum()
    }

    /// Fraction of the requested area that was realized.
    #[must_use]
    pub fn realization_ratio(&self) -> f64 {
        let req = self.total_requested();
        if req > 0.0 {
            self.total_placed() / req
        } else {
            1.0
        }
    }

    /// Total number of placed dummy shapes.
    #[must_use]
    pub fn dummy_count(&self) -> usize {
        self.windows.iter().map(|w| w.count).sum()
    }
}

/// Realizes a synthesized fill plan as rectangles over the whole layout:
/// wires are synthesized from each window's pattern, then dummies are
/// inserted per the plan under the given rules.
///
/// # Panics
///
/// Panics when the plan length disagrees with the layout.
#[must_use]
pub fn realize_fill(layout: &Layout, plan: &FillPlan, rules: &InsertionRules) -> InsertionReport {
    assert_eq!(plan.as_slice().len(), layout.num_windows(), "plan length mismatch");
    let w_um = layout.window_um();
    let mut layers = Vec::with_capacity(layout.num_layers());
    let mut windows = vec![WindowInsertion::default(); layout.num_windows()];
    for l in 0..layout.num_layers() {
        let mut geom = LayerGeometry::new();
        for row in 0..layout.rows() {
            for col in 0..layout.cols() {
                let id = WindowId { layer: l, row, col };
                let k = layout.flat_index(id);
                let pat = layout.window(id);
                let win_rect = Rect::new(
                    col as f64 * w_um,
                    row as f64 * w_um,
                    (col + 1) as f64 * w_um,
                    (row + 1) as f64 * w_um,
                );
                let wires = wires_for_pattern(&win_rect, pat.density, pat.avg_width);
                let requested = plan.amount(k).clamp(0.0, pat.slack);
                let dummies = insert_dummies(&win_rect, &wires, requested, rules);
                let placed: f64 = dummies.iter().map(Rect::area).sum();
                windows[k] = WindowInsertion { requested, placed, count: dummies.len() };
                for wire in wires {
                    geom.add_wire(wire);
                }
                for d in dummies {
                    geom.add_dummy(d);
                }
            }
        }
        layers.push(geom);
    }
    InsertionReport { layers, windows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignKind, DesignSpec};

    #[test]
    fn places_requested_area_in_empty_window() {
        let window = Rect::new(0.0, 0.0, 100.0, 100.0);
        let rules = InsertionRules::default();
        let placed = insert_dummies(&window, &[], 400.0, &rules);
        let area: f64 = placed.iter().map(Rect::area).sum();
        assert!((area - 400.0).abs() < rules.edge_um * rules.edge_um + 1e-9, "area {area}");
        assert_eq!(placed.len(), 100);
    }

    #[test]
    fn zero_request_places_nothing() {
        let window = Rect::new(0.0, 0.0, 100.0, 100.0);
        assert!(insert_dummies(&window, &[], 0.0, &InsertionRules::default()).is_empty());
    }

    #[test]
    fn dummies_stay_inside_window_and_clear_of_wires() {
        let window = Rect::new(0.0, 0.0, 50.0, 50.0);
        let wires = vec![Rect::new(20.0, 0.0, 25.0, 50.0)];
        let rules = InsertionRules::default();
        let placed = insert_dummies(&window, &wires, 2000.0, &rules);
        assert!(!placed.is_empty());
        for d in &placed {
            assert!(d.x0 >= window.x0 && d.x1 <= window.x1);
            assert!(d.y0 >= window.y0 && d.y1 <= window.y1);
            for w in &wires {
                assert!(!d.overlaps(&w.inflate(rules.wire_margin_um)), "{d:?} too close to {w:?}");
            }
        }
    }

    #[test]
    fn dummies_never_overlap_each_other() {
        let window = Rect::new(0.0, 0.0, 30.0, 30.0);
        let placed = insert_dummies(&window, &[], 1e9, &InsertionRules::default());
        for (i, a) in placed.iter().enumerate() {
            for b in placed.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn multisize_outplaces_single_size_in_congested_window() {
        // A picket fence of wires with gaps too small for 2 µm dummies but
        // big enough for 1 µm ones.
        let window = Rect::new(0.0, 0.0, 40.0, 40.0);
        let mut wires = Vec::new();
        let mut x = 0.0;
        while x < 40.0 {
            wires.push(Rect::new(x, 0.0, (x + 1.0).min(40.0), 40.0));
            x += 4.0; // 3 µm gaps: 2 µm dummy + 2×0.5 margin does not fit
        }
        let rules = InsertionRules { edge_um: 2.0, spacing_um: 0.5, wire_margin_um: 0.5 };
        let single = insert_dummies(&window, &wires, 200.0, &rules);
        let multi = insert_dummies_multisize(&window, &wires, 200.0, &rules, 0.5);
        let area = |v: &[Rect]| v.iter().map(Rect::area).sum::<f64>();
        assert!(area(&multi) > area(&single), "{} !> {}", area(&multi), area(&single));
        // Placed shapes still respect wires and each other.
        for (i, d) in multi.iter().enumerate() {
            for w in &wires {
                assert!(!d.overlaps(w), "{d:?} on wire");
            }
            for other in multi.iter().skip(i + 1) {
                assert!(!d.overlaps(other));
            }
        }
    }

    #[test]
    fn multisize_equals_single_size_in_open_window() {
        let window = Rect::new(0.0, 0.0, 50.0, 50.0);
        let rules = InsertionRules::default();
        let single = insert_dummies(&window, &[], 500.0, &rules);
        let multi = insert_dummies_multisize(&window, &[], 500.0, &rules, 0.5);
        let area = |v: &[Rect]| v.iter().map(Rect::area).sum::<f64>();
        // Open windows satisfy the request at the first (nominal) level.
        assert!((area(&multi) - area(&single)).abs() <= rules.edge_um * rules.edge_um);
    }

    #[test]
    fn wires_realize_requested_density() {
        let window = Rect::new(0.0, 0.0, 100.0, 100.0);
        for density in [0.1, 0.3, 0.6] {
            let wires = wires_for_pattern(&window, density, 0.2);
            let area: f64 = wires.iter().map(Rect::area).sum();
            let realized = area / window.area();
            assert!((realized - density).abs() < 0.05, "target {density}, got {realized}");
        }
        assert!(wires_for_pattern(&window, 0.0, 0.2).is_empty());
    }

    #[test]
    fn realize_fill_matches_plan_approximately() {
        let layout = DesignSpec::new(DesignKind::Fpga, 4, 4, 5).generate();
        let mut plan = FillPlan::zeros(&layout);
        for (x, s) in plan.as_mut_slice().iter_mut().zip(layout.slack_vector()) {
            *x = 0.4 * s;
        }
        let report = realize_fill(&layout, &plan, &InsertionRules::default());
        assert_eq!(report.layers.len(), 3);
        // Most of the requested area can actually be placed.
        assert!(
            report.realization_ratio() > 0.6,
            "only {:.2} of requested area placed",
            report.realization_ratio()
        );
        assert!(report.dummy_count() > 0);
        assert!(report.total_placed() <= report.total_requested() + 16.0);
    }

    #[test]
    fn realized_geometry_extraction_is_consistent_with_windows() {
        // Closing the loop: window stats extracted from realized rectangles
        // must approximate the grid-level pattern parameters.
        let layout = DesignSpec::new(DesignKind::CmpTest, 4, 4, 2).generate();
        let plan = FillPlan::zeros(&layout);
        let report = realize_fill(&layout, &plan, &InsertionRules::default());
        let w_um = layout.window_um();
        for row in 0..4 {
            for col in 0..4 {
                let id = WindowId { layer: 0, row, col };
                let pat = layout.window(id);
                let rect = Rect::new(
                    col as f64 * w_um,
                    row as f64 * w_um,
                    (col + 1) as f64 * w_um,
                    (row + 1) as f64 * w_um,
                );
                let stats = report.layers[0].window_stats(&rect);
                let realized_density = stats.area / rect.area();
                assert!(
                    (realized_density - pat.density).abs() < 0.06,
                    "window ({row},{col}): density {} vs {}",
                    realized_density,
                    pat.density
                );
            }
        }
    }
}
