//! Per-window pattern parameters extracted from a layout.

/// Pattern parameters of one filling window (paper §II-B: a layout is
/// divided into `L × N × M` windows, each typically 100 µm × 100 µm).
///
/// All areas are in µm², lengths in µm. `density` is the copper/metal area
/// fraction in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPattern {
    /// Metal (copper) area fraction of the window, in `[0, 1]`.
    pub density: f64,
    /// Total copper perimeter inside the window (µm).
    pub perimeter: f64,
    /// Average copper feature width (µm).
    pub avg_width: f64,
    /// Fillable slack area (µm²): empty area minus design-rule margins.
    pub slack: f64,
}

impl WindowPattern {
    /// Creates a window from density and feature width, deriving perimeter
    /// and slack with the parallel-line model used by the synthetic
    /// designs: lines of width `w` at pitch `w/ρ` give a perimeter of
    /// `2·area·ρ/w`.
    ///
    /// `fillable_fraction` is the share of the empty area that design rules
    /// allow to be filled.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when arguments are out of range.
    #[must_use]
    pub fn from_line_model(
        density: f64,
        avg_width: f64,
        window_area: f64,
        fillable_fraction: f64,
    ) -> Self {
        debug_assert!((0.0..=1.0).contains(&density));
        debug_assert!(avg_width > 0.0 && window_area > 0.0);
        debug_assert!((0.0..=1.0).contains(&fillable_fraction));
        let perimeter = 2.0 * window_area * density / avg_width;
        let slack = window_area * (1.0 - density) * fillable_fraction;
        Self { density, perimeter, avg_width, slack }
    }

    /// An empty window (no copper, fully fillable except margins).
    #[must_use]
    pub fn empty(window_area: f64, fillable_fraction: f64) -> Self {
        Self { density: 0.0, perimeter: 0.0, avg_width: 0.1, slack: window_area * fillable_fraction }
    }

    /// Checks internal invariants; used by validation and property tests.
    #[must_use]
    pub fn is_valid(&self, window_area: f64) -> bool {
        (0.0..=1.0).contains(&self.density)
            && self.perimeter >= 0.0
            && self.avg_width > 0.0
            && self.slack >= 0.0
            && self.slack <= window_area * (1.0 - self.density) + 1e-9 * window_area
    }
}

impl Default for WindowPattern {
    fn default() -> Self {
        Self { density: 0.0, perimeter: 0.0, avg_width: 0.1, slack: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_model_perimeter() {
        // area 10000 µm², ρ = 0.5, w = 0.2 µm ⇒ perimeter = 2·10000·0.5/0.2.
        let w = WindowPattern::from_line_model(0.5, 0.2, 10_000.0, 0.8);
        assert!((w.perimeter - 50_000.0).abs() < 1e-6);
        assert!((w.slack - 4000.0).abs() < 1e-6);
        assert!(w.is_valid(10_000.0));
    }

    #[test]
    fn empty_window_is_valid() {
        let w = WindowPattern::empty(10_000.0, 0.8);
        assert!(w.is_valid(10_000.0));
        assert_eq!(w.density, 0.0);
        assert_eq!(w.slack, 8000.0);
    }

    #[test]
    fn invalid_when_slack_exceeds_empty_area() {
        let w = WindowPattern { density: 0.9, perimeter: 0.0, avg_width: 0.1, slack: 5000.0 };
        assert!(!w.is_valid(10_000.0));
    }
}
