//! Two-step random training-data generation (paper §IV-F, Fig. 8).
//!
//! Step 1 assembles new layouts by randomly re-sampling window *column
//! stacks* (all `L` layers at one grid position, keeping the vertical
//! structure that the slack-type decomposition needs) from a pool of source
//! layouts. Step 2 inserts random dummies with no design-rule violation
//! (i.e. within each window's slack).

use crate::fill::{apply_fill, DummySpec, FillPlan};
use crate::layout::{Layout, WindowId};
use crate::window::WindowPattern;
use crate::Grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the two-step random procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct DataGenConfig {
    /// Rows of the generated layouts (the UNet's fixed input height).
    pub rows: usize,
    /// Columns of the generated layouts.
    pub cols: usize,
    /// Probability that a window receives random dummies in step 2.
    pub fill_probability: f64,
    /// Dummy geometry used in step 2.
    pub dummy: DummySpec,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        Self { rows: 32, cols: 32, fill_probability: 0.5, dummy: DummySpec::default(), seed: 0 }
    }
}

/// Generates training layouts from source layouts using the two-step
/// random procedure.
#[derive(Debug)]
pub struct TrainingLayoutGenerator {
    sources: Vec<Layout>,
    config: DataGenConfig,
    rng: StdRng,
}

impl TrainingLayoutGenerator {
    /// Creates a generator over a pool of source layouts.
    ///
    /// # Panics
    ///
    /// Panics when `sources` is empty or the sources disagree in layer
    /// count or window size.
    #[must_use]
    pub fn new(sources: Vec<Layout>, config: DataGenConfig) -> Self {
        assert!(!sources.is_empty(), "need at least one source layout");
        let l = sources[0].num_layers();
        let w = sources[0].window_um();
        for s in &sources {
            assert_eq!(s.num_layers(), l, "source layer counts disagree");
            assert!((s.window_um() - w).abs() < 1e-9, "source window sizes disagree");
        }
        let rng = StdRng::seed_from_u64(config.seed);
        Self { sources, config, rng }
    }

    /// Step 1: assembles one layout by sampling window stacks from the
    /// sources.
    pub fn assemble(&mut self) -> Layout {
        let l = self.sources[0].num_layers();
        let (rows, cols) = (self.config.rows, self.config.cols);
        // Sample a source + position for every target cell.
        let mut picks = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            let s = self.rng.gen_range(0..self.sources.len());
            let src = &self.sources[s];
            let r = self.rng.gen_range(0..src.rows());
            let c = self.rng.gen_range(0..src.cols());
            picks.push((s, r, c));
        }
        let layers: Vec<Grid<WindowPattern>> = (0..l)
            .map(|layer| {
                Grid::from_fn(rows, cols, |r, c| {
                    let (s, sr, sc) = picks[r * cols + c];
                    *self.sources[s].window(WindowId { layer, row: sr, col: sc })
                })
            })
            .collect();
        Layout::new("assembled", self.sources[0].window_um(), layers, 0.0)
    }

    /// Step 2: inserts random dummies (within slack) into `layout`,
    /// returning the filled layout and the plan used.
    ///
    /// Two fill styles alternate, so training covers both the spatially
    /// white fills of random exploration *and* the spatially structured
    /// fills the SQP optimizer actually visits (the paper's stated goal:
    /// "training instances that are close to the layouts neural networks
    /// may process in the filling optimization"):
    ///
    /// * *white*: each window independently receives a uniform random
    ///   fraction of its slack;
    /// * *structured*: all windows of a layer fill toward a shared random
    ///   target density (the Eq. 18 family that PKB/SQP trajectories
    ///   resemble), plus per-window jitter.
    pub fn randomize_fill(&mut self, layout: &Layout) -> (Layout, FillPlan) {
        let mut plan = FillPlan::zeros(layout);
        let slack = layout.slack_vector();
        if self.rng.gen_bool(0.5) {
            // White fill with a random global amplitude, so sparse and
            // dense random fills (and the unfilled layout itself) all
            // appear in training.
            let amplitude: f64 = self.rng.gen_range(0.0..=1.0);
            for (a, s) in plan.as_mut_slice().iter_mut().zip(slack) {
                if s > 0.0 && self.rng.gen_bool(self.config.fill_probability) {
                    *a = self.rng.gen_range(0.0..=amplitude * s);
                }
            }
        } else {
            // Structured (target-density) fill with jitter. The target
            // range starts at the layer's minimum density, so the low end
            // produces (near-)empty plans.
            let area = layout.window_area();
            let td: Vec<f64> = (0..layout.num_layers())
                .map(|l| {
                    let lo = layout.layer(l).iter().map(|w| w.density).fold(f64::INFINITY, f64::min);
                    let hi =
                        layout.layer(l).iter().map(|w| w.density + w.slack / area).fold(lo, f64::max);
                    self.rng.gen_range(lo..=hi)
                })
                .collect();
            for id in layout.window_ids() {
                let w = layout.window(id);
                let target = td[id.layer];
                let base =
                    if target <= w.density { 0.0 } else { ((target - w.density) * area).min(w.slack) };
                let jitter = self.rng.gen_range(0.8..=1.2);
                plan.as_mut_slice()[layout.flat_index(id)] = (base * jitter).min(w.slack);
            }
        }
        (apply_fill(layout, &plan, &self.config.dummy), plan)
    }

    /// Runs both steps `n` times, producing `n` randomly filled layouts.
    pub fn generate(&mut self, n: usize) -> Vec<Layout> {
        (0..n)
            .map(|_| {
                let base = self.assemble();
                self.randomize_fill(&base).0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{benchmark_designs, DesignKind, DesignSpec};

    fn generator() -> TrainingLayoutGenerator {
        let sources = benchmark_designs(12, 12, 3);
        TrainingLayoutGenerator::new(
            sources,
            DataGenConfig { rows: 8, cols: 8, fill_probability: 0.6, ..DataGenConfig::default() },
        )
    }

    #[test]
    fn assembled_layout_has_requested_dims() {
        let mut g = generator();
        let l = g.assemble();
        assert_eq!((l.rows(), l.cols(), l.num_layers()), (8, 8, 3));
        assert!(l.is_valid());
    }

    #[test]
    fn assembled_windows_come_from_sources() {
        let mut g = generator();
        let l = g.assemble();
        // Every window density must appear somewhere in a source layer.
        let mut source_densities: Vec<f64> = Vec::new();
        for s in benchmark_designs(12, 12, 3) {
            for layer in 0..3 {
                source_densities.extend(s.density_map(layer));
            }
        }
        for layer in 0..3 {
            for d in l.density_map(layer) {
                assert!(
                    source_densities.iter().any(|&sd| (sd - d).abs() < 1e-12),
                    "density {d} not found in sources"
                );
            }
        }
    }

    #[test]
    fn randomized_fill_is_design_rule_clean() {
        let mut g = generator();
        let base = g.assemble();
        let (filled, plan) = g.randomize_fill(&base);
        assert!(plan.is_feasible(&base, 1e-9));
        assert!(filled.is_valid());
        assert!(plan.total() > 0.0, "with p=0.6 some window should fill");
    }

    #[test]
    fn generate_is_deterministic_under_seed() {
        let sources = vec![DesignSpec::new(DesignKind::CmpTest, 10, 10, 1).generate()];
        let cfg = DataGenConfig { rows: 6, cols: 6, seed: 9, ..DataGenConfig::default() };
        let a = TrainingLayoutGenerator::new(sources.clone(), cfg.clone()).generate(3);
        let b = TrainingLayoutGenerator::new(sources, cfg).generate(3);
        assert_eq!(a, b);
    }

    #[test]
    fn generate_produces_distinct_instances() {
        let mut g = generator();
        let batch = g.generate(4);
        assert_eq!(batch.len(), 4);
        assert_ne!(batch[0], batch[1]);
    }
}
