//! Rectangle-level geometry: the GDS-like layer beneath the window-grid
//! abstraction.
//!
//! Filling *synthesis* (this repository's core) decides per-window fill
//! areas; filling *insertion* (paper §I: "the latter determines the
//! shapes, locations of dummies in these windows") turns those areas into
//! actual rectangles. This module provides the rectangle primitives, the
//! window-statistics extractor that turns drawn geometry into
//! [`crate::WindowPattern`]s, and the slack-region bookkeeping the
//! inserter uses.

/// An axis-aligned rectangle in chip coordinates (µm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge (µm).
    pub x0: f64,
    /// Bottom edge (µm).
    pub y0: f64,
    /// Right edge (µm).
    pub x1: f64,
    /// Top edge (µm).
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle from two corners, normalizing the order.
    #[must_use]
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self { x0: x0.min(x1), y0: y0.min(y1), x1: x0.max(x1), y1: y0.max(y1) }
    }

    /// Width (µm).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height (µm).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area (µm²).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter (µm).
    #[must_use]
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Whether the rectangle is empty (zero area).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.width() <= 0.0 || self.height() <= 0.0
    }

    /// Intersection with another rectangle, if non-empty.
    #[must_use]
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        };
        if r.is_empty() {
            None
        } else {
            Some(r)
        }
    }

    /// Whether this rectangle overlaps another (positive-area overlap).
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// The rectangle grown by `margin` on every side (negative shrinks;
    /// may produce an empty rectangle).
    #[must_use]
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect { x0: self.x0 - margin, y0: self.y0 - margin, x1: self.x1 + margin, y1: self.y1 + margin }
    }
}

/// One drawn shape on a layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shape {
    /// The rectangle.
    pub rect: Rect,
    /// Whether this shape is a dummy (inserted fill) rather than signal
    /// wire.
    pub is_dummy: bool,
}

/// Rectangle-level content of one layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerGeometry {
    shapes: Vec<Shape>,
}

impl LayerGeometry {
    /// Creates an empty layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a signal wire rectangle.
    pub fn add_wire(&mut self, rect: Rect) {
        self.shapes.push(Shape { rect, is_dummy: false });
    }

    /// Adds a dummy rectangle.
    pub fn add_dummy(&mut self, rect: Rect) {
        self.shapes.push(Shape { rect, is_dummy: true });
    }

    /// All shapes.
    #[must_use]
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Number of shapes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether the layer has no shapes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Number of dummy shapes.
    #[must_use]
    pub fn dummy_count(&self) -> usize {
        self.shapes.iter().filter(|s| s.is_dummy).count()
    }

    /// Total drawn area clipped to `clip` (µm²). Overlapping shapes are
    /// counted once only if they do not overlap each other — the
    /// generators and inserter in this crate never draw overlapping
    /// shapes on one layer.
    #[must_use]
    pub fn area_in(&self, clip: &Rect) -> f64 {
        self.shapes.iter().filter_map(|s| s.rect.intersect(clip)).map(|r| r.area()).sum()
    }

    /// Statistics of the geometry clipped to one window: `(area,
    /// perimeter, area-weighted width)` — the quantities behind
    /// [`crate::WindowPattern`].
    ///
    /// Perimeter counts only the clipped part's boundary that lies inside
    /// the window (the simplification used by window-level extraction).
    #[must_use]
    pub fn window_stats(&self, window: &Rect) -> WindowStats {
        let mut area = 0.0;
        let mut perimeter = 0.0;
        let mut width_weighted = 0.0;
        for s in &self.shapes {
            if let Some(r) = s.rect.intersect(window) {
                area += r.area();
                perimeter += r.perimeter();
                width_weighted += r.width().min(r.height()) * r.area();
            }
        }
        WindowStats { area, perimeter, avg_width: if area > 0.0 { width_weighted / area } else { 0.0 } }
    }
}

/// Extracted statistics of one window's geometry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStats {
    /// Drawn metal area inside the window (µm²).
    pub area: f64,
    /// Drawn perimeter inside the window (µm).
    pub perimeter: f64,
    /// Area-weighted feature width (µm).
    pub avg_width: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_basics() {
        let r = Rect::new(2.0, 1.0, 0.0, 5.0); // corners normalize
        assert_eq!(r.x0, 0.0);
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.perimeter(), 12.0);
        assert!(!r.is_empty());
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(2.0, 2.0, 6.0, 6.0);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Rect::new(2.0, 2.0, 4.0, 4.0));
        let c = Rect::new(5.0, 5.0, 7.0, 7.0);
        assert!(a.intersect(&c).is_none());
        assert!(!a.overlaps(&c));
        // Touching edges do not overlap (zero area).
        let d = Rect::new(4.0, 0.0, 8.0, 4.0);
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn inflate_grows_and_shrinks() {
        let r = Rect::new(1.0, 1.0, 3.0, 3.0);
        assert_eq!(r.inflate(0.5).area(), 9.0);
        assert!(r.inflate(-1.5).is_empty());
    }

    #[test]
    fn layer_area_and_stats() {
        let mut layer = LayerGeometry::new();
        layer.add_wire(Rect::new(0.0, 0.0, 2.0, 10.0)); // 20 µm², w = 2
        layer.add_dummy(Rect::new(5.0, 5.0, 7.0, 7.0)); // 4 µm², w = 2
        assert_eq!(layer.len(), 2);
        assert_eq!(layer.dummy_count(), 1);

        let window = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(layer.area_in(&window), 24.0);
        let stats = layer.window_stats(&window);
        assert_eq!(stats.area, 24.0);
        assert_eq!(stats.perimeter, 24.0 + 8.0);
        assert!((stats.avg_width - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clipping_splits_stats_between_windows() {
        let mut layer = LayerGeometry::new();
        layer.add_wire(Rect::new(8.0, 0.0, 12.0, 2.0)); // straddles x = 10
        let left = Rect::new(0.0, 0.0, 10.0, 10.0);
        let right = Rect::new(10.0, 0.0, 20.0, 10.0);
        assert_eq!(layer.area_in(&left), 4.0);
        assert_eq!(layer.area_in(&right), 4.0);
    }
}
