//! Integration-suite root crate for the NeurFill reproduction; see the member crates.
pub use neurfill as core;
