#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build, tests.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# neurfill-runtime, neurfill (core), neurfill-obs, neurfill-tensor,
# neurfill-nn, neurfill-cmpsim, neurfill-serve, neurfill-chip and
# neurfill-data deny clippy::unwrap_used / clippy::expect_used at the
# crate level (lib + bins, tests exempt); this run enforces it.
echo "== cargo clippy (no unwrap/expect in lib+bins)"
cargo clippy -p neurfill-runtime -p neurfill -p neurfill-obs \
    -p neurfill-tensor -p neurfill-nn -p neurfill-cmpsim \
    -p neurfill-serve -p neurfill-chip -p neurfill-data \
    --lib --bins -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo bench --no-run (compile-only)"
cargo bench --workspace --no-run

echo "== cargo test -q"
cargo test -q

echo "== cargo test --workspace -q"
cargo test --workspace -q

echo "== fault-injection suite"
cargo test -p neurfill-runtime --test fault_injection -q

echo "== telemetry suite"
cargo test -p neurfill-obs -q
cargo test -p neurfill-runtime --test telemetry -q

echo "== kernel-equivalence suite (bitwise determinism)"
cargo test -p neurfill-tensor --test gemm_equivalence -q
cargo test -p neurfill-cmpsim --test kernel_equivalence -q
cargo test -p neurfill-nn --test determinism -q

echo "== numerics-tier certification suite (exact pinned, fast within tolerance)"
cargo test -p neurfill-cmpsim --test tier_equivalence -q
cargo test -p neurfill --test downstream_equivalence -q
cargo test -p neurfill-chip --test fast_tier -q

echo "== kernel bench (compile-only)"
cargo bench -p neurfill-bench --bench kernels --no-run

echo "== quantized-backend certification suite (seam, calibration, serve canary)"
cargo test -p neurfill-tensor -q quant
cargo test -p neurfill-nn -q quant
cargo test -p neurfill --test downstream_equivalence -q backend
cargo test -p neurfill-serve --test quant_canary -q

echo "== infer bench (compile-only)"
cargo bench -p neurfill-bench --bench infer --no-run

echo "== serve service suite"
cargo test -p neurfill-serve --test service -q
cargo test -p neurfill-serve --test http_hardening -q

echo "== serve bench (compile-only)"
cargo bench -p neurfill-bench --bench serve --no-run

echo "== chip bit-identity suite (sharded == monolithic, any tiling)"
cargo test -p neurfill-chip --test bit_identity -q
cargo test -p neurfill-layout --test tiling_props -q

echo "== fullchip bench (compile-only)"
cargo bench -p neurfill-bench --bench fullchip --no-run

echo "== durability suite (append log, journal, shard finalize)"
cargo test -p neurfill-data -q

echo "== chaos/recovery suite (kill-at-every-ordinal, bit-identical resume)"
cargo test -p neurfill-runtime --test wait_first -q
cargo test -p neurfill-chip --test checkpoint_resume -q
cargo test -p neurfill-serve --test recovery -q

echo "== recovery bench (compile-only)"
cargo bench -p neurfill-bench --bench recovery --no-run

echo "CI OK"
