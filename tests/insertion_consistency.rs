//! Cross-phase consistency: filling synthesis (window areas) → filling
//! insertion (rectangles) → re-extraction (window stats) must agree, and
//! the realized fill must score close to the synthesized plan.

use neurfill::pkb::plan_for_target_density;
use neurfill::PlanarityMetrics;
use neurfill_cmpsim::{CmpSimulator, ProcessParams};
use neurfill_layout::insertion::{realize_fill, InsertionRules};
use neurfill_layout::{apply_fill, DesignKind, DesignSpec, DummySpec, FillPlan, Rect, WindowId};

#[test]
fn realized_geometry_matches_synthesized_densities() {
    let layout = DesignSpec::new(DesignKind::CmpTest, 6, 6, 9).generate();
    let (_, hi) = neurfill::pkb::target_density_range(&layout, 0);
    let td = vec![hi * 0.85; 3];
    let plan = plan_for_target_density(&layout, &td);
    let rules = InsertionRules::default();
    let report = realize_fill(&layout, &plan, &rules);
    assert!(report.realization_ratio() > 0.7, "{}", report.realization_ratio());

    // Window stats re-extracted from the rectangles track the filled
    // layout's densities.
    let filled = apply_fill(&layout, &plan, &DummySpec::new(rules.edge_um));
    let w_um = layout.window_um();
    let mut checked = 0;
    for row in 0..layout.rows() {
        for col in 0..layout.cols() {
            let id = WindowId { layer: 0, row, col };
            let rect = Rect::new(
                col as f64 * w_um,
                row as f64 * w_um,
                (col + 1) as f64 * w_um,
                (row + 1) as f64 * w_um,
            );
            let stats = report.layers[0].window_stats(&rect);
            let realized_density = stats.area / rect.area();
            let target_density = filled.window(id).density;
            // Insertion quantization + spacing rules cost a few percent.
            assert!(
                (realized_density - target_density).abs() < 0.12,
                "window ({row},{col}): realized {realized_density:.3} vs synthesized {target_density:.3}"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 36);
}

#[test]
fn realized_fill_scores_close_to_synthesized_plan() {
    let layout = DesignSpec::new(DesignKind::RiscV, 8, 8, 10).generate();
    let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
    let (_, hi) = neurfill::pkb::target_density_range(&layout, 0);
    let plan = plan_for_target_density(&layout, &[hi * 0.8; 3]);
    let rules = InsertionRules::default();
    let report = realize_fill(&layout, &plan, &rules);

    let mut realized = FillPlan::zeros(&layout);
    for (slot, w) in realized.as_mut_slice().iter_mut().zip(&report.windows) {
        *slot = w.placed;
    }

    let dummy = DummySpec::new(rules.edge_um);
    let m_unfilled = PlanarityMetrics::from_profile(&sim.simulate(&layout));
    let m_plan = PlanarityMetrics::from_profile(&sim.simulate(&apply_fill(&layout, &plan, &dummy)));
    let m_real = PlanarityMetrics::from_profile(&sim.simulate(&apply_fill(&layout, &realized, &dummy)));
    // σ is quadratic in the residual density deviations, so a small
    // insertion shortfall can move it noticeably; the invariant that must
    // survive insertion is the planarity *improvement* over unfilled.
    assert!(
        m_plan.sigma < m_unfilled.sigma && m_real.sigma < m_unfilled.sigma,
        "fill must improve planarity: unfilled {:.0}, plan {:.0}, realized {:.0}",
        m_unfilled.sigma,
        m_plan.sigma,
        m_real.sigma
    );
    assert!(
        m_real.sigma < 0.8 * m_unfilled.sigma,
        "realized fill keeps most of the gain: {:.0} vs unfilled {:.0}",
        m_real.sigma,
        m_unfilled.sigma
    );
}

#[test]
fn insertion_is_deterministic_and_dummy_counted() {
    let layout = DesignSpec::new(DesignKind::Fpga, 5, 5, 11).generate();
    let mut plan = FillPlan::zeros(&layout);
    for (x, s) in plan.as_mut_slice().iter_mut().zip(layout.slack_vector()) {
        *x = 0.6 * s;
    }
    let rules = InsertionRules::default();
    let a = realize_fill(&layout, &plan, &rules);
    let b = realize_fill(&layout, &plan, &rules);
    assert_eq!(a.total_placed(), b.total_placed());
    assert_eq!(a.dummy_count(), b.dummy_count());
    // Count matches the geometry.
    let geometric: usize = a.layers.iter().map(neurfill_layout::LayerGeometry::dummy_count).sum();
    assert_eq!(geometric, a.dummy_count());
}
