//! End-to-end integration: generate → simulate → train surrogate →
//! NeurFill → golden-simulator scoring, across crate boundaries.

use neurfill::report::{evaluate_plan, MethodKind};
use neurfill::surrogate::{train_surrogate, SurrogateConfig};
use neurfill::{Coefficients, NeurFill, NeurFillConfig, PlanarityMetrics, StartMode};
use neurfill_cmpsim::{CmpSimulator, ProcessParams};
use neurfill_layout::datagen::DataGenConfig;
use neurfill_layout::{benchmark_designs, DesignKind, DesignSpec, DummySpec};
use neurfill_nn::{TrainConfig, UNetConfig};
use neurfill_optim::NmmsoConfig;
use rand::SeedableRng;

fn tiny_surrogate_config(grid: usize, seed: u64) -> SurrogateConfig {
    SurrogateConfig {
        unet: UNetConfig {
            in_channels: neurfill::extraction::NUM_CHANNELS,
            out_channels: 1,
            base_channels: 4,
            depth: 2,
        },
        train: TrainConfig {
            epochs: 10,
            batch_size: 4,
            lr: 2e-3,
            lr_decay: 0.95,
            ..TrainConfig::default()
        },
        num_layouts: 20,
        datagen: DataGenConfig { rows: grid, cols: grid, seed, ..DataGenConfig::default() },
        ..SurrogateConfig::default()
    }
}

#[test]
fn pkb_pipeline_produces_feasible_scored_plan() {
    let grid = 8;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let sources = benchmark_designs(grid, grid, 1);
    let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
    let trained = train_surrogate(&sources, &sim, &tiny_surrogate_config(grid, 1), &mut rng).unwrap();

    let layout = DesignSpec::new(DesignKind::CmpTest, grid, grid, 1).generate();
    let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
    let nf = NeurFill::new(trained.network, NeurFillConfig::default());
    let outcome = nf.run(&layout, &coeffs).unwrap();

    assert!(outcome.plan.is_feasible(&layout, 1e-9));
    assert!(outcome.runtime.as_secs_f64() < 120.0);

    let result = evaluate_plan(
        &layout,
        &sim,
        &coeffs,
        "NeurFill (PKB)",
        &outcome.plan,
        &DummySpec::default(),
        outcome.runtime.as_secs_f64(),
        neurfill::report::estimate_memory_gb(MethodKind::NeurFillPkb, &layout, 1000),
    );
    assert!(result.quality.is_finite());
    assert!(result.overall >= 0.0 && result.overall <= 1.0 + 1e-9);
    // All per-metric scores are valid probabilities.
    for s in [
        result.breakdown.ov,
        result.breakdown.fa,
        result.breakdown.sigma,
        result.breakdown.sigma_star,
        result.breakdown.ol,
        result.breakdown.fs,
        result.breakdown.time,
        result.breakdown.mem,
    ] {
        assert!((0.0..=1.0).contains(&s), "score {s} out of range");
    }
}

#[test]
fn multimodal_pipeline_runs_and_scores() {
    let grid = 8;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let sources = benchmark_designs(grid, grid, 2);
    let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
    let trained = train_surrogate(&sources, &sim, &tiny_surrogate_config(grid, 2), &mut rng).unwrap();

    let layout = DesignSpec::new(DesignKind::Fpga, grid, grid, 2).generate();
    let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
    let nf = NeurFill::new(
        trained.network,
        NeurFillConfig {
            mode: StartMode::MultiModal {
                nmmso: NmmsoConfig { max_evaluations: 25, swarm_size: 3, ..NmmsoConfig::default() },
                top_modes: 2,
            },
            seed: 2,
            ..NeurFillConfig::default()
        },
    );
    let outcome = nf.run(&layout, &coeffs).unwrap();
    assert!(outcome.plan.is_feasible(&layout, 1e-9));
    assert!(outcome.starts >= 1);
}

#[test]
fn filling_reduces_golden_simulator_variance() {
    // The paper's core promise: model-based fill improves planarity
    // against the *golden* simulator, not just the surrogate. Uses the
    // calibrated default process (the fast() preset has too few polish
    // steps for the planarity response the surrogate must learn).
    let grid = 8;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let sources = benchmark_designs(grid, grid, 3);
    let sim = CmpSimulator::new(ProcessParams::default()).unwrap();
    let trained = train_surrogate(&sources, &sim, &tiny_surrogate_config(grid, 3), &mut rng).unwrap();

    let layout = DesignSpec::new(DesignKind::CmpTest, grid, grid, 3).generate();
    let before = PlanarityMetrics::from_profile(&sim.simulate(&layout));
    let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
    let nf = NeurFill::new(trained.network, NeurFillConfig::default());
    let outcome = nf.run(&layout, &coeffs).unwrap();

    let filled = neurfill_layout::apply_fill(&layout, &outcome.plan, &DummySpec::default());
    let after = PlanarityMetrics::from_profile(&sim.simulate(&filled));
    assert!(
        after.sigma < before.sigma,
        "NeurFill should improve sigma: {} -> {}",
        before.sigma,
        after.sigma
    );
}

#[test]
fn pipeline_is_reproducible_under_fixed_seeds() {
    let grid = 8;
    let run = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let sources = benchmark_designs(grid, grid, 4);
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let trained =
            train_surrogate(&sources, &sim, &tiny_surrogate_config(grid, 4), &mut rng).unwrap();
        let layout = DesignSpec::new(DesignKind::RiscV, grid, grid, 4).generate();
        let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
        let nf = NeurFill::new(trained.network, NeurFillConfig::default());
        nf.run(&layout, &coeffs).unwrap().plan
    };
    assert_eq!(run(), run());
}
