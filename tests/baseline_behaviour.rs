//! Behavioural contracts of the comparison methods: the qualitative
//! signatures Table III depends on (who fills how much, who is fast, who
//! improves what).

use neurfill::baselines::{cai_fill, lin_fill, tao_fill, CaiConfig, TaoConfig};
use neurfill::{Coefficients, PlanarityMetrics};
use neurfill_cmpsim::{CmpSimulator, FiniteDifference, ProcessParams};
use neurfill_layout::{apply_fill, benchmark_designs, DummySpec};
use neurfill_optim::SqpConfig;

#[test]
fn lin_fills_most_tao_fills_less() {
    for layout in benchmark_designs(10, 10, 17) {
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
        let lin = lin_fill(&layout);
        let tao = tao_fill(&layout, &coeffs, &TaoConfig::default());
        assert!(lin.total() > 0.0);
        assert!(
            tao.plan.total() < lin.total(),
            "design {}: Tao should trade fill for performance ({} vs {})",
            layout.name(),
            tao.plan.total(),
            lin.total()
        );
    }
}

#[test]
fn rule_based_methods_are_fast() {
    let layout = &benchmark_designs(10, 10, 18)[1];
    let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
    let coeffs = Coefficients::calibrate(layout, &sim.simulate(layout), 60.0);
    let t0 = std::time::Instant::now();
    let _ = lin_fill(layout);
    assert!(t0.elapsed().as_secs_f64() < 1.0, "Lin must be (near) instant");
    let tao = tao_fill(layout, &coeffs, &TaoConfig::default());
    assert!(tao.runtime.as_secs_f64() < 30.0, "Tao must stay in the seconds range");
}

#[test]
fn cai_dominates_runtime_via_simulator_invocations() {
    let layout = &benchmark_designs(6, 6, 19)[0];
    let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
    let coeffs = Coefficients::calibrate(layout, &sim.simulate(layout), 60.0);
    let cfg = CaiConfig {
        sqp: SqpConfig { max_iterations: 2, max_backtracks: 5, ..SqpConfig::default() },
        fd: FiniteDifference::new(100.0, 1),
        dummy: DummySpec::default(),
    };
    let out = cai_fill(layout, &sim, &coeffs, &cfg);
    // Two numerical gradients alone cost 2·(dim + 1) simulations.
    assert!(out.simulations >= 2 * (layout.num_windows() + 1));
}

#[test]
fn all_baselines_improve_planarity_on_design_a() {
    let layout = &benchmark_designs(10, 10, 20)[0];
    let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
    let coeffs = Coefficients::calibrate(layout, &sim.simulate(layout), 60.0);
    let before = PlanarityMetrics::from_profile(&sim.simulate(layout));
    let dummy = DummySpec::default();

    for (name, plan) in
        [("Lin", lin_fill(layout)), ("Tao", tao_fill(layout, &coeffs, &TaoConfig::default()).plan)]
    {
        let filled = apply_fill(layout, &plan, &dummy);
        let after = PlanarityMetrics::from_profile(&sim.simulate(&filled));
        assert!(after.sigma < before.sigma, "{name}: sigma {} -> {}", before.sigma, after.sigma);
    }
}

#[test]
fn baselines_never_violate_slack() {
    for layout in benchmark_designs(8, 8, 21) {
        let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
        let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
        assert!(lin_fill(&layout).is_feasible(&layout, 1e-9));
        assert!(tao_fill(&layout, &coeffs, &TaoConfig::default()).plan.is_feasible(&layout, 1e-9));
    }
}
