//! Property-based tests of the scoring system and the performance-
//! degradation estimate — the invariants Table III depends on.

use neurfill::pd::{estimate, overlay_gradient, pd_score};
use neurfill::score::{score_fn, Alphas, Coefficients, ScoreBreakdown};
use neurfill_layout::{DesignKind, DesignSpec, FillPlan};
use proptest::prelude::*;

fn coeffs(layout: &neurfill_layout::Layout) -> Coefficients {
    let slack: f64 = layout.slack_vector().iter().sum();
    Coefficients {
        alphas: Alphas::default(),
        beta_sigma: 100.0,
        beta_sigma_star: 1000.0,
        beta_ol: 10.0,
        beta_ov: slack.max(1.0),
        beta_fa: slack.max(1.0),
        beta_fs_mb: 30.0,
        beta_time_s: 60.0,
        beta_mem_gb: 8.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn score_fn_is_clamped_and_monotone(t in 0.0f64..1e9, beta in 1e-6f64..1e9) {
        let s = score_fn(t, beta);
        prop_assert!((0.0..=1.0).contains(&s));
        // Monotone non-increasing in t.
        let s2 = score_fn(t * 1.5 + 1.0, beta);
        prop_assert!(s2 <= s + 1e-12);
    }

    #[test]
    fn overall_is_convex_combination_of_scores(
        ov in 0.0f64..=1.0, fa in 0.0f64..=1.0, sigma in 0.0f64..=1.0,
        sigma_star in 0.0f64..=1.0, ol in 0.0f64..=1.0, fs in 0.0f64..=1.0,
        time in 0.0f64..=1.0, mem in 0.0f64..=1.0,
    ) {
        let b = ScoreBreakdown { ov, fa, sigma, sigma_star, ol, fs, time, mem };
        let a = Alphas::default();
        let overall = b.overall(&a);
        let quality = b.quality(&a);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&overall));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&quality));
        // Perfect scores give exactly 1.
        let perfect = ScoreBreakdown {
            ov: 1.0, fa: 1.0, sigma: 1.0, sigma_star: 1.0, ol: 1.0, fs: 1.0, time: 1.0, mem: 1.0,
        };
        prop_assert!((perfect.overall(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pd_estimate_invariants(seed in 0u64..500, frac in 0.0f64..=1.0) {
        let layout = DesignSpec::new(DesignKind::Fpga, 6, 6, seed).generate();
        let slack = layout.slack_vector();
        let mut plan = FillPlan::zeros(&layout);
        for (x, s) in plan.as_mut_slice().iter_mut().zip(&slack) {
            *x = frac * s;
        }
        let est = estimate(&layout, &plan);
        // Overlay is bounded by (a multiple of) the fill amount.
        prop_assert!(est.overlay >= -1e-9);
        prop_assert!(est.overlay_dw <= 2.0 * est.fill_amount + 1e-6);
        prop_assert!((est.fill_amount - plan.total()).abs() < 1e-6);
        // Type split sums back to each window's fill.
        for (k, split) in est.type_split.iter().enumerate() {
            let total: f64 = split.iter().sum();
            prop_assert!((total - plan.amount(k)).abs() < 1e-6, "window {k}");
        }
        // Eq. 16 gradient takes only the published values {0, 1, 2}.
        for g in overlay_gradient(&layout, &est) {
            prop_assert!(g == 0.0 || g == 1.0 || g == 2.0);
        }
    }

    #[test]
    fn pd_score_decreases_with_uniform_fill_fraction(seed in 0u64..200) {
        let layout = DesignSpec::new(DesignKind::RiscV, 5, 5, seed).generate();
        let c = coeffs(&layout);
        let slack = layout.slack_vector();
        let mut prev = f64::INFINITY;
        for step in 0..5 {
            let frac = step as f64 / 4.0;
            let mut plan = FillPlan::zeros(&layout);
            for (x, s) in plan.as_mut_slice().iter_mut().zip(&slack) {
                *x = frac * s;
            }
            let s = pd_score(&layout, &plan, &c).score;
            prop_assert!(s <= prev + 1e-9, "PD score must not rise with more fill");
            prev = s;
        }
    }

    #[test]
    fn overlay_gradient_is_a_valid_subgradient_direction(seed in 0u64..100) {
        // Increasing any single window's fill never *decreases* overlay.
        let layout = DesignSpec::new(DesignKind::CmpTest, 4, 4, seed).generate();
        let slack = layout.slack_vector();
        let mut plan = FillPlan::zeros(&layout);
        for (x, s) in plan.as_mut_slice().iter_mut().zip(&slack) {
            *x = 0.5 * s;
        }
        let base = estimate(&layout, &plan).overlay;
        for k in (0..layout.num_windows()).step_by(7) {
            let mut bumped = plan.clone();
            bumped.as_mut_slice()[k] = (bumped.amount(k) + 1.0).min(slack[k]);
            let after = estimate(&layout, &bumped).overlay;
            prop_assert!(after >= base - 1e-9, "window {k}: {base} -> {after}");
        }
    }
}
