//! Cross-crate gradient correctness: the NeurFill objective (surrogate
//! backward + analytic PD) against finite differences, and agreement
//! between the two gradient paths the paper compares (backprop vs
//! numerical).

use neurfill::surrogate::{train_surrogate, SurrogateConfig};
use neurfill::{Coefficients, FillObjective};
use neurfill_cmpsim::{CmpSimulator, FiniteDifference, ProcessParams};
use neurfill_layout::benchmark_designs;
use neurfill_layout::datagen::DataGenConfig;
use neurfill_nn::{TrainConfig, UNetConfig};
use neurfill_optim::Objective;
use rand::SeedableRng;

fn setup() -> (neurfill_layout::Layout, neurfill::CmpNeuralNetwork, Coefficients) {
    let grid = 8;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let sources = benchmark_designs(grid, grid, 11);
    let sim = CmpSimulator::new(ProcessParams::fast()).unwrap();
    let cfg = SurrogateConfig {
        unet: UNetConfig {
            in_channels: neurfill::extraction::NUM_CHANNELS,
            out_channels: 1,
            base_channels: 4,
            depth: 2,
        },
        train: TrainConfig {
            epochs: 1,
            batch_size: 4,
            lr: 1e-3,
            lr_decay: 1.0,
            ..TrainConfig::default()
        },
        num_layouts: 4,
        datagen: DataGenConfig { rows: grid, cols: grid, seed: 11, ..DataGenConfig::default() },
        ..SurrogateConfig::default()
    };
    let trained = train_surrogate(&sources, &sim, &cfg, &mut rng).unwrap();
    let layout = sources[0].clone();
    let coeffs = Coefficients::calibrate(&layout, &sim.simulate(&layout), 60.0);
    (layout, trained.network, coeffs)
}

#[test]
fn backward_gradient_matches_directional_finite_difference() {
    let (layout, network, coeffs) = setup();
    let obj = FillObjective::new(&network, &layout, &coeffs);
    let n = layout.num_windows();
    let x: Vec<f64> = layout.slack_vector().iter().map(|s| 0.35 * s).collect();
    let (_, grad) = obj.value_and_gradient(&x);
    assert_eq!(grad.len(), n);

    // Directional check along a dense pseudo-random direction (pointwise
    // checks are unreliable near f32 ReLU kinks).
    let dir: Vec<f64> = (0..n).map(|i| 0.4 + ((i * 31) % 11) as f64 / 11.0).collect();
    let eps = 0.2;
    let xp: Vec<f64> = x.iter().zip(&dir).map(|(v, d)| v + eps * d).collect();
    let xm: Vec<f64> = x.iter().zip(&dir).map(|(v, d)| v - eps * d).collect();

    // (a) The backward-propagated *planarity* gradient (the paper's Eq. 11
    // chain) must match finite differences tightly.
    let pe = network.planarity(&layout, &x, &coeffs).unwrap();
    let plan_analytic: f64 = pe.gradient.iter().zip(&dir).map(|(g, d)| g * d).sum();
    let fp = network.planarity_score(&layout, &xp, &coeffs).unwrap();
    let fm = network.planarity_score(&layout, &xm, &coeffs).unwrap();
    let plan_fd = (fp - fm) / (2.0 * eps);
    assert!(
        (plan_fd - plan_analytic).abs() < 0.1 * (1e-6 + plan_fd.abs()),
        "planarity: fd = {plan_fd:e}, analytic = {plan_analytic:e}"
    );

    // (b) The total objective adds the Eq. 16/17 overlay gradient, which is
    // the paper's *approximation* of the piecewise overlay response — allow
    // the looser agreement that approximation implies.
    let analytic: f64 = grad.iter().zip(&dir).map(|(g, d)| g * d).sum();
    let fd = (obj.value(&xp) - obj.value(&xm)) / (2.0 * eps);
    assert!(
        (fd - analytic).abs() < 0.5 * (1e-5 + fd.abs()),
        "total: fd = {fd:e}, analytic = {analytic:e}"
    );
}

#[test]
fn numerical_gradient_estimator_agrees_with_backprop_direction() {
    // The two gradient paths of Table I must agree in *direction*: a
    // numerical gradient of the surrogate objective should correlate
    // positively with the backward-propagated one.
    let (layout, network, coeffs) = setup();
    let obj = FillObjective::new(&network, &layout, &coeffs);
    let x: Vec<f64> = layout.slack_vector().iter().map(|s| 0.35 * s).collect();
    let (_, backprop) = obj.value_and_gradient(&x);

    // Numerical gradient over a subset of coordinates (full dim is slow).
    let fd = FiniteDifference::new(2.0, 1);
    let probe = 24;
    let g_num = fd.gradient_central_seq(&x[..probe], |xs: &[f64]| {
        let mut full = x.clone();
        full[..probe].copy_from_slice(xs);
        obj.value(&full)
    });
    let dot: f64 = backprop[..probe].iter().zip(&g_num).map(|(a, b)| a * b).sum();
    let na: f64 = backprop[..probe].iter().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = g_num.iter().map(|v| v * v).sum::<f64>().sqrt();
    let cosine = dot / (na * nb).max(1e-18);
    assert!(cosine > 0.7, "gradient paths disagree: cosine = {cosine}");
}

#[test]
fn gradient_cost_asymmetry_matches_table1_premise() {
    // Backward propagation costs O(1) forward passes; numerical gradients
    // cost O(dim). Verify the bookkeeping that Table I relies on.
    let (layout, network, coeffs) = setup();
    let obj = FillObjective::new(&network, &layout, &coeffs);
    let x = vec![0.0; layout.num_windows()];

    let _ = obj.value_and_gradient(&x);
    assert_eq!(obj.forward_count(), 1);
    assert_eq!(obj.backward_count(), 1);

    let evals_numerical = FiniteDifference::forward_evaluations(layout.num_windows());
    assert_eq!(evals_numerical, layout.num_windows() + 1);
    assert!(evals_numerical > 100 * obj.forward_count());
}
