//! Surrogate accuracy contracts: the trained UNet must track the golden
//! simulator well enough for the paper's premise to hold, and accuracy
//! must improve with training budget.

use neurfill::surrogate::{evaluate_surrogate, train_surrogate, SurrogateConfig};
use neurfill_cmpsim::{CmpSimulator, ProcessParams};
use neurfill_layout::benchmark_designs;
use neurfill_layout::datagen::{DataGenConfig, TrainingLayoutGenerator};
use neurfill_nn::{TrainConfig, UNetConfig};
use rand::SeedableRng;

fn config(grid: usize, layouts: usize, epochs: usize, seed: u64) -> SurrogateConfig {
    SurrogateConfig {
        unet: UNetConfig {
            in_channels: neurfill::extraction::NUM_CHANNELS,
            out_channels: 1,
            base_channels: 6,
            depth: 2,
        },
        train: TrainConfig { epochs, batch_size: 4, lr: 2e-3, lr_decay: 0.95, ..TrainConfig::default() },
        num_layouts: layouts,
        datagen: DataGenConfig { rows: grid, cols: grid, seed, ..DataGenConfig::default() },
        ..SurrogateConfig::default()
    }
}

#[test]
fn trained_surrogate_beats_five_percent_error() {
    let grid = 8;
    let sources = benchmark_designs(grid, grid, 31);
    let sim = CmpSimulator::new(ProcessParams::default()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let trained = train_surrogate(&sources, &sim, &config(grid, 30, 12, 31), &mut rng).unwrap();

    let mut gen = TrainingLayoutGenerator::new(
        sources,
        DataGenConfig { rows: grid, cols: grid, seed: 777, ..DataGenConfig::default() },
    );
    let eval = gen.generate(4);
    let report = evaluate_surrogate(&trained.network, &sim, &eval).unwrap();
    assert!(
        report.mean_relative_error < 0.05,
        "mean relative error {:.3}%",
        report.mean_relative_error * 100.0
    );
    assert!(report.max_window_error < 0.25, "max {:.3}", report.max_window_error);
}

#[test]
fn more_training_reduces_error() {
    let grid = 8;
    let sources = benchmark_designs(grid, grid, 32);
    let sim = CmpSimulator::new(ProcessParams::default()).unwrap();

    let eval = {
        let mut gen = TrainingLayoutGenerator::new(
            sources.clone(),
            DataGenConfig { rows: grid, cols: grid, seed: 888, ..DataGenConfig::default() },
        );
        gen.generate(4)
    };

    let mut errs = Vec::new();
    for (layouts, epochs) in [(6usize, 2usize), (30, 14)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let trained =
            train_surrogate(&sources, &sim, &config(grid, layouts, epochs, 32), &mut rng).unwrap();
        let report = evaluate_surrogate(&trained.network, &sim, &eval).unwrap();
        errs.push(report.mean_relative_error);
    }
    assert!(errs[1] < errs[0], "error should fall with budget: {:.4} -> {:.4}", errs[0], errs[1]);
}

#[test]
fn extension_ability_stays_within_a_small_multiple() {
    // Train on designs A+B, evaluate on layouts assembled from C (§IV-F).
    let grid = 8;
    let sources = benchmark_designs(grid, grid, 33);
    let sim = CmpSimulator::new(ProcessParams::default()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let train_sources = vec![sources[0].clone(), sources[1].clone()];
    let trained = train_surrogate(&train_sources, &sim, &config(grid, 30, 12, 33), &mut rng).unwrap();

    let in_dist = {
        let mut gen = TrainingLayoutGenerator::new(
            train_sources,
            DataGenConfig { rows: grid, cols: grid, seed: 999, ..DataGenConfig::default() },
        );
        evaluate_surrogate(&trained.network, &sim, &gen.generate(4)).unwrap()
    };
    let extension = {
        let mut gen = TrainingLayoutGenerator::new(
            vec![sources[2].clone()],
            DataGenConfig { rows: grid, cols: grid, seed: 1000, ..DataGenConfig::default() },
        );
        evaluate_surrogate(&trained.network, &sim, &gen.generate(4)).unwrap()
    };
    // The paper's ratio is 4.5x (2.7% / 0.6%); require a sane bound.
    let ratio = extension.mean_relative_error / in_dist.mean_relative_error.max(1e-9);
    assert!(ratio < 10.0, "extension blows up: {ratio:.1}x");
    assert!(extension.mean_relative_error < 0.10);
}
